//! Round-trip coverage of the unified protocol API: every registered
//! protocol name must construct through the registry, run to resolution
//! through the `Simulation` builder, and report a channel mode consistent
//! with its `ProtocolKind`; incompatible protocol/channel pairings must be
//! rejected with a typed error.

use contention_predictions::channel::ChannelMode;
use contention_predictions::info::{CondensedDistribution, SizeDistribution};
use contention_predictions::protocols::{
    ProtocolKind, ProtocolParams, ProtocolRegistry, ProtocolSpec,
};
use contention_predictions::sim::{SimError, Simulation};

const UNIVERSE: usize = 1 << 10;

/// Construction parameters rich enough for every registry entry: a
/// universe, a mildly informative prediction, an expected participant
/// count and a small advice budget.
fn full_params() -> ProtocolParams {
    let prediction = SizeDistribution::bimodal(UNIVERSE, 32, 512, 0.9).unwrap();
    ProtocolParams {
        universe: UNIVERSE,
        prediction: Some(CondensedDistribution::from_sizes(&prediction)),
        advice_bits: 2,
        participants: Some(32),
        estimate: Some(32),
    }
}

fn spec_for(name: &str) -> ProtocolSpec {
    let prediction = SizeDistribution::bimodal(UNIVERSE, 32, 512, 0.9).unwrap();
    ProtocolSpec::new(name)
        .universe(UNIVERSE)
        .prediction(CondensedDistribution::from_sizes(&prediction))
        .participants(32)
        .advice_bits(2)
        .estimate(32)
}

#[test]
fn registry_enumerates_at_least_eight_protocols() {
    let registry = ProtocolRegistry::standard();
    assert!(
        registry.len() >= 8,
        "registry lists only {} protocols",
        registry.len()
    );
    assert_eq!(registry.names().len(), registry.len());
}

#[test]
fn every_registered_name_constructs_runs_and_reports_a_consistent_mode() {
    let registry = ProtocolRegistry::standard();
    let params = full_params();
    for entry in registry.entries() {
        // Construction by name succeeds with the full parameter set…
        let protocol = registry
            .build(entry.name, &params)
            .unwrap_or_else(|err| panic!("{} failed to construct: {err}", entry.name));
        assert!(!protocol.name().is_empty());
        // …and the built protocol's kind matches the catalogue entry.
        assert_eq!(
            protocol.kind(),
            entry.kind,
            "{} reports a kind inconsistent with its registry entry",
            entry.name
        );

        // A k = 1 participant set has no contention: the lone participant
        // resolves as soon as it transmits.  Run a small batch with a
        // generous budget and require at least one resolution (one-shot
        // protocols only succeed with constant probability per pass).
        let simulation = Simulation::builder()
            .protocol(spec_for(entry.name))
            .participants(1)
            .max_rounds(64 * UNIVERSE)
            .trials(64)
            .seed(11)
            .build()
            .unwrap_or_else(|err| panic!("{} failed to build a simulation: {err}", entry.name));
        // The simulation's channel mode is exactly the protocol kind's mode.
        assert_eq!(
            simulation.channel_mode(),
            entry.kind.channel_mode(),
            "{}: simulation mode diverges from the protocol kind",
            entry.name
        );
        let stats = simulation
            .run()
            .unwrap_or_else(|err| panic!("{} failed to run: {err}", entry.name));
        assert!(
            stats.resolved > 0,
            "{} never resolved a k = 1 trial in {} attempts",
            entry.name,
            stats.trials
        );
    }
}

#[test]
fn cd_only_protocols_are_rejected_on_a_no_cd_channel() {
    let registry = ProtocolRegistry::standard();
    for entry in registry.entries() {
        if entry.kind != ProtocolKind::CollisionDetection {
            continue;
        }
        let err = Simulation::builder()
            .protocol(spec_for(entry.name))
            .channel_mode(ChannelMode::NoCollisionDetection)
            .participants(8)
            .trials(4)
            .build()
            .map(|_| ())
            .unwrap_err();
        match err {
            SimError::ModeMismatch {
                protocol,
                required,
                requested,
            } => {
                assert_eq!(required, ChannelMode::CollisionDetection);
                assert_eq!(requested, ChannelMode::NoCollisionDetection);
                assert!(!protocol.is_empty());
            }
            other => panic!("{}: expected ModeMismatch, got {other:?}", entry.name),
        }
    }
}

#[test]
fn no_cd_protocols_are_rejected_on_a_cd_channel() {
    let err = Simulation::builder()
        .protocol(ProtocolSpec::new("decay").universe(UNIVERSE))
        .channel_mode(ChannelMode::CollisionDetection)
        .participants(8)
        .trials(4)
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, SimError::ModeMismatch { .. }));
}

#[test]
fn matching_explicit_modes_are_accepted() {
    let simulation = Simulation::builder()
        .protocol(ProtocolSpec::new("decay").universe(UNIVERSE))
        .channel_mode(ChannelMode::NoCollisionDetection)
        .participants(8)
        .max_rounds(1000)
        .trials(4)
        .build()
        .unwrap();
    assert_eq!(simulation.channel_mode(), ChannelMode::NoCollisionDetection);
}
