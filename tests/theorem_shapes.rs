//! Integration tests that check the *shapes* of the paper's theorems
//! end-to-end: entropy scaling, divergence penalties, advice trade-offs and
//! the source-coding inequalities behind the lower bounds.

use contention_predictions::info::{
    entropy, huffman_code, kl_divergence, CondensedDistribution, SizeDistribution,
};
use contention_predictions::predict::{noise, ScenarioLibrary};
use contention_predictions::protocols::rangefinding::{
    rf_construction, target_distance_expected_length,
};
use contention_predictions::protocols::{ProtocolSpec, SortedGuess};
use contention_predictions::sim::experiments::{entropy_sweep, kl_degradation, table1, table2};
use contention_predictions::sim::{RunnerConfig, Simulation, TrialStats};

const TRIALS: usize = 400;
const SEED: u64 = 0xABCD;

/// Runs a prediction-augmented protocol against a scenario's truth; a
/// `budget` of `None` uses the protocol's own horizon.
fn run_spec(spec: ProtocolSpec, truth: &SizeDistribution, budget: Option<usize>) -> TrialStats {
    let mut builder = Simulation::builder()
        .protocol(spec)
        .truth(truth.clone())
        .trials(TRIALS)
        .seed(SEED);
    if let Some(budget) = budget {
        builder = builder.max_rounds(budget);
    }
    builder
        .run()
        .expect("theorem-shape configurations are valid")
}

#[test]
fn theorem_2_12_shape_no_cd_rounds_grow_exponentially_with_entropy() {
    // Compare a ~1-bit-entropy prediction with a ~3.5-bit one: the one-shot
    // position of the true range (and hence the resolved-round count)
    // should grow markedly, consistent with the 2^{Θ(H)} form.
    let n = 1 << 12;
    let library = ScenarioLibrary::new(n).unwrap();
    let low = library.point_mass();
    let high = library.uniform_ranges();

    let run_with_budget = |scenario: &contention_predictions::predict::Scenario, budget: usize| {
        run_spec(
            ProtocolSpec::new("sorted-guess")
                .universe(n)
                .prediction(scenario.condensed()),
            scenario.distribution(),
            Some(budget.max(1)),
        )
    };

    // Zero condensed entropy: a single round already succeeds with the
    // constant probability of Lemma 2.13 (≥ 1/8; empirically ≈ 0.37).
    let low_one_round = run_with_budget(&low, 1);
    assert!(
        low_one_round.success_rate() > 0.2,
        "point prediction should succeed in one round with constant probability, got {}",
        low_one_round.success_rate()
    );

    // Maximum condensed entropy: one round is nowhere near enough — the
    // protocol needs a budget on the order of 2^{Θ(H)} (here, the whole
    // pass over the range ladder) to reach the same constant probability.
    let high_one_round = run_with_budget(&high, 1);
    let high_full_pass = run_with_budget(&high, high.condensed().num_ranges());
    assert!(
        high_one_round.success_rate() < low_one_round.success_rate() / 2.0,
        "one round should not suffice at maximum entropy: {} vs {}",
        high_one_round.success_rate(),
        low_one_round.success_rate()
    );
    assert!(
        high_full_pass.success_rate() > 0.2,
        "a full 2^H-length pass restores constant success probability, got {}",
        high_full_pass.success_rate()
    );
}

#[test]
fn theorem_2_16_shape_cd_rounds_grow_polynomially_with_entropy() {
    let n = 1 << 14;
    let library = ScenarioLibrary::new(n).unwrap();
    let low = library.point_mass();
    let high = library.uniform_ranges();

    let run = |scenario: &contention_predictions::predict::Scenario| {
        run_spec(
            ProtocolSpec::new("coded-search")
                .universe(n)
                .prediction(scenario.condensed()),
            scenario.distribution(),
            None,
        )
    };
    let low_stats = run(&low);
    let high_stats = run(&high);
    let h = high.condensed_entropy();
    // Rounds stay within the O(H^2) envelope (generous constant of 4).
    assert!(
        high_stats.mean_rounds_when_resolved() <= 4.0 * h * h + 4.0,
        "CD rounds {} exceed the O(H^2) envelope for H = {h}",
        high_stats.mean_rounds_when_resolved()
    );
    assert!(low_stats.mean_rounds_when_resolved() <= high_stats.mean_rounds_when_resolved());
}

#[test]
fn divergence_penalty_is_monotone_in_kl() {
    // Three predictions of increasing divergence from the same truth must
    // produce non-decreasing expected rounds for the cycling no-CD
    // algorithm (Theorem 2.12's 2^{2H + 2D} form).
    let n = 1 << 12;
    let truth = SizeDistribution::bimodal(n, 40, 1500, 0.85).unwrap();
    let truth_condensed = CondensedDistribution::from_sizes(&truth);

    let predictions = [
        truth.clone(),
        noise::towards_uniform(&truth, 0.5).unwrap(),
        noise::support_shift(&truth, 3).unwrap(),
    ];
    let mut previous_divergence = -1.0;
    let mut rounds = Vec::new();
    for prediction in &predictions {
        let condensed = CondensedDistribution::from_sizes(prediction);
        let divergence = truth_condensed.kl_divergence(&condensed);
        assert!(divergence >= previous_divergence - 1e-9);
        previous_divergence = divergence;
        let stats = run_spec(
            ProtocolSpec::new("sorted-guess-cycling")
                .universe(n)
                .prediction(condensed),
            &truth,
            Some(64 * n),
        );
        rounds.push(stats.mean_rounds_overall());
    }
    // The exact and mildly-smoothed predictions (both with small, bounded
    // divergence) are within noise of each other; the support-shifted
    // prediction with large divergence is clearly worse than both, which is
    // the Theorem 2.12 penalty the test pins down.
    assert!(rounds[0] <= rounds[2], "{rounds:?}");
    assert!(rounds[1] <= rounds[2] + 1.0, "{rounds:?}");
    assert!(
        rounds[2] >= rounds[0].min(rounds[1]) + 0.5,
        "large divergence should cost measurably more rounds: {rounds:?}"
    );
}

#[test]
fn theorem_2_3_cross_entropy_sandwich_holds_for_library_scenarios() {
    // For every pair (truth, prediction) from the scenario library, the
    // Huffman code built for the prediction satisfies
    //   E[len] <= H(truth) + D_KL(truth || prediction) + 1
    // whenever the divergence is finite.
    let library = ScenarioLibrary::new(1 << 10).unwrap();
    let scenarios = library.all();
    for truth in &scenarios {
        for prediction in &scenarios {
            let ct = truth.condensed();
            let cp = prediction.condensed();
            let divergence = kl_divergence(ct.probabilities(), cp.probabilities());
            if !divergence.is_finite() {
                continue;
            }
            let code = huffman_code(cp.probabilities()).unwrap();
            let expected: f64 = ct
                .probabilities()
                .iter()
                .enumerate()
                .map(|(symbol, &p)| p * code.length(symbol) as f64)
                .sum();
            let h = entropy(ct.probabilities());
            assert!(
                expected <= h + divergence + 1.0 + 1e-9,
                "{} coded with {}: E[len]={expected}, H+D+1={}",
                truth.name(),
                prediction.name(),
                h + divergence + 1.0
            );
        }
    }
}

#[test]
fn lemma_2_5_source_coding_bound_holds_for_protocol_induced_sequences() {
    // The RF-Construction applied to the cycling sorted-guess protocol
    // yields a target-distance code whose expected length is at least the
    // entropy (minus the one-bit slack used in the lemma's accounting).
    let n = 1 << 12;
    let library = ScenarioLibrary::new(n).unwrap();
    for scenario in library.all() {
        let condensed = scenario.condensed();
        let protocol = SortedGuess::new(&condensed).cycling();
        let sequence = rf_construction(&protocol, n, 4 * condensed.num_ranges());
        let tolerance = 2;
        let bits = target_distance_expected_length(&sequence, &condensed, tolerance, 16);
        assert!(
            bits + 1.0 + 1e-9 >= condensed.entropy(),
            "{}: E[code bits] {} < H {}",
            scenario.name(),
            bits,
            condensed.entropy()
        );
    }
}

#[test]
fn experiment_modules_produce_consistent_tables_at_small_scale() {
    // Smoke-test the experiment drivers end-to-end at a reduced scale so
    // the full pipeline (scenario -> registry -> Simulation -> channel ->
    // statistics -> markdown) is exercised in one place.
    let config = RunnerConfig::with_trials(120).seeded(7);
    let t1 = table1::run(1 << 10, &config).unwrap();
    assert_eq!(t1.rows.len(), 6);
    let t2 = table2::run(1 << 8, 12, &config).unwrap();
    assert_eq!(t2.rows.len(), 9);
    let entropy = entropy_sweep::run(1 << 10, 4, &config).unwrap();
    assert_eq!(entropy.points.len(), 4);
    let kl = kl_degradation::run(1 << 10, &config).unwrap();
    assert!(kl.points.len() >= 6);
    for table in [
        t1.to_table().to_markdown(),
        t2.to_table().to_markdown(),
        entropy.to_table().to_markdown(),
        kl.to_table().to_markdown(),
    ] {
        assert!(table.contains('|'));
    }
}
