//! Integration tests spanning the whole workspace: distributions →
//! predictions → protocols (via the registry) → channel → statistics.

use contention_predictions::channel::ChannelMode;
use contention_predictions::info::{CondensedDistribution, SizeDistribution};
use contention_predictions::predict::{LearnedPredictor, ScenarioLibrary};
use contention_predictions::protocols::{try_run_protocol, ProtocolSpec};
use contention_predictions::sim::Simulation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: usize = 1 << 12;
const TRIALS: usize = 300;

fn run_measured(
    spec: ProtocolSpec,
    truth: &SizeDistribution,
    budget: Option<usize>,
) -> contention_predictions::sim::TrialStats {
    let mut builder = Simulation::builder()
        .protocol(spec)
        .truth(truth.clone())
        .trials(TRIALS)
        .seed(0xFEED);
    if let Some(budget) = budget {
        builder = builder.max_rounds(budget);
    }
    builder.run().expect("integration configurations are valid")
}

#[test]
fn every_uniform_protocol_resolves_every_scenario() {
    // Cycle-style (unbounded) protocols must always resolve, for every
    // scenario in the library and a spread of true sizes.
    let library = ScenarioLibrary::new(N).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let decay = ProtocolSpec::new("decay").universe(N).build().unwrap();
    for scenario in library.all() {
        let sorted = ProtocolSpec::new("sorted-guess-cycling")
            .universe(N)
            .prediction(scenario.condensed())
            .build()
            .unwrap();
        for k in [2usize, 17, 300, 2500] {
            let a = try_run_protocol(sorted.as_ref(), k, 64 * N, &mut rng).unwrap();
            assert!(
                a.resolved,
                "{}: sorted-guess failed for k={k}",
                scenario.name()
            );
            let b = try_run_protocol(decay.as_ref(), k, 64 * N, &mut rng).unwrap();
            assert!(b.resolved, "decay failed for k={k}");
        }
    }
}

#[test]
fn prediction_quality_orders_expected_rounds_end_to_end() {
    // Train two histogram models with very different amounts of data and
    // verify the better-trained one yields faster contention resolution.
    let truth = SizeDistribution::bimodal(N, 50, 2000, 0.8).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(2);

    let mut weak = LearnedPredictor::new(N, 1.0).unwrap();
    weak.train(&truth, 3, &mut rng);
    let mut strong = LearnedPredictor::new(N, 1.0).unwrap();
    strong.train(&truth, 3000, &mut rng);
    assert!(strong.divergence_from(&truth) < weak.divergence_from(&truth));

    let weak_stats = run_measured(
        ProtocolSpec::new("sorted-guess-cycling")
            .universe(N)
            .prediction(weak.predicted_condensed()),
        &truth,
        Some(64 * N),
    );
    let strong_stats = run_measured(
        ProtocolSpec::new("sorted-guess-cycling")
            .universe(N)
            .prediction(strong.predicted_condensed()),
        &truth,
        Some(64 * N),
    );
    assert!(
        strong_stats.mean_rounds_overall() <= weak_stats.mean_rounds_overall() + 0.5,
        "strong model ({}) should not be slower than weak model ({})",
        strong_stats.mean_rounds_overall(),
        weak_stats.mean_rounds_overall()
    );
}

#[test]
fn collision_detection_beats_no_collision_detection_at_high_entropy() {
    // With an uninformative prediction the CD algorithm (poly in H) should
    // need far fewer rounds than the no-CD algorithm (exponential in H).
    let library = ScenarioLibrary::new(N).unwrap();
    let scenario = library.uniform_ranges();
    let condensed = scenario.condensed();

    // Both one-shot budgets default to the protocols' own horizons.
    let no_cd = run_measured(
        ProtocolSpec::new("sorted-guess")
            .universe(N)
            .prediction(condensed.clone()),
        scenario.distribution(),
        None,
    );
    let cd = run_measured(
        ProtocolSpec::new("coded-search")
            .universe(N)
            .prediction(condensed),
        scenario.distribution(),
        None,
    );

    assert!(no_cd.success_rate() > 0.2);
    assert!(cd.success_rate() > 0.2);
    assert!(
        cd.mean_rounds_when_resolved() <= no_cd.mean_rounds_when_resolved() + 1.0,
        "CD ({}) should beat no-CD ({}) at maximum entropy",
        cd.mean_rounds_when_resolved(),
        no_cd.mean_rounds_when_resolved()
    );
}

#[test]
fn known_size_is_the_floor_for_all_prediction_protocols() {
    let k = 500;
    let truth = SizeDistribution::point_mass(N, k).unwrap();
    let condensed = CondensedDistribution::from_sizes(&truth);

    let floor = run_measured(
        ProtocolSpec::new("fixed-probability")
            .universe(N)
            .estimate(k),
        &truth,
        Some(64 * N),
    );
    let predicted = run_measured(
        ProtocolSpec::new("sorted-guess-cycling")
            .universe(N)
            .prediction(condensed),
        &truth,
        Some(64 * N),
    );

    // The prediction-augmented protocol with a perfect point prediction is
    // within a small constant factor of the known-size floor.
    assert!(predicted.mean_rounds_overall() <= 4.0 * floor.mean_rounds_overall() + 2.0);
}

#[test]
fn willard_and_coded_search_agree_on_point_predictions() {
    // With a point prediction the coded search has a single one-range
    // phase, so its behaviour collapses to the optimal single probe;
    // Willard needs its full binary search.
    let k = 900;
    let truth = SizeDistribution::point_mass(N, k).unwrap();
    let condensed = CondensedDistribution::from_sizes(&truth);

    let coded_stats = run_measured(
        ProtocolSpec::new("coded-search")
            .universe(N)
            .prediction(condensed),
        &truth,
        None,
    );
    let willard_stats = run_measured(ProtocolSpec::new("willard").universe(N), &truth, None);

    assert!(coded_stats.success_rate() > 0.2);
    assert!(willard_stats.success_rate() > 0.2);
    assert!(
        coded_stats.mean_rounds_when_resolved() <= willard_stats.mean_rounds_when_resolved(),
        "point-prediction coded search ({}) should not be slower than Willard ({})",
        coded_stats.mean_rounds_when_resolved(),
        willard_stats.mean_rounds_when_resolved()
    );
}

#[test]
fn advice_protocols_respect_their_table_2_budgets_end_to_end() {
    let universe = 1 << 10;
    let active = vec![131usize, 132, 600, 601, 980];
    let k = active.len();

    for b in 0..=10usize {
        // Deterministic protocols: per-node state machines under a fixed
        // placement; budgets default to the declared worst cases.
        for (name, bound) in [
            ("det-advice-no-cd", (universe >> b.min(10)).max(1)),
            ("det-advice-cd", 10usize.saturating_sub(b).max(1) + 1),
        ] {
            let simulation = Simulation::builder()
                .protocol(ProtocolSpec::new(name).universe(universe).advice_bits(b))
                .participant_ids(active.clone())
                .trials(1)
                .seed(3)
                .build()
                .unwrap();
            assert!(
                simulation.max_rounds() <= bound,
                "{name} at b={b}: budget {} exceeds {bound}",
                simulation.max_rounds()
            );
            let stats = simulation.run().unwrap();
            assert!(
                (stats.success_rate() - 1.0).abs() < 1e-12,
                "{name} failed at b={b}"
            );
        }

        // Randomized protocols: the advice must always keep the true range,
        // so a cycling advised decay resolves every time…
        let stats = Simulation::builder()
            .protocol(
                ProtocolSpec::new("advised-decay")
                    .universe(universe)
                    .participants(k)
                    .advice_bits(b),
            )
            .participants(k)
            .max_rounds(64 * universe)
            .trials(50)
            .seed(4)
            .run()
            .unwrap();
        assert!(
            (stats.success_rate() - 1.0).abs() < 1e-12,
            "advised decay failed at b={b}"
        );

        // …and the restricted Willard search succeeds with constant
        // probability within its own budget: over repetitions it certainly
        // succeeds at least once.
        let stats = Simulation::builder()
            .protocol(
                ProtocolSpec::new("advised-willard")
                    .universe(universe)
                    .participants(k)
                    .advice_bits(b),
            )
            .participants(k)
            .trials(50)
            .seed(5)
            .run()
            .unwrap();
        assert!(
            stats.resolved > 0,
            "advised willard never resolved at b={b}"
        );
    }
}

#[test]
fn facade_reexports_are_usable_together() {
    // Compile-and-run smoke test across every re-exported module.
    let truth = SizeDistribution::geometric(256, 0.2).unwrap();
    let condensed = CondensedDistribution::from_sizes(&truth);
    assert!(condensed.entropy() >= 0.0);
    let library = ScenarioLibrary::new(256).unwrap();
    assert_eq!(library.all().len(), 6);
    let simulation = Simulation::builder()
        .protocol(ProtocolSpec::new("decay").universe(256))
        .truth(truth)
        .max_rounds(10_000)
        .trials(TRIALS)
        .seed(0xFEED)
        .build()
        .unwrap();
    assert_eq!(simulation.channel_mode(), ChannelMode::NoCollisionDetection);
    let stats = simulation.run().unwrap();
    assert!(stats.success_rate() > 0.99);
}
