//! Integration tests spanning the whole workspace: distributions →
//! predictions → protocols → channel → statistics.

use contention_predictions::channel::{execute, ChannelMode, ExecutionConfig, ParticipantId};
use contention_predictions::info::{CondensedDistribution, SizeDistribution};
use contention_predictions::predict::{
    AdviceOracle, IdPrefixOracle, LearnedPredictor, RangeOracle, ScenarioLibrary,
};
use contention_predictions::protocols::{
    run_cd_strategy, run_schedule, AdvisedDecay, AdvisedWillard, CodedSearch, Decay,
    DeterministicCdAdvice, DeterministicNoCdAdvice, FixedProbability, SortedGuess, Willard,
};
use contention_predictions::sim::{measure_cd_strategy, measure_schedule, RunnerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: usize = 1 << 12;

fn trial_config() -> RunnerConfig {
    RunnerConfig::with_trials(300).seeded(0xFEED)
}

#[test]
fn every_uniform_protocol_resolves_every_scenario() {
    // Cycle-style (unbounded) protocols must always resolve, for every
    // scenario in the library and a spread of true sizes.
    let library = ScenarioLibrary::new(N).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for scenario in library.all() {
        let condensed = scenario.condensed();
        let sorted = SortedGuess::new(&condensed).cycling();
        let decay = Decay::new(N).unwrap();
        for k in [2usize, 17, 300, 2500] {
            let a = run_schedule(&sorted, k, 64 * N, &mut rng);
            assert!(a.resolved, "{}: sorted-guess failed for k={k}", scenario.name());
            let b = run_schedule(&decay, k, 64 * N, &mut rng);
            assert!(b.resolved, "decay failed for k={k}");
        }
    }
}

#[test]
fn prediction_quality_orders_expected_rounds_end_to_end() {
    // Train two histogram models with very different amounts of data and
    // verify the better-trained one yields faster contention resolution.
    let truth = SizeDistribution::bimodal(N, 50, 2000, 0.8).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(2);

    let mut weak = LearnedPredictor::new(N, 1.0).unwrap();
    weak.train(&truth, 3, &mut rng);
    let mut strong = LearnedPredictor::new(N, 1.0).unwrap();
    strong.train(&truth, 3000, &mut rng);
    assert!(strong.divergence_from(&truth) < weak.divergence_from(&truth));

    let config = trial_config();
    let weak_protocol = SortedGuess::new(&weak.predicted_condensed()).cycling();
    let strong_protocol = SortedGuess::new(&strong.predicted_condensed()).cycling();
    let weak_stats = measure_schedule(&weak_protocol, &truth, 64 * N, &config);
    let strong_stats = measure_schedule(&strong_protocol, &truth, 64 * N, &config);
    assert!(
        strong_stats.mean_rounds_overall() <= weak_stats.mean_rounds_overall() + 0.5,
        "strong model ({}) should not be slower than weak model ({})",
        strong_stats.mean_rounds_overall(),
        weak_stats.mean_rounds_overall()
    );
}

#[test]
fn collision_detection_beats_no_collision_detection_at_high_entropy() {
    // With an uninformative prediction the CD algorithm (poly in H) should
    // need far fewer rounds than the no-CD algorithm (exponential in H).
    let library = ScenarioLibrary::new(N).unwrap();
    let scenario = library.uniform_ranges();
    let condensed = scenario.condensed();
    let config = trial_config();

    let sorted = SortedGuess::new(&condensed);
    let no_cd = measure_schedule(&sorted, scenario.distribution(), sorted.pass_length(), &config);

    let coded = CodedSearch::new(&condensed).unwrap();
    let cd = measure_cd_strategy(&coded, scenario.distribution(), coded.horizon(), &config);

    assert!(no_cd.success_rate() > 0.2);
    assert!(cd.success_rate() > 0.2);
    assert!(
        cd.mean_rounds_when_resolved() <= no_cd.mean_rounds_when_resolved() + 1.0,
        "CD ({}) should beat no-CD ({}) at maximum entropy",
        cd.mean_rounds_when_resolved(),
        no_cd.mean_rounds_when_resolved()
    );
}

#[test]
fn known_size_is_the_floor_for_all_prediction_protocols() {
    let k = 500;
    let truth = SizeDistribution::point_mass(N, k).unwrap();
    let condensed = CondensedDistribution::from_sizes(&truth);
    let config = trial_config();

    let known = FixedProbability::new(k).unwrap();
    let floor = measure_schedule(&known, &truth, 64 * N, &config);

    let sorted = SortedGuess::new(&condensed).cycling();
    let predicted = measure_schedule(&sorted, &truth, 64 * N, &config);

    // The prediction-augmented protocol with a perfect point prediction is
    // within a small constant factor of the known-size floor.
    assert!(predicted.mean_rounds_overall() <= 4.0 * floor.mean_rounds_overall() + 2.0);
}

#[test]
fn willard_and_coded_search_agree_on_point_predictions() {
    // With a point prediction the coded search has a single one-range
    // phase, so its behaviour collapses to the optimal single probe;
    // Willard needs its full binary search.
    let k = 900;
    let truth = SizeDistribution::point_mass(N, k).unwrap();
    let condensed = CondensedDistribution::from_sizes(&truth);
    let config = trial_config();

    let coded = CodedSearch::new(&condensed).unwrap();
    let willard = Willard::new(N).unwrap();
    let coded_stats = measure_cd_strategy(&coded, &truth, coded.horizon().max(2), &config);
    let willard_stats = measure_cd_strategy(&willard, &truth, willard.worst_case_rounds(), &config);

    assert!(coded_stats.success_rate() > 0.2);
    assert!(willard_stats.success_rate() > 0.2);
    assert!(
        coded_stats.mean_rounds_when_resolved() <= willard_stats.mean_rounds_when_resolved(),
        "point-prediction coded search ({}) should not be slower than Willard ({})",
        coded_stats.mean_rounds_when_resolved(),
        willard_stats.mean_rounds_when_resolved()
    );
}

#[test]
fn advice_protocols_respect_their_table_2_budgets_end_to_end() {
    let universe = 1 << 10;
    let active = vec![131usize, 132, 600, 601, 980];
    let mut rng = ChaCha8Rng::seed_from_u64(3);

    for b in 0..=10usize {
        // Deterministic no-CD: scan of the remaining candidate interval.
        let id_advice = IdPrefixOracle.advise(universe, &active, b).unwrap();
        let mut scan: Vec<DeterministicNoCdAdvice> = active
            .iter()
            .map(|&id| DeterministicNoCdAdvice::new(universe, ParticipantId(id), &id_advice).unwrap())
            .collect();
        let scan_budget = scan[0].worst_case_rounds().max(1);
        assert!(scan_budget <= (universe >> b.min(10)).max(1));
        let exec = execute(
            &mut scan,
            &ExecutionConfig::new(ChannelMode::NoCollisionDetection, scan_budget),
            &mut rng,
        );
        assert!(exec.resolved, "det no-CD failed at b={b}");

        // Deterministic CD: tree descent over the remaining interval.
        let mut descent: Vec<DeterministicCdAdvice> = active
            .iter()
            .map(|&id| DeterministicCdAdvice::new(universe, ParticipantId(id), &id_advice).unwrap())
            .collect();
        let descent_budget = descent[0].worst_case_rounds().max(1);
        assert!(descent_budget <= 10usize.saturating_sub(b).max(1) + 1);
        let exec = execute(
            &mut descent,
            &ExecutionConfig::new(ChannelMode::CollisionDetection, descent_budget),
            &mut rng,
        );
        assert!(exec.resolved, "det CD failed at b={b}");

        // Randomized protocols: the advice must always keep the true range.
        let range_advice = RangeOracle.advise(universe, &active, b).unwrap();
        let advised_decay = AdvisedDecay::new(universe, &range_advice).unwrap();
        assert!(advised_decay.covers_size(active.len()));
        let exec = run_schedule(&advised_decay, active.len(), 64 * universe, &mut rng);
        assert!(exec.resolved, "advised decay failed at b={b}");

        let advised_willard = AdvisedWillard::new(universe, &range_advice).unwrap();
        let (lo, hi) = advised_willard.candidate_ranges();
        let true_range = contention_predictions::info::range_index_for_size(active.len());
        assert!(lo <= true_range && true_range <= hi, "b={b}: advice lost the range");
        // The restricted search succeeds with constant probability within
        // its budget; over repetitions it certainly succeeds at least once.
        let resolved_once = (0..50).any(|_| {
            run_cd_strategy(
                &advised_willard,
                active.len(),
                advised_willard.worst_case_rounds().max(1),
                &mut rng,
            )
            .resolved
        });
        assert!(resolved_once, "advised willard never resolved at b={b}");
    }
}

#[test]
fn facade_reexports_are_usable_together() {
    // Compile-and-run smoke test across every re-exported module.
    let truth = SizeDistribution::geometric(256, 0.2).unwrap();
    let condensed = CondensedDistribution::from_sizes(&truth);
    assert!(condensed.entropy() >= 0.0);
    let library = ScenarioLibrary::new(256).unwrap();
    assert_eq!(library.all().len(), 6);
    let decay = Decay::new(256).unwrap();
    let stats = measure_schedule(&decay, &truth, 10_000, &trial_config());
    assert!(stats.success_rate() > 0.99);
}
