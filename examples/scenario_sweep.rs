//! Scenario sweep: declare a (protocol × scenario) grid through the
//! `SweepMatrix` builder and compare classical baselines against a
//! prediction-augmented protocol on accurate *and* drifted advice.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

use contention_predictions::predict::ScenarioLibrary;
use contention_predictions::protocols::ProtocolSpec;
use contention_predictions::sim::{SweepMatrix, SweepProtocol};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096;
    let library = ScenarioLibrary::new(n)?;

    // Scenario axis: an accurate-advice workload, a bursty arrival
    // process, and the two drift workloads where the truth has moved away
    // from the advice the predictor keeps serving.
    let matrix = SweepMatrix::new()
        .scenarios([
            library.bimodal(),
            library.bursty(),
            library.correlated_drift(),
            library.adversarial_drift(),
        ])
        // Protocol axis: the classical no-prediction baseline...
        .protocol(
            SweepProtocol::from_scenario("decay", |s| {
                ProtocolSpec::new("decay").universe(s.distribution().max_size())
            })
            .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
        )
        // ...and the §2.5 cycling strategy built from each scenario's
        // advice distribution (which drift scenarios keep stale on
        // purpose).
        .protocol(
            SweepProtocol::from_scenario("sorted-guess", |s| {
                ProtocolSpec::new("sorted-guess-cycling")
                    .universe(s.distribution().max_size())
                    .prediction(s.advice_condensed())
            })
            .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
        )
        .trials(2000)
        .seed(7);

    println!(
        "sweeping {} cells ({} scenarios x {} protocols)...\n",
        matrix.len(),
        matrix.scenario_axis().len(),
        matrix.protocol_labels().len()
    );
    // Progress now arrives per completed (cell, shard) job — the
    // work-stealing scheduler interleaves every cell's shards — so print a
    // line only when a shard completes its whole cell.
    let results = matrix.run_with_progress(|p| {
        if p.cell_completed {
            eprintln!(
                "  [cells {}/{}, shards {}/{}] finished {} / {}",
                p.completed_cells,
                p.total_cells,
                p.completed_shards,
                p.total_shards,
                p.scenario,
                p.protocol
            );
        }
    })?;

    println!(
        "{}",
        results.to_markdown("Baselines vs predictions under drift")
    );

    // Drift costs rounds: compare the prediction-augmented protocol's
    // expected rounds with accurate vs adversarially drifted advice.
    let accurate = results
        .get("bimodal", "sorted-guess")
        .expect("cell exists")
        .stats
        .mean_rounds_overall();
    let drifted = results
        .get("adversarial-drift", "sorted-guess")
        .expect("cell exists")
        .stats
        .mean_rounds_overall();
    println!(
        "sorted-guess expected rounds: accurate advice {accurate:.2}, \
         adversarial drift {drifted:.2}"
    );
    Ok(())
}
