//! Domain scenario: an IoT gateway whose sensor population follows a daily
//! pattern that a simple histogram model can learn.
//!
//! Each morning a varying subset of battery-powered sensors wakes up and
//! contends for the uplink slot.  The gateway trains a
//! [`LearnedPredictor`] on the sizes it observed on previous mornings and
//! hands the predicted distribution to the §2.5 sorted-guess protocol via
//! the registry.  The example shows how the expected resolution time drops
//! as the model sees more history — the "predictions improve for free"
//! story from the paper's introduction.
//!
//! Run with:
//!
//! ```text
//! cargo run --example iot_sensor_burst
//! ```

use contention_predictions::info::SizeDistribution;
use contention_predictions::predict::LearnedPredictor;
use contention_predictions::protocols::ProtocolSpec;
use contention_predictions::sim::Simulation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8192;

    // Ground truth the gateway does not know: most mornings ~120 sensors
    // report (routine telemetry), but after a cold night ~3000 wake at once.
    let truth = SizeDistribution::bimodal(n, 120, 3000, 0.8)?;
    let mut training_rng = ChaCha8Rng::seed_from_u64(7);

    println!("training mornings | D_KL(c(X)||c(Y)) bits | E[rounds to uplink]");
    println!("------------------|------------------------|--------------------");

    for &mornings in &[0usize, 5, 20, 100, 1000] {
        // Train the histogram model on `mornings` observed wake-ups.
        let mut model = LearnedPredictor::new(n, 1.0)?;
        model.train(&truth, mornings, &mut training_rng);
        let divergence = model.divergence_from(&truth);

        // Build the prediction-augmented protocol from the model's output
        // and measure it against the real wake-up process.
        let stats = Simulation::builder()
            .protocol(
                ProtocolSpec::new("sorted-guess-cycling")
                    .universe(n)
                    .prediction(model.predicted_condensed()),
            )
            .truth(truth.clone())
            .max_rounds(64 * n)
            .trials(2000)
            .seed(99)
            .run()?;

        println!(
            "{mornings:>17} | {divergence:>22.3} | {:>18.2}",
            stats.mean_rounds_overall()
        );
    }

    println!();
    println!(
        "More training history means a lower divergence from the true wake-up \
         distribution, and the uplink slot is won in fewer rounds — without \
         changing a line of the protocol."
    );
    Ok(())
}
