//! Domain scenario: how many advice bits buy how much speed (paper §3).
//!
//! A coordinator with perfect knowledge of tonight's participant set can
//! hand every node the same `b`-bit hint before the contention window
//! opens.  Table 2 of the paper gives the tight trade-offs; this example
//! sweeps `b` and prints the measured rounds for all four protocol
//! variants next to their theory columns.
//!
//! Run with:
//!
//! ```text
//! cargo run --example perfect_advice_tradeoff
//! ```

use contention_predictions::channel::{execute, ChannelMode, ExecutionConfig, ParticipantId};
use contention_predictions::predict::{AdviceOracle, IdPrefixOracle, RangeOracle};
use contention_predictions::protocols::{
    run_cd_strategy, run_schedule, AdvisedDecay, AdvisedWillard, DeterministicCdAdvice,
    DeterministicNoCdAdvice,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024usize; // log n = 10, log log n ≈ 3.3
    let active: Vec<usize> = vec![97, 130, 255, 256, 700, 701, 900];
    let k = active.len();
    let mut rng = ChaCha8Rng::seed_from_u64(5);

    println!("universe n = {n}, |P| = {k} active nodes");
    println!(
        "{:>2} | {:>14} | {:>12} | {:>16} | {:>13}",
        "b", "det no-CD", "det CD", "rand no-CD E[r]", "rand CD E[r]"
    );
    println!("{}", "-".repeat(70));

    for b in 0..=10usize {
        // Deterministic protocols use an id-prefix advice function.
        let id_advice = IdPrefixOracle.advise(n, &active, b)?;
        let mut scan_nodes: Vec<DeterministicNoCdAdvice> = active
            .iter()
            .map(|&id| DeterministicNoCdAdvice::new(n, ParticipantId(id), &id_advice))
            .collect::<Result<_, _>>()?;
        let scan_budget = scan_nodes[0].worst_case_rounds().max(1);
        let scan = execute(
            &mut scan_nodes,
            &ExecutionConfig::new(ChannelMode::NoCollisionDetection, scan_budget),
            &mut rng,
        );

        let mut tree_nodes: Vec<DeterministicCdAdvice> = active
            .iter()
            .map(|&id| DeterministicCdAdvice::new(n, ParticipantId(id), &id_advice))
            .collect::<Result<_, _>>()?;
        let tree_budget = tree_nodes[0].worst_case_rounds().max(1);
        let tree = execute(
            &mut tree_nodes,
            &ExecutionConfig::new(ChannelMode::CollisionDetection, tree_budget),
            &mut rng,
        );

        // Randomized protocols use a range advice function; average their
        // rounds over repetitions.
        let range_advice = RangeOracle.advise(n, &active, b)?;
        let advised_decay = AdvisedDecay::new(n, &range_advice)?;
        let advised_willard = AdvisedWillard::new(n, &range_advice)?;
        let reps = 500;
        let mut decay_total = 0usize;
        let mut willard_total = 0usize;
        let mut willard_hits = 0usize;
        for _ in 0..reps {
            decay_total += run_schedule(&advised_decay, k, 64 * n, &mut rng).rounds;
            let outcome = run_cd_strategy(
                &advised_willard,
                k,
                advised_willard.worst_case_rounds().max(1),
                &mut rng,
            );
            if outcome.resolved {
                willard_total += outcome.rounds;
                willard_hits += 1;
            }
        }

        println!(
            "{b:>2} | {:>6} (≤{:>4}) | {:>4} (≤{:>3}) | {:>16.2} | {:>13.2}",
            scan.rounds,
            scan_budget,
            tree.rounds,
            tree_budget,
            decay_total as f64 / reps as f64,
            willard_total as f64 / willard_hits.max(1) as f64,
        );
    }

    println!();
    println!(
        "The deterministic columns track n/2^b and log n - b; the randomized \
         columns track log n / 2^b and log log n - b, as in Table 2 of the paper."
    );
    Ok(())
}
