//! Domain scenario: how many advice bits buy how much speed (paper §3).
//!
//! A coordinator with perfect knowledge of tonight's participant set can
//! hand every node the same `b`-bit hint before the contention window
//! opens.  Table 2 of the paper gives the tight trade-offs; this example
//! sweeps `b` and prints the measured rounds for all four protocol
//! variants next to their theory columns.  All four are constructed by
//! name through the registry and run through the `Simulation` builder —
//! the deterministic pair as per-node protocols under an explicit
//! placement, the randomized pair as uniform protocols.
//!
//! Run with:
//!
//! ```text
//! cargo run --example perfect_advice_tradeoff
//! ```

use contention_predictions::protocols::ProtocolSpec;
use contention_predictions::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024usize; // log n = 10, log log n ≈ 3.3
    let active: Vec<usize> = vec![97, 130, 255, 256, 700, 701, 900];
    let k = active.len();
    let reps = 500;

    println!("universe n = {n}, |P| = {k} active nodes");
    println!(
        "{:>2} | {:>10} | {:>10} | {:>16} | {:>13}",
        "b", "det no-CD", "det CD", "rand no-CD E[r]", "rand CD E[r]"
    );
    println!("{}", "-".repeat(70));

    for b in 0..=10usize {
        // Deterministic protocols: per-node state machines driven once
        // under the fixed placement (their budgets default to the declared
        // worst case).
        let scan = Simulation::builder()
            .protocol(
                ProtocolSpec::new("det-advice-no-cd")
                    .universe(n)
                    .advice_bits(b),
            )
            .participant_ids(active.clone())
            .trials(1)
            .seed(5)
            .run()?;
        let tree = Simulation::builder()
            .protocol(
                ProtocolSpec::new("det-advice-cd")
                    .universe(n)
                    .advice_bits(b),
            )
            .participant_ids(active.clone())
            .trials(1)
            .seed(5)
            .run()?;

        // Randomized protocols: expected rounds over repetitions.
        let decay = Simulation::builder()
            .protocol(
                ProtocolSpec::new("advised-decay")
                    .universe(n)
                    .participants(k)
                    .advice_bits(b),
            )
            .participants(k)
            .max_rounds(64 * n)
            .trials(reps)
            .seed(6)
            .run()?;
        let willard = Simulation::builder()
            .protocol(
                ProtocolSpec::new("advised-willard")
                    .universe(n)
                    .participants(k)
                    .advice_bits(b),
            )
            .participants(k)
            .trials(reps)
            .seed(6)
            .run()?;

        println!(
            "{b:>2} | {:>10.0} | {:>10.0} | {:>16.2} | {:>13.2}",
            scan.mean_rounds_overall(),
            tree.mean_rounds_overall(),
            decay.mean_rounds_overall(),
            willard.mean_rounds_when_resolved(),
        );
    }

    println!();
    println!(
        "The deterministic columns track n/2^b and log n - b; the randomized \
         columns track log n / 2^b and log log n - b, as in Table 2 of the paper."
    );
    Ok(())
}
