//! Domain scenario: what a *wrong* prediction costs.
//!
//! Theorems 2.12 and 2.16 price miscalibration through the KL divergence
//! between the condensed truth and the condensed prediction.  This example
//! fixes a ground-truth Wi-Fi contention scenario and feeds the protocols
//! progressively worse predictions — from exact, through smoothed, to a
//! stale model that believes the network is 8× larger than it really is —
//! and prints the measured cost next to the divergence.
//!
//! Run with:
//!
//! ```text
//! cargo run --example miscalibrated_predictor
//! ```

use contention_predictions::info::{CondensedDistribution, SizeDistribution};
use contention_predictions::predict::noise;
use contention_predictions::protocols::ProtocolSpec;
use contention_predictions::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096;
    // Ground truth: an access point that usually serves ~40 stations,
    // with rare evening peaks around 1500.
    let truth = SizeDistribution::bimodal(n, 40, 1500, 0.85)?;
    let truth_condensed = CondensedDistribution::from_sizes(&truth);

    let predictions: Vec<(&str, SizeDistribution)> = vec![
        ("exact", truth.clone()),
        ("mildly smoothed", noise::towards_uniform(&truth, 0.3)?),
        ("heavily smoothed", noise::towards_uniform(&truth, 0.9)?),
        ("stale (2x too large)", noise::support_shift(&truth, 1)?),
        ("stale (8x too large)", noise::support_shift(&truth, 3)?),
    ];

    println!(
        "{:<22} | {:>10} | {:>18} | {:>14} | {:>10}",
        "prediction", "D_KL bits", "no-CD E[rounds]", "CD rounds", "CD success"
    );
    println!("{}", "-".repeat(88));

    for (label, prediction) in predictions {
        let prediction_condensed = CondensedDistribution::from_sizes(&prediction);
        let divergence = truth_condensed.kl_divergence(&prediction_condensed);

        let no_cd = Simulation::builder()
            .protocol(
                ProtocolSpec::new("sorted-guess-cycling")
                    .universe(n)
                    .prediction(prediction_condensed.clone()),
            )
            .truth(truth.clone())
            .max_rounds(64 * n)
            .trials(2000)
            .seed(2024)
            .run()?;

        // The coded-search budget defaults to the protocol's own horizon.
        let cd = Simulation::builder()
            .protocol(
                ProtocolSpec::new("coded-search")
                    .universe(n)
                    .prediction(prediction_condensed),
            )
            .truth(truth.clone())
            .trials(2000)
            .seed(2024)
            .run()?;

        println!(
            "{label:<22} | {divergence:>10.3} | {:>18.2} | {:>14.2} | {:>9.0}%",
            no_cd.mean_rounds_overall(),
            cd.mean_rounds_when_resolved(),
            100.0 * cd.success_rate()
        );
    }

    println!();
    println!(
        "Bounded-divergence predictions (smoothing) cost only a constant factor, \
         exactly as the paper's D_KL terms predict; predictions whose support has \
         drifted cost far more."
    );
    Ok(())
}
