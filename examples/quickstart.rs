//! Quickstart: resolve contention on a shared channel with a learned
//! network-size prediction.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use contention_predictions::info::{CondensedDistribution, SizeDistribution};
use contention_predictions::protocols::{
    run_cd_strategy, run_schedule, CodedSearch, Decay, SortedGuess, Willard,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Universe of up to 4096 stations; tonight 70 of them are active.
    let n = 4096;
    let active_stations = 70;

    // A prediction learned from past activations: usually ~64 stations,
    // occasionally a burst of ~2048.
    let prediction = SizeDistribution::bimodal(n, 64, 2048, 0.9)?;
    let condensed = CondensedDistribution::from_sizes(&prediction);
    println!("predicted condensed entropy H(c(Y)) = {:.3} bits", condensed.entropy());

    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // --- No collision detection ------------------------------------------
    // The paper's §2.5 algorithm visits size ranges in order of predicted
    // likelihood; compare it against the classical decay strategy.
    let sorted_guess = SortedGuess::new(&condensed).cycling();
    let decay = Decay::new(n)?;

    let with_prediction = run_schedule(&sorted_guess, active_stations, 64 * n, &mut rng);
    let without_prediction = run_schedule(&decay, active_stations, 64 * n, &mut rng);
    println!(
        "no collision detection: sorted-guess resolved in {} rounds, decay in {} rounds",
        with_prediction.rounds, without_prediction.rounds
    );

    // --- Collision detection ----------------------------------------------
    // The §2.6 algorithm searches ranges phase-by-phase in order of optimal
    // codeword length; compare it against Willard's blind binary search.
    let coded_search = CodedSearch::new(&condensed)?;
    let willard = Willard::new(n)?;

    let with_prediction = run_cd_strategy(
        &coded_search,
        active_stations,
        coded_search.horizon().max(4),
        &mut rng,
    );
    let without_prediction = run_cd_strategy(
        &willard,
        active_stations,
        willard.worst_case_rounds(),
        &mut rng,
    );
    println!(
        "collision detection: coded-search {} in {} rounds, willard {} in {} rounds",
        if with_prediction.resolved { "resolved" } else { "did not resolve" },
        with_prediction.rounds,
        if without_prediction.resolved { "resolved" } else { "did not resolve" },
        without_prediction.rounds
    );

    Ok(())
}
