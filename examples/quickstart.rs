//! Quickstart: resolve contention on a shared channel with a learned
//! network-size prediction, through the unified protocol registry and the
//! `Simulation` builder.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use contention_predictions::info::{CondensedDistribution, SizeDistribution};
use contention_predictions::protocols::ProtocolSpec;
use contention_predictions::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Universe of up to 4096 stations; tonight 70 of them are active.
    let n = 4096;
    let active_stations = 70;
    let trials = 2000;

    // A prediction learned from past activations: usually ~64 stations,
    // occasionally a burst of ~2048.
    let prediction = SizeDistribution::bimodal(n, 64, 2048, 0.9)?;
    let condensed = CondensedDistribution::from_sizes(&prediction);
    println!(
        "predicted condensed entropy H(c(Y)) = {:.3} bits",
        condensed.entropy()
    );

    // --- No collision detection ------------------------------------------
    // The paper's §2.5 algorithm visits size ranges in order of predicted
    // likelihood; compare it against the classical decay strategy.
    let with_prediction = Simulation::builder()
        .protocol(
            ProtocolSpec::new("sorted-guess-cycling")
                .universe(n)
                .prediction(condensed.clone()),
        )
        .participants(active_stations)
        .max_rounds(64 * n)
        .trials(trials)
        .seed(42)
        .run()?;
    let without_prediction = Simulation::builder()
        .protocol(ProtocolSpec::new("decay").universe(n))
        .participants(active_stations)
        .max_rounds(64 * n)
        .trials(trials)
        .seed(42)
        .run()?;
    println!(
        "no collision detection: sorted-guess E[rounds] = {:.2}, decay E[rounds] = {:.2}",
        with_prediction.mean_rounds_overall(),
        without_prediction.mean_rounds_overall()
    );

    // --- Collision detection ----------------------------------------------
    // The §2.6 algorithm searches ranges phase-by-phase in order of optimal
    // codeword length; compare it against Willard's blind binary search.
    // Both round budgets default to the protocols' own horizons.
    let with_prediction = Simulation::builder()
        .protocol(
            ProtocolSpec::new("coded-search")
                .universe(n)
                .prediction(condensed),
        )
        .participants(active_stations)
        .trials(trials)
        .seed(43)
        .run()?;
    let without_prediction = Simulation::builder()
        .protocol(ProtocolSpec::new("willard").universe(n))
        .participants(active_stations)
        .trials(trials)
        .seed(43)
        .run()?;
    println!(
        "collision detection: coded-search resolved {:.0}% in {:.2} mean rounds, \
         willard resolved {:.0}% in {:.2} mean rounds",
        100.0 * with_prediction.success_rate(),
        with_prediction.mean_rounds_when_resolved(),
        100.0 * without_prediction.success_rate(),
        without_prediction.mean_rounds_when_resolved()
    );

    Ok(())
}
