//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements exactly the subset of the `rand 0.8` API surface the
//! workspace uses: [`RngCore`], [`Rng`] (with `gen`, `gen_bool` and
//! `gen_range`), [`SeedableRng`] (with the SplitMix64-based
//! `seed_from_u64`), [`seq::SliceRandom::shuffle`] and
//! [`distributions::WeightedIndex`].
//!
//! The sampling algorithms are not bit-for-bit identical to upstream
//! `rand`, but every consumer in this workspace treats the stream as an
//! opaque source of randomness and only relies on *determinism for a fixed
//! seed*, which this crate provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A low-level source of random data.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the RNG's raw output
/// (the `Standard` distribution of upstream `rand`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer in `[0, bound)` by rejection sampling, which
/// avoids the modulo bias of a plain `next_u64() % bound`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::standard_sample(rng) * (end - start)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the uniform/standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::standard_sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanding it through SplitMix64 the
    /// same way upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), as used by rand_core's seed_from_u64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let len = chunk.len().min(4);
            chunk[..len].copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffling slices.

    use super::Rng;

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod distributions {
    //! Probability distributions over the RNG's output.

    use super::RngCore;
    use std::error::Error;
    use std::fmt;

    /// Types that map raw randomness to samples of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl fmt::Display for WeightedError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights supplied"),
                WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl Error for WeightedError {}

    /// Samples indices `0..weights.len()` proportionally to the weights.
    #[derive(Debug, Clone, PartialEq)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler from a slice (or other iterable) of `f64`
        /// weights.
        ///
        /// # Errors
        ///
        /// Returns [`WeightedError`] if the weights are empty, contain a
        /// negative or non-finite value, or sum to zero.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *std::borrow::Borrow::borrow(&w);
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(Self { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let u = <f64 as super::StandardSample>::standard_sample(rng);
            let target = self.total * u;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&target).expect("weights are finite"))
            {
                // Exactly on a boundary: take the next index with mass.
                Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Lcg(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = Lcg(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = Lcg(5);
        let index = WeightedIndex::new([0.0, 0.9, 0.1]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[index.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn weighted_index_validates() {
        assert!(WeightedIndex::new([] as [f64; 0]).is_err());
        assert!(WeightedIndex::new([-1.0]).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
    }
}
