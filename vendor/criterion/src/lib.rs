//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the workspace's benches use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_with_input`,
//! `Bencher::iter` and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a deliberately simple harness: each benchmark body is
//! warmed up once and then timed over a fixed number of iterations, with
//! the mean wall-clock time printed to stdout.  It exists so `cargo bench`
//! compiles and runs without network access; it does not attempt
//! statistical rigour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        body(&mut bencher, input);
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iterations as u32
        };
        println!(
            "bench {}/{}: {:>12.3?} per iteration ({} iterations)",
            self.name, id, per_iter, bencher.iterations
        );
        self
    }

    /// Finishes the group (no-op in this harness).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; times the supplied closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// An identity function that hides a value from the optimiser.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn harness_runs_benchmarks() {
        demo_group();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
