//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements [`ChaCha8Rng`] — a genuine ChaCha stream cipher with 8
//! double-rounds used as a deterministic RNG.  The keystream is a faithful
//! ChaCha implementation (RFC 8439 quarter-round over the standard state
//! layout), though the word-consumption order is not guaranteed to be
//! bit-identical to upstream `rand_chacha`; consumers in this workspace
//! only rely on seed-determinism and statistical quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8-based deterministic random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher state template: constants, 8 key words, counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "block exhausted".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let (counter, carry) = self.state[12].overflowing_add(1);
        self.state[12] = counter;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_interval_samples_are_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = rng.next_u64();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
