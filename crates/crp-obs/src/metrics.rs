//! A lock-free metrics registry: named counters, gauges, and
//! log-bucketed latency histograms.
//!
//! The hot path — incrementing a counter, moving a gauge, recording a
//! histogram sample — is a single atomic RMW on a pre-registered cell;
//! the registry's interior mutex guards only the *name → cell* map, so
//! it is touched once per metric name, not once per observation.
//! Snapshots are plain owned data: mergeable (bucket-wise addition,
//! like the trial sketches they mirror) and rendered deterministically
//! with names in sorted order, so two snapshots that agree on every
//! observation render byte-identically regardless of the thread or
//! fleet interleaving that produced them.
//!
//! Histograms reuse the `QuantileSketch` bucketing discipline from the
//! simulator's statistics: values below 128 occupy one exact bucket
//! each; larger values share log-spaced buckets with 128 linear
//! sub-buckets per power of two (HdrHistogram-style), for a 1/256
//! worst-case relative error at any quantile.  Unlike the sketch, the
//! bucket array here is fixed-size (7424 slots covers all of `u64`) so
//! recording never allocates and never takes a lock.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::ObsError;

/// Linear buckets below this value; log-spaced with this many
/// sub-buckets per octave above it.  Matches `SKETCH_PRECISION` in the
/// crp-sim statistics module so the two codecs share error bounds.
const PRECISION: usize = 128;

/// The largest bucket index any `u64` can map to: octave `m = 63`
/// yields `(63 - 6) * 128 + 127`.
const BUCKETS: usize = (63 - 6) * PRECISION + PRECISION;

/// The bucket index of `value` (identical discipline to
/// `QuantileSketch::bucket_index`).
fn bucket_index(value: u64) -> usize {
    if value < PRECISION as u64 {
        value as usize
    } else {
        // `value` is in the octave [2^m, 2^{m+1}) with m >= 7; the top
        // seven bits below the leading one select the sub-bucket.
        let m = 63 - value.leading_zeros() as u64;
        let sub = ((value >> (m - 7)) & 127) as usize;
        (m as usize - 6) * PRECISION + sub
    }
}

/// The representative (lower-midpoint) value of bucket `index`.
fn bucket_value(index: usize) -> u64 {
    if index < PRECISION {
        index as u64
    } else {
        let m = index / PRECISION + 6;
        let sub = (index % PRECISION) as u64;
        let lo = (1u64 << m) + (sub << (m - 7));
        let width = 1u64 << (m - 7);
        lo + (width - 1) / 2
    }
}

/// A monotonically increasing event count.  Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed level (queue depth, jobs in flight).
/// Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Moves the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared storage of one histogram: a fixed bucket array plus
/// sum/min/max, all atomics, so recording is lock-free and
/// allocation-free.
#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, AtomicU64::default);
        Self {
            buckets,
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed latency/size histogram.  Cloning shares the cells.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let core = &*self.0;
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.total.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An owned, mergeable copy of one histogram's state.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Bucket occupancy, trimmed after the last non-empty bucket.
    counts: Vec<u64>,
    /// Number of recorded samples.
    pub total: u64,
    /// Sum of all samples (wrapping at `u64::MAX`, like the cells).
    pub sum: u64,
    /// Smallest sample, or `u64::MAX` when empty.
    pub min: u64,
    /// Largest sample, or 0 when empty.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.total += other.total;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The representative value at quantile `q` in `[0, 1]`, or `None`
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let clamped = q.clamp(0.0, 1.0);
        let rank = ((clamped * (self.total - 1) as f64).round() as u64).min(self.total - 1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen > rank {
                return Some(bucket_value(index));
            }
        }
        None
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

/// A registry of named metrics.  Handle lookup takes the interior
/// mutex; observations on a handle are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registered on first use.  Cache the
    /// returned handle on hot paths.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Convenience: adds `delta` to the counter named `name` (one map
    /// lock per call — fine off the hot path).
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Convenience: adds one to the counter named `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Convenience: records `value` into the histogram named `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// An owned copy of every metric's current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, cell)| {
                let core = &*cell.0;
                let mut counts: Vec<u64> = core
                    .buckets
                    .iter()
                    .map(|bucket| bucket.load(Ordering::Relaxed))
                    .collect();
                while counts.last() == Some(&0) {
                    counts.pop();
                }
                let snapshot = HistogramSnapshot {
                    counts,
                    total: core.total.load(Ordering::Relaxed),
                    sum: core.sum.load(Ordering::Relaxed),
                    min: core.min.load(Ordering::Relaxed),
                    max: core.max.load(Ordering::Relaxed),
                };
                (name.clone(), snapshot)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// An owned, mergeable view of a registry at one instant.
///
/// Merging sums counters, takes the maximum of gauges (a merged gauge
/// reads as the peak level), and adds histograms bucket-wise — all
/// order-independent, so a snapshot merged from per-worker pieces is
/// identical no matter the completion order.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge named `name`, or 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram named `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sets the counter named `name` (snapshot-building convenience).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// All counters, in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters
            .iter()
            .map(|(name, &value)| (name.as_str(), value))
    }

    /// All gauges, in sorted name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges
            .iter()
            .map(|(name, &value)| (name.as_str(), value))
    }

    /// All histograms, in sorted name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms
            .iter()
            .map(|(name, snapshot)| (name.as_str(), snapshot))
    }

    /// Merges another snapshot into this one: counters sum, gauges
    /// take the maximum, histograms add bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let entry = self.gauges.entry(name.clone()).or_insert(i64::MIN);
            *entry = (*entry).max(*value);
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }

    /// Renders the snapshot as a deterministic text report: one line
    /// per metric, names in sorted order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for (name, histogram) in &self.histograms {
            if histogram.total == 0 {
                let _ = writeln!(out, "histogram {name} count=0");
                continue;
            }
            let _ = writeln!(
                out,
                "histogram {name} count={} sum={} min={} max={} p50={} p90={} p99={}",
                histogram.total,
                histogram.sum,
                histogram.min,
                histogram.max,
                histogram.quantile(0.50).unwrap_or(0),
                histogram.quantile(0.90).unwrap_or(0),
                histogram.quantile(0.99).unwrap_or(0),
            );
        }
        out
    }

    /// Encodes the snapshot into its canonical wire text — the body of
    /// a fleet `metrics-report` frame.
    ///
    /// The format follows the `ShardSpec` codec discipline: line-based,
    /// headed and terminated, with every histogram scalar as its raw
    /// 64-bit pattern in `{:016x}` hex so values that happen to be
    /// IEEE-754 bit patterns (signed zeros, subnormals, infinities fed
    /// through `f64::to_bits`) survive byte-exactly.  Encoding a decoded
    /// snapshot reproduces the input bytes: maps iterate sorted and
    /// bucket lines are emitted sparsely in index order.
    pub fn encode(&self) -> String {
        let mut out = String::from("crp-metrics-snapshot v1\n");
        let _ = writeln!(out, "counters {}", self.counters.len());
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        let _ = writeln!(out, "gauges {}", self.gauges.len());
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        let _ = writeln!(out, "histograms {}", self.histograms.len());
        for (name, histogram) in &self.histograms {
            let occupied = histogram.counts.iter().filter(|&&count| count != 0).count();
            let _ = writeln!(
                out,
                "histogram {name} {:016x} {:016x} {:016x} {:016x} buckets {occupied}",
                histogram.total, histogram.sum, histogram.min, histogram.max,
            );
            for (index, &count) in histogram.counts.iter().enumerate() {
                if count != 0 {
                    let _ = writeln!(out, "bucket {index} {count}");
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Decodes the canonical wire text produced by
    /// [`MetricsSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// [`ObsError::Malformed`] for a missing or wrong header, truncation
    /// at any line (section counts must match exactly and the `end`
    /// terminator must be present, with nothing after it), duplicate or
    /// whitespace-bearing names, non-canonical hex scalars, out-of-range
    /// or out-of-order bucket indices, and zero bucket counts.
    pub fn decode(text: &str) -> Result<Self, ObsError> {
        fn fail<T>(what: String) -> Result<T, ObsError> {
            Err(ObsError::Malformed { what })
        }
        fn section_len(line: &str, section: &str) -> Result<usize, ObsError> {
            match line
                .strip_prefix(section)
                .and_then(|rest| rest.strip_prefix(' '))
            {
                Some(token) => token.parse::<usize>().map_err(|_| ObsError::Malformed {
                    what: format!("bad {section} count {token:?}"),
                }),
                None => fail(format!("expected \"{section} <n>\", got {line:?}")),
            }
        }
        fn name_token(token: &str) -> Result<String, ObsError> {
            if token.is_empty() {
                return fail("empty metric name".to_string());
            }
            Ok(token.to_string())
        }
        fn hex_u64(token: &str) -> Result<u64, ObsError> {
            if token.len() != 16
                || !token
                    .bytes()
                    .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
            {
                return fail(format!("scalar {token:?} is not 16 lowercase hex digits"));
            }
            u64::from_str_radix(token, 16).map_err(|_| ObsError::Malformed {
                what: format!("bad hex scalar {token:?}"),
            })
        }
        let mut lines = text.lines();
        let mut next = |what: &str| -> Result<&str, ObsError> {
            lines.next().ok_or_else(|| ObsError::Malformed {
                what: format!("truncated before {what}"),
            })
        };
        if next("header")? != "crp-metrics-snapshot v1" {
            return fail("bad header".to_string());
        }

        let mut snapshot = MetricsSnapshot::new();
        let counter_count = section_len(next("counters section")?, "counters")?;
        for _ in 0..counter_count {
            let line = next("a counter line")?;
            let mut tokens = line.split(' ');
            match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
                (Some("counter"), Some(name), Some(value), None) => {
                    let value = value.parse::<u64>().map_err(|_| ObsError::Malformed {
                        what: format!("bad counter value in {line:?}"),
                    })?;
                    if snapshot.counters.insert(name_token(name)?, value).is_some() {
                        return fail(format!("duplicate counter {name:?}"));
                    }
                }
                _ => return fail(format!("expected \"counter <name> <value>\", got {line:?}")),
            }
        }
        let gauge_count = section_len(next("gauges section")?, "gauges")?;
        for _ in 0..gauge_count {
            let line = next("a gauge line")?;
            let mut tokens = line.split(' ');
            match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
                (Some("gauge"), Some(name), Some(value), None) => {
                    let value = value.parse::<i64>().map_err(|_| ObsError::Malformed {
                        what: format!("bad gauge value in {line:?}"),
                    })?;
                    if snapshot.gauges.insert(name_token(name)?, value).is_some() {
                        return fail(format!("duplicate gauge {name:?}"));
                    }
                }
                _ => return fail(format!("expected \"gauge <name> <value>\", got {line:?}")),
            }
        }
        let histogram_count = section_len(next("histograms section")?, "histograms")?;
        for _ in 0..histogram_count {
            let line = next("a histogram line")?;
            let tokens: Vec<&str> = line.split(' ').collect();
            let [head, name, total, sum, min, max, buckets_word, occupied] = tokens[..] else {
                return fail(format!("expected a histogram head line, got {line:?}"));
            };
            if head != "histogram" || buckets_word != "buckets" {
                return fail(format!("expected a histogram head line, got {line:?}"));
            }
            let occupied = occupied.parse::<usize>().map_err(|_| ObsError::Malformed {
                what: format!("bad bucket count in {line:?}"),
            })?;
            let mut counts: Vec<u64> = Vec::new();
            for _ in 0..occupied {
                let line = next("a bucket line")?;
                let mut tokens = line.split(' ');
                match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
                    (Some("bucket"), Some(index), Some(count), None) => {
                        let index = index.parse::<usize>().map_err(|_| ObsError::Malformed {
                            what: format!("bad bucket index in {line:?}"),
                        })?;
                        let count = count.parse::<u64>().map_err(|_| ObsError::Malformed {
                            what: format!("bad bucket count in {line:?}"),
                        })?;
                        if index >= BUCKETS {
                            return fail(format!("bucket index {index} out of range"));
                        }
                        if index < counts.len() {
                            return fail(format!("bucket index {index} out of order"));
                        }
                        if count == 0 {
                            return fail(format!("empty bucket {index} must be omitted"));
                        }
                        counts.resize(index, 0);
                        counts.push(count);
                    }
                    _ => return fail(format!("expected \"bucket <i> <n>\", got {line:?}")),
                }
            }
            let histogram = HistogramSnapshot {
                counts,
                total: hex_u64(total)?,
                sum: hex_u64(sum)?,
                min: hex_u64(min)?,
                max: hex_u64(max)?,
            };
            if snapshot
                .histograms
                .insert(name_token(name)?, histogram)
                .is_some()
            {
                return fail(format!("duplicate histogram {name:?}"));
            }
        }
        if next("the end marker")? != "end" {
            return fail("expected the end marker".to_string());
        }
        if let Some(extra) = lines.next() {
            return fail(format!("unexpected content after end: {extra:?}"));
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let registry = MetricsRegistry::new();
        registry.inc("a");
        registry.add("a", 4);
        registry.gauge("depth").set(7);
        registry.gauge("depth").add(-2);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("a"), 5);
        assert_eq!(snapshot.gauge("depth"), 5);
        assert_eq!(snapshot.counter("missing"), 0);
    }

    #[test]
    fn histogram_bucketing_matches_the_sketch_discipline() {
        // Exact below the precision boundary.
        for value in [0u64, 1, 64, 127] {
            assert_eq!(bucket_value(bucket_index(value)), value);
        }
        // 1/256 worst-case relative error above it.
        for value in [128u64, 1000, 123_456, u64::MAX / 3] {
            let rep = bucket_value(bucket_index(value));
            let err = rep.abs_diff(value) as f64 / value as f64;
            assert!(err <= 1.0 / 256.0, "value {value} rep {rep} err {err}");
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn histogram_quantiles_and_merge() {
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("lat");
        for value in 0..100u64 {
            histogram.record(value);
        }
        let snapshot = registry.snapshot();
        let lat = snapshot.histogram("lat").unwrap();
        assert_eq!(lat.total, 100);
        assert_eq!(lat.min, 0);
        assert_eq!(lat.max, 99);
        assert_eq!(lat.quantile(0.5), Some(50));
        assert_eq!(lat.quantile(1.0), Some(99));

        // Merging two halves equals recording the whole.
        let left = MetricsRegistry::new();
        let right = MetricsRegistry::new();
        for value in 0..50u64 {
            left.observe("lat", value);
        }
        for value in 50..100u64 {
            right.observe("lat", value);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged.histogram("lat"), Some(lat));
    }

    #[test]
    fn the_wire_codec_round_trips_and_rejects_truncation() {
        let registry = MetricsRegistry::new();
        registry.add("jobs", 41);
        registry.gauge("depth").set(-3);
        registry.observe("lat", 0);
        registry.observe("lat", 70_000);
        let snapshot = registry.snapshot();
        let wire = snapshot.encode();
        let decoded = MetricsSnapshot::decode(&wire).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(decoded.encode(), wire, "re-encoding is byte-identical");

        // The empty snapshot is representable.
        let empty = MetricsSnapshot::new().encode();
        assert_eq!(
            empty,
            "crp-metrics-snapshot v1\ncounters 0\ngauges 0\nhistograms 0\nend\n"
        );
        assert!(MetricsSnapshot::decode(&empty).unwrap().is_empty());

        // Dropping any line (including `end`) breaks the decode.
        let lines: Vec<&str> = wire.lines().collect();
        for keep in 0..lines.len() {
            let truncated = lines[..keep].join("\n");
            assert!(
                MetricsSnapshot::decode(&truncated).is_err(),
                "decoded a snapshot truncated to {keep} lines"
            );
        }
        assert!(MetricsSnapshot::decode(&format!("{wire}counters 0\n")).is_err());
    }

    #[test]
    fn snapshot_merge_is_order_independent_and_render_deterministic() {
        let a = {
            let r = MetricsRegistry::new();
            r.add("jobs", 3);
            r.gauge("depth").set(2);
            r.observe("lat", 10);
            r.snapshot()
        };
        let b = {
            let r = MetricsRegistry::new();
            r.add("jobs", 4);
            r.add("extra", 1);
            r.gauge("depth").set(5);
            r.observe("lat", 200);
            r.snapshot()
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.render(), ba.render());
        assert_eq!(ab.counter("jobs"), 7);
        assert_eq!(ab.gauge("depth"), 5);
        assert!(ab.render().starts_with("counter extra 1\ncounter jobs 7\n"));
    }
}
