//! The structured trace-event sink: timestamped JSONL events behind a
//! zero-cost-when-disabled guard.
//!
//! Instrumented code guards every event behind [`trace_enabled`] — a
//! single relaxed atomic load — so a build with tracing off pays one
//! predictable branch per event site and allocates nothing.  When a
//! sink is installed (via `--trace-out PATH` on the CLI, or the
//! [`CRP_TRACE`](TRACE_ENV) environment variable), each event renders
//! as one JSON line with a **stable field order**: `ts_us` first, then
//! `event`, then the remaining fields in insertion order.  Floats are
//! encoded as IEEE-754 bit-pattern hex strings (`{:016x}` of
//! `f64::to_bits`), the same hash-stable discipline the fleet and
//! serve wire codecs use, so a trace file diffs cleanly across runs
//! and platforms.
//!
//! Event names are dotted lowercase paths (`sweep.cell`,
//! `shard.execute`, `kernel.select`, `fleet.dispatch`,
//! `fleet.requeue`, `fleet.ping`, `cache.hit`, `cache.miss`,
//! `cache.heal`, `serve.submit`).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::ObsError;

/// The environment variable naming the trace output path.  The values
/// `""`, `"0"`, `"off"` and `"none"` leave tracing disabled; anything
/// else is treated as a file path (strictly on CLI paths: an
/// unwritable path is a typed configuration error).
pub const TRACE_ENV: &str = "CRP_TRACE";

/// Whether a trace sink is installed and enabled.  The guard every
/// instrumentation site checks before building an event.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed sink: a line writer plus the epoch `ts_us` counts
/// from.
static SINK: OnceLock<TraceSink> = OnceLock::new();

/// The file path of the installed sink, when it was opened from a path
/// (rather than a caller-supplied writer).  Worker spawning reads this
/// to derive per-worker sibling paths.
static ACTIVE_PATH: OnceLock<String> = OnceLock::new();

/// The path of the installed trace sink, when tracing is enabled and
/// the sink was opened from a path (via [`init_trace`] or the
/// environment initialisers).  `None` for writer-backed sinks and when
/// tracing is off.
pub fn active_trace_path() -> Option<String> {
    if trace_enabled() {
        ACTIVE_PATH.get().cloned()
    } else {
        None
    }
}

/// The derived trace path for spawned worker `n` of a process tracing
/// to `base` — each subprocess writes its own sibling JSONL file, so
/// two processes never interleave lines in one file.  `trace-join`
/// discovers these siblings automatically.
pub fn derive_worker_trace_path(base: &str, n: usize) -> String {
    format!("{base}.worker-{n}")
}

/// A destination for trace events.  Normally installed process-wide
/// with [`install_trace_sink`]; owning one directly is useful in tests.
pub struct TraceSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    epoch: Instant,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").finish_non_exhaustive()
    }
}

impl TraceSink {
    /// A sink writing to `writer`, timestamping from "now".
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            writer: Mutex::new(BufWriter::new(writer)),
            epoch: Instant::now(),
        }
    }

    /// A sink appending JSON lines to the file at `path` (created if
    /// absent, truncated if present).
    pub fn to_file(path: &str) -> Result<Self, ObsError> {
        let file = File::create(path).map_err(|err| ObsError::Io {
            what: format!("cannot open trace file {path}: {err}"),
        })?;
        Ok(Self::new(Box::new(file)))
    }

    /// Writes one event as a JSON line, flushed immediately so a
    /// crashed process leaves a readable trace.
    pub fn write(&self, event: &TraceEvent) {
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let line = event.render(ts_us);
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.write_all(line.as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
        }
    }
}

/// True when a trace sink is installed: the zero-cost guard.  Callers
/// skip building the event entirely when this returns false.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-wide trace destination and enables
/// tracing.  At most one sink can ever be installed per process; a
/// second installation is a typed error.
pub fn install_trace_sink(sink: TraceSink) -> Result<(), ObsError> {
    SINK.set(sink).map_err(|_| ObsError::Io {
        what: "a trace sink is already installed in this process".to_string(),
    })?;
    TRACE_ENABLED.store(true, Ordering::Release);
    Ok(())
}

/// Opens `path` and installs it as the process-wide trace sink.
pub fn init_trace(path: &str) -> Result<(), ObsError> {
    install_trace_sink(TraceSink::to_file(path)?)?;
    let _ = ACTIVE_PATH.set(path.to_string());
    Ok(())
}

/// Emits `event` to the installed sink; a no-op when tracing is
/// disabled.  Prefer guarding the event *construction* behind
/// [`trace_enabled`] so disabled call sites allocate nothing.
pub fn emit(event: &TraceEvent) {
    if !trace_enabled() {
        return;
    }
    if let Some(sink) = SINK.get() {
        sink.write(event);
    }
}

/// Strictly reads [`TRACE_ENV`]: `Ok(None)` when unset or explicitly
/// off, `Ok(Some(path))` otherwise.  Mirrors `env_kernel_choice`: the
/// CLI maps a later open failure to a typed configuration error
/// instead of warning.
pub fn env_trace_path() -> Option<String> {
    let Ok(value) = std::env::var(TRACE_ENV) else {
        return None;
    };
    match value.trim() {
        "" | "0" | "off" | "none" => None,
        path => Some(path.to_string()),
    }
}

/// Strict environment initialisation for CLI paths: installs a sink
/// when [`TRACE_ENV`] names a path, failing loudly (typed
/// [`ObsError::Env`]) when the path cannot be opened.  Returns whether
/// tracing ended up enabled.
pub fn init_trace_from_env() -> Result<bool, ObsError> {
    let Some(path) = env_trace_path() else {
        return Ok(false);
    };
    init_trace(&path).map_err(|err| ObsError::Env {
        var: TRACE_ENV,
        value: path.clone(),
        reason: err.to_string(),
    })?;
    Ok(true)
}

/// Lenient library-default initialisation: like
/// [`init_trace_from_env`], but an unopenable path warns once on
/// stderr and leaves tracing disabled instead of failing the run —
/// the same compatibility posture as the lenient `CRP_KERNEL` parse.
pub fn init_trace_from_env_lenient() -> bool {
    match init_trace_from_env() {
        Ok(enabled) => enabled,
        Err(err) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("warning: {err}; tracing stays disabled");
            });
            false
        }
    }
}

/// One structured trace event: a dotted event name plus ordered
/// fields, rendered as a single JSON object per line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    name: &'static str,
    /// Pre-rendered `"key":value` JSON pairs, in insertion order.
    fields: Vec<(String, String)>,
}

/// Appends `text` to `out` with JSON string escaping (quote,
/// backslash, and control characters).
fn push_json_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl TraceEvent {
    /// A new event named `name` (a dotted lowercase path, e.g.
    /// `fleet.dispatch`).
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            fields: Vec::new(),
        }
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let mut rendered = String::with_capacity(value.len() + 2);
        push_json_string(&mut rendered, value);
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field as its IEEE-754 bit pattern in hex — the
    /// hash-stable encoding the wire codecs use (`{:016x}` of
    /// `f64::to_bits`), wrapped in a JSON string.
    pub fn f64_bits(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{:016x}\"", value.to_bits())));
        self
    }

    /// The event name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Renders the event as one JSON object with the stable field
    /// order: `ts_us`, `event`, then fields in insertion order.
    pub fn render(&self, ts_us: u64) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"ts_us\":");
        out.push_str(&ts_us.to_string());
        out.push_str(",\"event\":");
        push_json_string(&mut out, self.name);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            out.push_str(value);
        }
        out.push('}');
        out
    }
}

/// Parses one rendered trace line into its `(key, value)` members, in
/// order.  String values keep their surrounding quotes (escapes are
/// not resolved — trace values never need them for the fields tools
/// consume); numeric values are their digit text.  This is the shared
/// scanner under [`check_trace_line`] and the CLI `trace-join`.
///
/// # Errors
///
/// [`ObsError::Io`] when the line is not a flat JSON object of
/// string/unsigned-integer members.
pub fn trace_line_fields(line: &str) -> Result<Vec<(String, String)>, ObsError> {
    let fail = |what: &str| {
        Err(ObsError::Io {
            what: format!("invalid trace line ({what}): {line}"),
        })
    };
    let Some(body) = line
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
    else {
        return fail("not a JSON object");
    };
    // A hand-rolled member scanner is enough here: values are only
    // strings (no embedded braces outside escapes) and numbers.
    let mut members: Vec<(String, String)> = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let Some(after_quote) = rest.strip_prefix('"') else {
            return fail("expected a quoted key");
        };
        let Some(end) = after_quote.find('"') else {
            return fail("unterminated key");
        };
        let key = &after_quote[..end];
        let Some(after_colon) = after_quote[end + 1..].strip_prefix(':') else {
            return fail("expected ':' after key");
        };
        let (value, tail) = if let Some(string_body) = after_colon.strip_prefix('"') {
            let mut escaped = false;
            let mut close = None;
            for (index, ch) in string_body.char_indices() {
                if escaped {
                    escaped = false;
                } else if ch == '\\' {
                    escaped = true;
                } else if ch == '"' {
                    close = Some(index);
                    break;
                }
            }
            let Some(close) = close else {
                return fail("unterminated string value");
            };
            (
                format!("\"{}\"", &string_body[..close]),
                &string_body[close + 1..],
            )
        } else {
            let end = after_colon.find(',').unwrap_or(after_colon.len());
            let digits = &after_colon[..end];
            if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
                return fail("expected a string or unsigned integer value");
            }
            (digits.to_string(), &after_colon[end..])
        };
        members.push((key.to_string(), value));
        rest = match tail.strip_prefix(',') {
            Some(next) => next,
            None if tail.is_empty() => tail,
            None => return fail("expected ',' between members"),
        };
        if rest.is_empty() && tail.starts_with(',') {
            return fail("trailing comma");
        }
    }
    Ok(members)
}

/// Validates one rendered trace line against the schema: a flat JSON
/// object whose first two members are a numeric `ts_us` and a string
/// `event`, followed by string/number members only.  A `span` member,
/// when present, must be a canonical span id ([`crate::is_span_id`]);
/// a `parent` member additionally requires a `span`.  Returns the
/// event name on success; used by the CLI `trace-check` helper and the
/// CI smoke job.
pub fn check_trace_line(line: &str) -> Result<String, ObsError> {
    let fail = |what: &str| {
        Err(ObsError::Io {
            what: format!("invalid trace line ({what}): {line}"),
        })
    };
    let members = trace_line_fields(line)?;
    let find = |key: &str| {
        members
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, value)| value.as_str())
    };
    for key in ["span", "parent"] {
        if let Some(value) = find(key) {
            let Some(id) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return fail(&format!("{key} must be a string"));
            };
            if !crate::is_span_id(id) {
                return fail(&format!("{key} {id:?} is not a span id"));
            }
        }
    }
    if find("parent").is_some() && find("span").is_none() {
        return fail("an event with a parent must carry its own span");
    }
    match (members.first(), members.get(1)) {
        (Some((first_key, first_value)), Some((second_key, second_value)))
            if first_key == "ts_us"
                && first_value.bytes().all(|b| b.is_ascii_digit())
                && second_key == "event"
                && second_value.starts_with('"') =>
        {
            Ok(second_value.trim_matches('"').to_string())
        }
        _ => fail("first members must be numeric ts_us then string event"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_with_stable_field_order() {
        let event = TraceEvent::new("fleet.dispatch")
            .u64("job", 7)
            .str("endpoint", "local:0")
            .f64_bits("rate", 0.5);
        assert_eq!(
            event.render(1234),
            "{\"ts_us\":1234,\"event\":\"fleet.dispatch\",\"job\":7,\
             \"endpoint\":\"local:0\",\"rate\":\"3fe0000000000000\"}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let event = TraceEvent::new("cache.miss").str("key", "a\"b\\c\nd");
        assert_eq!(
            event.render(0),
            "{\"ts_us\":0,\"event\":\"cache.miss\",\"key\":\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn rendered_lines_pass_the_checker() {
        let event = TraceEvent::new("serve.submit")
            .u64("cells", 4)
            .str("id", "sub-1")
            .f64_bits("p", 1.0);
        let line = event.render(42);
        assert_eq!(check_trace_line(&line).unwrap(), "serve.submit");
    }

    #[test]
    fn the_checker_rejects_malformed_lines() {
        for bad in [
            "not json",
            "{}",
            "{\"event\":\"x\",\"ts_us\":1}",
            "{\"ts_us\":\"1\",\"event\":\"x\"}",
            "{\"ts_us\":1,\"event\":2}",
            "{\"ts_us\":1,\"event\":\"x\",\"v\":1.5}",
        ] {
            assert!(check_trace_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn the_checker_validates_span_fields() {
        let stamped = crate::SpanContext::with_parent("aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb")
            .stamp(TraceEvent::new("shard.execute").u64("shard", 0))
            .render(1);
        assert_eq!(check_trace_line(&stamped).unwrap(), "shard.execute");
        for bad in [
            // Malformed span id shapes.
            "{\"ts_us\":1,\"event\":\"x\",\"span\":\"short\"}",
            "{\"ts_us\":1,\"event\":\"x\",\"span\":\"AAAAAAAAAAAAAAAA\"}",
            "{\"ts_us\":1,\"event\":\"x\",\"span\":7}",
            "{\"ts_us\":1,\"event\":\"x\",\"span\":\"aaaaaaaaaaaaaaaa\",\"parent\":\"zz\"}",
            // A parent without its own span.
            "{\"ts_us\":1,\"event\":\"x\",\"parent\":\"aaaaaaaaaaaaaaaa\"}",
        ] {
            assert!(check_trace_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn worker_trace_paths_derive_as_siblings() {
        assert_eq!(
            derive_worker_trace_path("trace.jsonl", 0),
            "trace.jsonl.worker-0"
        );
        assert_eq!(
            derive_worker_trace_path("/tmp/t.jsonl", 12),
            "/tmp/t.jsonl.worker-12"
        );
    }

    #[test]
    fn sink_writes_one_line_per_event() {
        // A private sink (not the process-wide one) so parallel tests
        // cannot interleave.
        let path = std::env::temp_dir().join(format!("crp-obs-sink-{}.jsonl", std::process::id()));
        let sink = TraceSink::to_file(path.to_str().unwrap()).unwrap();
        sink.write(&TraceEvent::new("kernel.select").str("kernel", "batched"));
        sink.write(&TraceEvent::new("shard.execute").u64("shard", 3));
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let events: Vec<String> = text
            .lines()
            .map(|line| check_trace_line(line).unwrap())
            .collect();
        assert_eq!(events, ["kernel.select", "shard.execute"]);
    }
}
