//! Deterministic trace spans: content-hash-derived ids that correlate
//! trace events across processes.
//!
//! A span id is the first [`SPAN_HEX_LEN`] hex digits of an existing
//! content hash — a job's payload hash, a cell's hash, a submission's
//! hash-of-hashes — never a random value, so the same work always
//! carries the same span no matter which process or run emitted the
//! event.  Parentage mirrors the content-addressing hierarchy
//! (submission → cell → job) and is what `trace-join` orders merged
//! timelines by; wall clocks from different hosts are never compared.
//!
//! The *current* span is a thread-local the fleet worker sets around
//! each job execution; instrumentation sites deep in the simulator
//! ([`crate::trace_enabled`]-guarded, as always) read it back with
//! [`current_span`] and stamp their events.  Nothing here touches RNG
//! streams or merge order, so `TrialStats` stay bit-identical with
//! span stamping on or off.

use std::cell::RefCell;

use crate::TraceEvent;

/// Length of a span id: the first 16 hex digits (64 bits) of a content
/// hash — short enough to read, long enough that sibling jobs in one
/// sweep never collide in practice.
pub const SPAN_HEX_LEN: usize = 16;

/// One span: the event's own id plus its parent in the
/// submission → cell → job hierarchy (absent at the root, or when the
/// producer had no enclosing span).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanContext {
    /// The span id: [`SPAN_HEX_LEN`] lowercase hex digits.
    pub id: String,
    /// The parent span id, when the producer knows one.
    pub parent: Option<String>,
}

impl SpanContext {
    /// A root span (no parent).
    pub fn new(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            parent: None,
        }
    }

    /// A child span.
    pub fn with_parent(id: impl Into<String>, parent: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            parent: Some(parent.into()),
        }
    }

    /// Stamps `span` (and `parent`, when present) onto a trace event.
    pub fn stamp(&self, event: TraceEvent) -> TraceEvent {
        let event = event.str("span", &self.id);
        match &self.parent {
            Some(parent) => event.str("parent", parent),
            None => event,
        }
    }
}

thread_local! {
    /// The span of the job this thread is currently executing, if any.
    static CURRENT: RefCell<Option<SpanContext>> = const { RefCell::new(None) };
}

/// Sets (or clears, with `None`) the current thread's span.  The fleet
/// worker calls this around each job execution so instrumentation deep
/// in the simulator can stamp its events.
pub fn set_current_span(span: Option<SpanContext>) {
    CURRENT.with(|cell| *cell.borrow_mut() = span);
}

/// The current thread's span, if one is set.
pub fn current_span() -> Option<SpanContext> {
    CURRENT.with(|cell| cell.borrow().clone())
}

/// True when `token` has the canonical span-id shape:
/// [`SPAN_HEX_LEN`] lowercase hex digits.
pub fn is_span_id(token: &str) -> bool {
    token.len() == SPAN_HEX_LEN
        && token
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Derives a span id from a content hash (or any lowercase-hex digest):
/// its first [`SPAN_HEX_LEN`] digits.  Shorter inputs are taken whole —
/// callers pass canonical 64-digit content hashes in practice.
pub fn span_from_hash(hash: &str) -> String {
    hash.get(..SPAN_HEX_LEN).unwrap_or(hash).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_derive_deterministically_from_hashes() {
        let hash = "ab12cd34ef56ab78ab12cd34ef56ab78ab12cd34ef56ab78ab12cd34ef56ab78";
        let id = span_from_hash(hash);
        assert_eq!(id, "ab12cd34ef56ab78");
        assert!(is_span_id(&id));
        assert_eq!(span_from_hash(hash), id, "same hash, same span");
    }

    #[test]
    fn span_id_shape_is_enforced() {
        assert!(is_span_id("0123456789abcdef"));
        for bad in [
            "",
            "0123456789abcde",   // too short
            "0123456789abcdef0", // too long
            "0123456789ABCDEF",  // uppercase
            "0123456789abcdeg",  // not hex
        ] {
            assert!(!is_span_id(bad), "accepted {bad:?}");
        }
    }

    #[test]
    fn the_current_span_is_thread_local_and_restorable() {
        assert_eq!(current_span(), None);
        set_current_span(Some(SpanContext::with_parent(
            "aaaaaaaaaaaaaaaa",
            "bbbbbbbbbbbbbbbb",
        )));
        assert_eq!(
            current_span().unwrap().parent.as_deref(),
            Some("bbbbbbbbbbbbbbbb")
        );
        let other = std::thread::spawn(current_span).join().unwrap();
        assert_eq!(other, None, "spans do not leak across threads");
        set_current_span(None);
        assert_eq!(current_span(), None);
    }

    #[test]
    fn stamping_appends_span_then_parent() {
        let ctx = SpanContext::with_parent("aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb");
        let line = ctx
            .stamp(TraceEvent::new("shard.execute").u64("shard", 1))
            .render(7);
        assert_eq!(
            line,
            "{\"ts_us\":7,\"event\":\"shard.execute\",\"shard\":1,\
             \"span\":\"aaaaaaaaaaaaaaaa\",\"parent\":\"bbbbbbbbbbbbbbbb\"}"
        );
        let root = SpanContext::new("cccccccccccccccc");
        assert!(!root
            .stamp(TraceEvent::new("serve.submission"))
            .render(0)
            .contains("parent"));
    }
}
