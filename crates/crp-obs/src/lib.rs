//! # crp-obs
//!
//! The workspace's observability layer: a lock-free
//! [`MetricsRegistry`] of named counters, gauges, and log-bucketed
//! latency histograms, plus a structured JSONL trace-event sink
//! ([`TraceSink`]) behind a zero-cost-when-disabled guard
//! ([`trace_enabled`]).
//!
//! The crate is std-only and dependency-free so it can sit underneath
//! every runtime crate (crp-fleet, crp-serve, crp-sim).  Two
//! invariants the rest of the workspace leans on:
//!
//! * **Metrics never perturb results.**  Instrumentation touches
//!   atomics and (when tracing is on) an output file; it never touches
//!   RNG streams, shard ordering, or merge order, so `TrialStats` are
//!   bit-identical with tracing on or off.
//! * **Snapshots are deterministic.**  [`MetricsSnapshot`] renders
//!   with names sorted and merges order-independently, so a report
//!   assembled from per-worker pieces is byte-identical no matter the
//!   interleaving — the property the daemon `stats` report and the
//!   CLI cache summary share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod span;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::{
    current_span, is_span_id, set_current_span, span_from_hash, SpanContext, SPAN_HEX_LEN,
};
pub use trace::{
    active_trace_path, check_trace_line, derive_worker_trace_path, emit, env_trace_path,
    init_trace, init_trace_from_env, init_trace_from_env_lenient, install_trace_sink,
    trace_enabled, trace_line_fields, TraceEvent, TraceSink, TRACE_ENV,
};

use std::sync::OnceLock;

/// Errors the observability layer reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// An I/O failure opening or writing a trace sink, or a malformed
    /// trace line.
    Io {
        /// What went wrong.
        what: String,
    },
    /// A strictly parsed environment variable carried an unusable
    /// value (mirrors the fleet's `FleetError::Env`).
    Env {
        /// The variable name.
        var: &'static str,
        /// The rejected value.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A wire payload (a [`MetricsSnapshot`] codec body) that could not
    /// be decoded.
    Malformed {
        /// What was wrong with the payload.
        what: String,
    },
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Io { what } => write!(f, "{what}"),
            ObsError::Env { var, value, reason } => {
                write!(f, "invalid {var}={value:?}: {reason}")
            }
            ObsError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for ObsError {}

/// The process-wide metrics registry every runtime crate records
/// into.  Separate registries (for tests, or per-submission deltas)
/// are just [`MetricsRegistry::new`].
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}
