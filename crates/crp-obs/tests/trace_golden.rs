//! Golden trace-event encodings: the JSONL schema is a wire format, so
//! each representative event is pinned to its exact rendered line —
//! stable field order (`ts_us` first, then `event`, then fields in
//! insertion order) and hash-stable floats (bit-pattern hex, like the
//! accumulator wire codecs).  Every golden line must also pass the
//! strict [`crp_obs::check_trace_line`] validator the `trace-check`
//! subcommand applies.

use crp_obs::{check_trace_line, TraceEvent};

#[test]
fn representative_events_render_their_golden_lines() {
    let cases: Vec<(TraceEvent, &str)> = vec![
        (
            TraceEvent::new("sweep.cell")
                .u64("cell", 3)
                .str("scenario", "bimodal")
                .str("protocol", "decay"),
            r#"{"ts_us":17,"event":"sweep.cell","cell":3,"scenario":"bimodal","protocol":"decay"}"#,
        ),
        (
            TraceEvent::new("shard.execute")
                .u64("cell", 0)
                .u64("shard", 2)
                .u64("trials", 256)
                .str("kernel", "uniform-no-cd")
                .u64("micros", 1234),
            r#"{"ts_us":17,"event":"shard.execute","cell":0,"shard":2,"trials":256,"kernel":"uniform-no-cd","micros":1234}"#,
        ),
        (
            TraceEvent::new("kernel.select")
                .u64("cell", 1)
                .str("protocol", "sorted-guess")
                .str("kernel", "scalar"),
            r#"{"ts_us":17,"event":"kernel.select","cell":1,"protocol":"sorted-guess","kernel":"scalar"}"#,
        ),
        (
            TraceEvent::new("fleet.dispatch")
                .u64("job", 7)
                .str("endpoint", "local worker #0"),
            r#"{"ts_us":17,"event":"fleet.dispatch","job":7,"endpoint":"local worker #0"}"#,
        ),
        (
            TraceEvent::new("fleet.requeue")
                .u64("job", 7)
                .str("endpoint", "10.0.0.7:9311")
                .str("reason", "the peer closed the fleet stream"),
            r#"{"ts_us":17,"event":"fleet.requeue","job":7,"endpoint":"10.0.0.7:9311","reason":"the peer closed the fleet stream"}"#,
        ),
        (
            TraceEvent::new("fleet.ping").str("endpoint", "10.0.0.7:9311"),
            r#"{"ts_us":17,"event":"fleet.ping","endpoint":"10.0.0.7:9311"}"#,
        ),
        (
            TraceEvent::new("cache.hit")
                .str("kind", "job")
                .str("key", "ab12cd"),
            r#"{"ts_us":17,"event":"cache.hit","kind":"job","key":"ab12cd"}"#,
        ),
        (
            TraceEvent::new("cache.miss")
                .str("kind", "cell")
                .str("key", "ab12cd"),
            r#"{"ts_us":17,"event":"cache.miss","kind":"cell","key":"ab12cd"}"#,
        ),
        (
            TraceEvent::new("cache.heal")
                .str("kind", "job")
                .str("key", "ab12cd"),
            r#"{"ts_us":17,"event":"cache.heal","kind":"job","key":"ab12cd"}"#,
        ),
        (
            TraceEvent::new("serve.submit")
                .u64("jobs", 12)
                .u64("hits", 9)
                .u64("computed", 3)
                .u64("micros", 41999),
            r#"{"ts_us":17,"event":"serve.submit","jobs":12,"hits":9,"computed":3,"micros":41999}"#,
        ),
        // Floats travel as the full bit pattern, never a rounded decimal:
        // 0.5 is exactly 0x3fe0000000000000.
        (
            TraceEvent::new("serve.submit").f64_bits("hit_rate", 0.5),
            r#"{"ts_us":17,"event":"serve.submit","hit_rate":"3fe0000000000000"}"#,
        ),
    ];
    for (event, expected) in cases {
        let name = event.name();
        assert_eq!(event.render(17), expected, "golden line moved for {name}");
        assert_eq!(
            check_trace_line(expected).as_deref(),
            Ok(name),
            "golden line for {name} must satisfy the validator"
        );
    }
}

#[test]
fn the_validator_rejects_lines_outside_the_schema() {
    for bad in [
        "",
        "not json",
        r#"{"event":"x","ts_us":1}"#,           // wrong member order
        r#"{"ts_us":"1","event":"x"}"#,         // ts_us must be a number
        r#"{"ts_us":1,"event":"x","v":-3}"#,    // signed values are not in the schema
        r#"{"ts_us":1,"event":"x","v":[1,2]}"#, // nested values are not in the schema
        r#"{"ts_us":1,"event":"x"} trailing"#,  // trailing garbage
    ] {
        assert!(check_trace_line(bad).is_err(), "accepted {bad:?}");
    }
}
