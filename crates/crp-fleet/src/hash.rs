//! Content addressing: a self-contained SHA-256 and the canonical hex
//! digest used everywhere a payload is referenced by hash.
//!
//! Three layers share this single definition, so a hash computed by any
//! of them is meaningful to all of them:
//!
//! * the wire protocol's `scenario-put` / `scenario-have` messages ship
//!   and query worker-side blobs by this digest;
//! * the `crp-serve` result cache keys every job and sweep cell by the
//!   digest of its canonical (fully inline) wire encoding;
//! * dispatchers decide what a connection already knows by the same
//!   digest.
//!
//! The workspace is offline and vendors no crypto crates, so the
//! compression function is implemented here directly from FIPS 180-4.
//! Collision resistance is what makes content addressing sound — a
//! cheap mixing hash would let two distinct shard specs share a cache
//! entry and silently corrupt merged statistics.

/// First 32 bits of the fractional parts of the square roots of the
/// first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// First 32 bits of the fractional parts of the cube roots of the first
/// 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Processes one padded 64-byte block into the running state.
fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (t, chunk) in block.chunks_exact(4).enumerate() {
        w[t] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (slot, value) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *slot = slot.wrapping_add(value);
    }
}

/// The raw SHA-256 digest of `bytes`.
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut blocks = bytes.chunks_exact(64);
    for block in &mut blocks {
        compress(&mut state, block);
    }
    // Padding: the leftover bytes, a 0x80 byte, zeros, and the bit
    // length as a big-endian u64 closing the final block.
    let remainder = blocks.remainder();
    let mut tail = [0u8; 128];
    tail[..remainder.len()].copy_from_slice(remainder);
    tail[remainder.len()] = 0x80;
    let tail_len = if remainder.len() < 56 { 64 } else { 128 };
    let bit_len = (bytes.len() as u64).wrapping_mul(8);
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        compress(&mut state, block);
    }
    let mut digest = [0u8; 32];
    for (chunk, word) in digest.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    digest
}

/// The canonical content address of a payload: the lowercase-hex SHA-256
/// digest.  64 ASCII characters, safe to embed in message head lines.
pub fn content_hash(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(64);
    for byte in sha256(bytes) {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// True when `token` has the shape of a [`content_hash`] output — the
/// cheap syntactic check wire decoders apply before trusting a hash.
pub fn is_content_hash(token: &str) -> bool {
    token.len() == 64
        && token
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_match_the_fips_vectors() {
        // FIPS 180-4 / NIST CAVP reference vectors.
        assert_eq!(
            content_hash(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            content_hash(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            content_hash(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A million 'a's exercises the multi-block path.
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            content_hash(&million),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries_are_handled() {
        // Lengths straddling the 55/56/63/64-byte padding boundaries all
        // digest without panicking and produce distinct hashes.
        let mut seen = std::collections::HashSet::new();
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let bytes = vec![0x5Au8; len];
            assert!(seen.insert(content_hash(&bytes)), "collision at len {len}");
        }
    }

    #[test]
    fn hash_shape_check_accepts_digests_and_rejects_noise() {
        assert!(is_content_hash(&content_hash(b"x")));
        assert!(!is_content_hash(""));
        assert!(!is_content_hash("abc"));
        assert!(!is_content_hash(&"A".repeat(64)));
        assert!(!is_content_hash(&"g".repeat(64)));
    }
}
