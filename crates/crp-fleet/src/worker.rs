//! The long-lived worker loop.
//!
//! A worker serves a *stream* of jobs on one connection — N jobs per
//! process instead of the one-spec-one-subprocess lifecycle of the
//! `shard-worker` pipe — which amortises process spawn, binary load and
//! allocator warm-up over the whole batch.  The loop itself is transport
//! agnostic: [`serve`] takes any `(Read, Write)` pair, [`serve_stdio`]
//! binds it to the process's stdio (the local-pool transport), and
//! [`crate::TcpWorker`] binds it to an accepted socket (the remote
//! transport).
//!
//! Two protocol-v2 behaviours live here:
//!
//! * **Concurrent answering** — the read loop never blocks on a job:
//!   each job executes on its own scoped thread and its answer is
//!   written under a lock whenever it finishes.  Pings are therefore
//!   answered immediately even mid-job (the dispatcher's health checks
//!   stay meaningful), and a dispatcher that pipelines several jobs up
//!   to the advertised hello capacity genuinely gets them executed in
//!   parallel.
//! * **Scenario blobs** — `scenario-put` stores a content-addressed
//!   blob (hash-verified) in the connection's [`ScenarioStore`];
//!   `scenario-have` answers whether a blob is already present.  Job
//!   handlers resolve payload references out of the same store, so a
//!   scenario's masses ship once per worker instead of once per shard.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::Mutex;

use crate::frame::{read_frame, write_frame};
use crate::hash::content_hash;
use crate::protocol::{Message, PROTOCOL_VERSION};
use crate::FleetError;

/// A job handler: opaque payload in, opaque answer (or a deterministic
/// failure message) out.
pub type JobHandler<'a> = &'a (dyn Fn(&str) -> Result<String, String> + Sync);

/// A worker-side store of content-addressed blobs, fed by
/// `scenario-put` messages and read by job handlers resolving payload
/// references.  For TCP workers one store outlives all connections, so
/// a blob shipped by one dispatcher run is still there when the next
/// run reconnects (`scenario-have` lets the dispatcher discover that).
#[derive(Debug, Default)]
pub struct ScenarioStore {
    blobs: Mutex<HashMap<String, String>>,
}

impl ScenarioStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The blob stored under `hash`, if any.
    pub fn get(&self, hash: &str) -> Option<String> {
        self.blobs
            .lock()
            .expect("no store panics")
            .get(hash)
            .cloned()
    }

    /// True when `hash` is present.
    pub fn contains(&self, hash: &str) -> bool {
        self.blobs
            .lock()
            .expect("no store panics")
            .contains_key(hash)
    }

    /// Stores `blob` under `hash` (idempotent).
    pub fn insert(&self, hash: String, blob: String) {
        self.blobs
            .lock()
            .expect("no store panics")
            .insert(hash, blob);
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.lock().expect("no store panics").len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Options of one serve loop: the advertised capacity, the protocol
/// version to speak, and the fault-injection knobs the dispatcher's
/// failure tests (and CI smoke jobs) drive via the environment.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Kill the whole process (exit code 17) when the N-th job *arrives*,
    /// after writing a deliberately truncated frame — a worker dying
    /// mid-stream, from `CRP_FLEET_DIE_AFTER`.
    pub die_after: Option<usize>,
    /// Answer every job from the N-th onwards with bytes that are not a
    /// frame at all — a worker gone haywire, from
    /// `CRP_FLEET_GARBAGE_AFTER`.
    pub garbage_after: Option<usize>,
    /// Answer every job from the N-th onwards with a *well-framed* `done`
    /// whose body is nonsense — a worker whose answers frame correctly
    /// but fail payload validation, from `CRP_FLEET_MANGLE_AFTER`.
    pub mangle_after: Option<usize>,
    /// Stop reading and answering entirely when the N-th job arrives — a
    /// wedged worker that holds its connection open but goes silent, the
    /// failure mode the dispatcher's ping health check exists to catch.
    /// From `CRP_FLEET_WEDGE_AFTER`.
    pub wedge_after: Option<usize>,
    /// How many jobs the dispatcher may keep in flight on one connection
    /// (advertised in the hello, clamped to at least 1).  From
    /// `CRP_FLEET_CAPACITY`.
    pub capacity: usize,
    /// Speak protocol v1: advertise `hello v1` and reject the v2
    /// scenario messages, exactly like a worker binary from before the
    /// blob protocol existed.  From `CRP_FLEET_SPEAK_V1` — this is how
    /// the version-negotiation tests put a genuine v1 peer in a pool.
    pub legacy_v1: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            die_after: None,
            garbage_after: None,
            mangle_after: None,
            wedge_after: None,
            capacity: 1,
            legacy_v1: false,
        }
    }
}

impl ServeOptions {
    /// Reads the knobs from `CRP_FLEET_DIE_AFTER`,
    /// `CRP_FLEET_GARBAGE_AFTER`, `CRP_FLEET_MANGLE_AFTER`,
    /// `CRP_FLEET_WEDGE_AFTER`, `CRP_FLEET_CAPACITY` and
    /// `CRP_FLEET_SPEAK_V1` (unset or unparsable values keep the
    /// defaults).
    ///
    /// This is the lenient compatibility path; new callers should prefer
    /// [`ServeOptions::try_from_env`], which surfaces unusable values as
    /// typed errors instead of silently ignoring them.
    pub fn from_env() -> Self {
        let knob = |name: &str| std::env::var(name).ok().and_then(|v| v.trim().parse().ok());
        Self {
            die_after: knob("CRP_FLEET_DIE_AFTER"),
            garbage_after: knob("CRP_FLEET_GARBAGE_AFTER"),
            mangle_after: knob("CRP_FLEET_MANGLE_AFTER"),
            wedge_after: knob("CRP_FLEET_WEDGE_AFTER"),
            capacity: knob("CRP_FLEET_CAPACITY").unwrap_or(1usize).max(1),
            legacy_v1: matches!(
                std::env::var("CRP_FLEET_SPEAK_V1").as_deref(),
                Ok("1") | Ok("true") | Ok("yes")
            ),
        }
    }

    /// Like [`ServeOptions::from_env`], but strict: a set-but-unusable
    /// value is a typed [`FleetError::Env`] naming the variable and the
    /// offending value, matching how `CRP_THREADS` / `CRP_FLEET` are
    /// already validated on the dispatcher side.
    ///
    /// # Errors
    ///
    /// [`FleetError::Env`] when a fault knob or `CRP_FLEET_CAPACITY` is
    /// not a non-negative integer, `CRP_FLEET_CAPACITY` is zero, or
    /// `CRP_FLEET_SPEAK_V1` is not one of `1/true/yes/0/false/no`.
    pub fn try_from_env() -> Result<Self, FleetError> {
        fn knob(name: &'static str) -> Result<Option<usize>, FleetError> {
            match std::env::var(name) {
                Err(_) => Ok(None),
                Ok(value) => match value.trim().parse::<usize>() {
                    Ok(parsed) => Ok(Some(parsed)),
                    Err(_) => Err(FleetError::Env {
                        var: name.to_string(),
                        value,
                        reason: "expected a non-negative job count".to_string(),
                    }),
                },
            }
        }
        let capacity = match knob("CRP_FLEET_CAPACITY")? {
            None => 1,
            Some(0) => {
                return Err(FleetError::Env {
                    var: "CRP_FLEET_CAPACITY".to_string(),
                    value: "0".to_string(),
                    reason: "capacity must be at least 1".to_string(),
                })
            }
            Some(capacity) => capacity,
        };
        let legacy_v1 = match std::env::var("CRP_FLEET_SPEAK_V1") {
            Err(_) => false,
            Ok(value) => match value.trim() {
                "1" | "true" | "yes" => true,
                "0" | "false" | "no" | "" => false,
                _ => {
                    return Err(FleetError::Env {
                        var: "CRP_FLEET_SPEAK_V1".to_string(),
                        value,
                        reason: "expected one of 1/true/yes/0/false/no".to_string(),
                    })
                }
            },
        };
        Ok(Self {
            die_after: knob("CRP_FLEET_DIE_AFTER")?,
            garbage_after: knob("CRP_FLEET_GARBAGE_AFTER")?,
            mangle_after: knob("CRP_FLEET_MANGLE_AFTER")?,
            wedge_after: knob("CRP_FLEET_WEDGE_AFTER")?,
            capacity,
            legacy_v1,
        })
    }

    /// The protocol version this serve loop speaks.
    fn version(&self) -> u32 {
        if self.legacy_v1 {
            1
        } else {
            PROTOCOL_VERSION
        }
    }
}

/// Serves one connection with a caller-owned blob store: sends the hello
/// handshake, then answers jobs (and pings, and scenario messages) until
/// the peer shuts the stream down.  Returns the number of jobs accepted.
///
/// Jobs execute on scoped threads so the read loop keeps draining pings
/// and pipelined jobs while earlier jobs compute; answers may therefore
/// leave in completion order, not arrival order (the dispatcher matches
/// them by id).
///
/// # Errors
///
/// [`FleetError`] for transport failures and malformed or unexpected
/// incoming messages (including a `scenario-put` whose blob does not
/// hash to its claimed address).
pub fn serve_with_store(
    reader: &mut impl BufRead,
    writer: &mut (impl Write + Send),
    handler: JobHandler<'_>,
    options: &ServeOptions,
    store: &ScenarioStore,
) -> Result<usize, FleetError> {
    write_frame(
        writer,
        &Message::Hello {
            version: options.version(),
            capacity: options.capacity.max(1),
        }
        .encode(),
    )?;
    let writer: Mutex<&mut (dyn Write + Send)> = Mutex::new(writer);
    /// Writes one message under the writer lock.
    fn send(writer: &Mutex<&mut (dyn Write + Send)>, message: &Message) -> Result<(), FleetError> {
        let mut guard = writer.lock().expect("no serve panics");
        write_frame(&mut *guard, &message.encode())
    }
    // The first write failure a job thread hits; surfaced from the main
    // loop because scoped threads cannot return early out of it.
    let write_error: Mutex<Option<FleetError>> = Mutex::new(None);
    let mut served = 0usize;
    std::thread::scope(|scope| {
        loop {
            if let Some(error) = write_error.lock().expect("no serve panics").take() {
                return Err(error);
            }
            let Some(payload) = read_frame(reader)? else {
                return Ok(served);
            };
            match Message::decode(&payload)? {
                Message::Job { id, payload, span } => {
                    if options.die_after == Some(served) {
                        // Die mid-answer: a frame header promising more bytes
                        // than ever arrive, then a hard exit.  The dispatcher
                        // must treat this worker as dead and re-dispatch.
                        let mut writer = writer.lock().expect("no serve panics");
                        let _ = writer.write_all(b"frame 4096\ntruncat");
                        let _ = writer.flush();
                        std::process::exit(17);
                    }
                    if options.wedge_after == Some(served) {
                        // Go silent without closing anything: the socket
                        // stays open, nothing is read or written again.
                        loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        }
                    }
                    if matches!(options.garbage_after, Some(n) if served >= n) {
                        let mut guard = writer.lock().expect("no serve panics");
                        guard.write_all(b"!!fleet-garbage!!\n")?;
                        guard.flush()?;
                        served += 1;
                        continue;
                    }
                    if matches!(options.mangle_after, Some(n) if served >= n) {
                        send(
                            &writer,
                            &Message::Done {
                                id,
                                payload: "!!mangled-answer!!".to_string(),
                            },
                        )?;
                        served += 1;
                        continue;
                    }
                    served += 1;
                    let writer = &writer;
                    let write_error = &write_error;
                    scope.spawn(move || {
                        // The job's trace context rides the frame head;
                        // park it in the execution thread so the
                        // instrumentation deep in the handler (e.g. the
                        // simulator's `shard.execute` event) can stamp it.
                        crp_obs::set_current_span(span.map(|span| crp_obs::SpanContext {
                            id: span.id,
                            parent: span.parent,
                        }));
                        let answer = match handler(&payload) {
                            Ok(payload) => Message::Done { id, payload },
                            Err(message) => Message::Failed { id, message },
                        };
                        crp_obs::set_current_span(None);
                        if let Err(error) = send(writer, &answer) {
                            write_error
                                .lock()
                                .expect("no serve panics")
                                .get_or_insert(error);
                        }
                    });
                }
                Message::Ping { id } => send(&writer, &Message::Pong { id })?,
                Message::ScenarioPut { hash, blob } if !options.legacy_v1 => {
                    let actual = content_hash(blob.as_bytes());
                    if actual != hash {
                        return Err(FleetError::Malformed(format!(
                            "scenario-put blob hashes to {actual}, not its claimed {hash}"
                        )));
                    }
                    store.insert(hash, blob);
                }
                Message::ScenarioHave { hash } if !options.legacy_v1 => {
                    let present = store.contains(&hash);
                    send(&writer, &Message::ScenarioState { hash, present })?;
                }
                Message::Metrics { id } if !options.legacy_v1 => {
                    // Ship the whole process-wide registry: the worker's
                    // job/ shard counters live there, and snapshots merge
                    // order-independently on the dispatcher side.
                    let body = crp_obs::global().snapshot().encode();
                    send(&writer, &Message::MetricsReport { id, body })?;
                }
                Message::Shutdown => return Ok(served),
                other => {
                    return Err(FleetError::Malformed(format!(
                        "worker received an unexpected {other:?}"
                    )))
                }
            }
        }
    })
}

/// Serves one connection with a fresh, connection-scoped blob store.
/// See [`serve_with_store`].
///
/// # Errors
///
/// As [`serve_with_store`].
pub fn serve(
    reader: &mut impl BufRead,
    writer: &mut (impl Write + Send),
    handler: JobHandler<'_>,
    options: &ServeOptions,
) -> Result<usize, FleetError> {
    serve_with_store(reader, writer, handler, options, &ScenarioStore::new())
}

/// Serves the process's stdin/stdout — the transport of a
/// dispatcher-spawned local pool worker — with a caller-owned store (so
/// the handler can resolve blob references out of it).
///
/// # Errors
///
/// As [`serve_with_store`].
pub fn serve_stdio_with_store(
    handler: JobHandler<'_>,
    options: &ServeOptions,
    store: &ScenarioStore,
) -> Result<usize, FleetError> {
    let stdin = std::io::stdin();
    // `Stdout` (not the non-`Send` `StdoutLock`) — every write locks
    // internally, and the serve loop serialises writers anyway.
    let mut stdout = std::io::stdout();
    serve_with_store(&mut stdin.lock(), &mut stdout, handler, options, store)
}

/// Serves the process's stdin/stdout with a fresh store.
///
/// # Errors
///
/// As [`serve_with_store`].
pub fn serve_stdio(handler: JobHandler<'_>, options: &ServeOptions) -> Result<usize, FleetError> {
    serve_stdio_with_store(handler, options, &ScenarioStore::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn echo(payload: &str) -> Result<String, String> {
        match payload.strip_prefix("fail:") {
            Some(message) => Err(message.to_string()),
            None => Ok(format!("echo:{payload}")),
        }
    }

    /// Runs a scripted conversation against the serve loop and returns
    /// the worker's decoded answers (skipping the hello).
    fn converse_with(
        messages: &[Message],
        options: &ServeOptions,
    ) -> (Result<usize, FleetError>, Vec<Message>) {
        let mut request_bytes = Vec::new();
        for message in messages {
            write_frame(&mut request_bytes, &message.encode()).unwrap();
        }
        let mut reader = BufReader::new(request_bytes.as_slice());
        let mut response_bytes = Vec::new();
        let served = serve(&mut reader, &mut response_bytes, &echo, options);
        let mut responses = Vec::new();
        let mut response_reader = BufReader::new(response_bytes.as_slice());
        while let Some(frame) = read_frame(&mut response_reader).unwrap() {
            responses.push(Message::decode(&frame).unwrap());
        }
        let hello = responses.remove(0);
        let expected_version = options.version();
        assert!(
            matches!(hello, Message::Hello { version, .. } if version == expected_version),
            "unexpected hello {hello:?}"
        );
        (served, responses)
    }

    fn converse(messages: &[Message]) -> (Result<usize, FleetError>, Vec<Message>) {
        converse_with(messages, &ServeOptions::default())
    }

    #[test]
    fn worker_answers_a_stream_of_jobs_on_one_connection() {
        let (served, responses) = converse(&[
            Message::Job {
                id: 5,
                payload: "alpha".into(),
                span: None,
            },
            Message::Ping { id: 42 },
            Message::Job {
                id: 6,
                payload: "beta\nwith body".into(),
                span: None,
            },
            Message::Job {
                id: 7,
                payload: "fail:bad spec".into(),
                span: None,
            },
            Message::Shutdown,
        ]);
        assert_eq!(served.unwrap(), 3, "three jobs on one connection");
        // Jobs execute concurrently, so answers may interleave; compare
        // as sets keyed by id.
        let expect = vec![
            Message::Done {
                id: 5,
                payload: "echo:alpha".into(),
            },
            Message::Pong { id: 42 },
            Message::Done {
                id: 6,
                payload: "echo:beta\nwith body".into(),
            },
            Message::Failed {
                id: 7,
                message: "bad spec".into(),
            },
        ];
        assert_eq!(responses.len(), expect.len());
        for message in expect {
            assert!(responses.contains(&message), "missing {message:?}");
        }
    }

    #[test]
    fn worker_stops_cleanly_on_eof() {
        let (served, responses) = converse(&[Message::Job {
            id: 1,
            payload: "only".into(),
            span: None,
        }]);
        assert_eq!(served.unwrap(), 1);
        assert_eq!(responses.len(), 1);
    }

    #[test]
    fn worker_rejects_messages_only_a_dispatcher_may_send() {
        let (served, _) = converse(&[Message::Pong { id: 9 }]);
        assert!(matches!(served, Err(FleetError::Malformed(_))));
    }

    #[test]
    fn scenario_blobs_are_stored_queried_and_hash_verified() {
        let blob = "sampled 3fe0000000000000".to_string();
        let hash = content_hash(blob.as_bytes());
        let (served, responses) = converse(&[
            Message::ScenarioHave { hash: hash.clone() },
            Message::ScenarioPut {
                hash: hash.clone(),
                blob: blob.clone(),
            },
            Message::ScenarioHave { hash: hash.clone() },
            Message::Shutdown,
        ]);
        assert_eq!(served.unwrap(), 0, "blob traffic is not a job");
        assert_eq!(
            responses,
            vec![
                Message::ScenarioState {
                    hash: hash.clone(),
                    present: false,
                },
                Message::ScenarioState {
                    hash: hash.clone(),
                    present: true,
                },
            ]
        );

        // A blob whose bytes do not hash to the claimed address is a
        // protocol violation, not a silent cache poisoning.
        let (served, _) = converse(&[Message::ScenarioPut {
            hash: content_hash(b"something else"),
            blob,
        }]);
        assert!(matches!(served, Err(FleetError::Malformed(_))));
    }

    #[test]
    fn a_legacy_v1_worker_rejects_scenario_messages() {
        let options = ServeOptions {
            legacy_v1: true,
            ..Default::default()
        };
        let blob = "blob".to_string();
        let (served, _) = converse_with(
            &[Message::ScenarioPut {
                hash: content_hash(blob.as_bytes()),
                blob,
            }],
            &options,
        );
        assert!(
            matches!(served, Err(FleetError::Malformed(_))),
            "a v1 worker does not understand scenario-put"
        );
        // But plain jobs still work, under a v1 hello.
        let (served, responses) = converse_with(
            &[
                Message::Job {
                    id: 3,
                    payload: "old".into(),
                    span: None,
                },
                Message::Shutdown,
            ],
            &options,
        );
        assert_eq!(served.unwrap(), 1);
        assert_eq!(
            responses,
            vec![Message::Done {
                id: 3,
                payload: "echo:old".into(),
            }]
        );
    }

    #[test]
    fn workers_answer_metrics_pulls_and_v1_workers_reject_them() {
        let (served, responses) = converse(&[Message::Metrics { id: 9 }, Message::Shutdown]);
        assert_eq!(served.unwrap(), 0, "a metrics pull is not a job");
        match &responses[..] {
            [Message::MetricsReport { id: 9, body }] => {
                // The body is the canonical snapshot codec (contents vary
                // with whatever other tests recorded into the global
                // registry, so only decodability is asserted).
                crp_obs::MetricsSnapshot::decode(body).unwrap();
            }
            other => panic!("expected one metrics-report, got {other:?}"),
        }
        // A v1 worker predates the message entirely.
        let options = ServeOptions {
            legacy_v1: true,
            ..Default::default()
        };
        let (served, _) = converse_with(&[Message::Metrics { id: 9 }], &options);
        assert!(matches!(served, Err(FleetError::Malformed(_))));
    }

    #[test]
    fn job_spans_reach_the_handler_thread() {
        let seen = Mutex::new(None);
        let handler = |payload: &str| {
            *seen.lock().unwrap() = crp_obs::current_span();
            Ok(format!("echo:{payload}"))
        };
        let mut request = Vec::new();
        write_frame(
            &mut request,
            &Message::Job {
                id: 1,
                payload: "x".into(),
                span: Some(crate::protocol::JobSpan {
                    id: "ab12cd34ef56ab78".into(),
                    parent: Some("0011223344556677".into()),
                }),
            }
            .encode(),
        )
        .unwrap();
        write_frame(&mut request, &Message::Shutdown.encode()).unwrap();
        let mut sink = Vec::new();
        serve(
            &mut BufReader::new(request.as_slice()),
            &mut sink,
            &handler,
            &ServeOptions::default(),
        )
        .unwrap();
        let span = seen.lock().unwrap().clone().expect("handler saw a span");
        assert_eq!(span.id, "ab12cd34ef56ab78");
        assert_eq!(span.parent.as_deref(), Some("0011223344556677"));
    }

    #[test]
    fn the_store_outlives_connections() {
        let store = ScenarioStore::new();
        let hash = content_hash(b"persistent");
        let mut request = Vec::new();
        write_frame(
            &mut request,
            &Message::ScenarioPut {
                hash: hash.clone(),
                blob: "persistent".to_string(),
            }
            .encode(),
        )
        .unwrap();
        write_frame(&mut request, &Message::Shutdown.encode()).unwrap();
        let mut sink = Vec::new();
        serve_with_store(
            &mut BufReader::new(request.as_slice()),
            &mut sink,
            &echo,
            &ServeOptions::default(),
            &store,
        )
        .unwrap();
        assert!(store.contains(&hash), "the caller-owned store keeps blobs");
        assert_eq!(store.get(&hash).as_deref(), Some("persistent"));
    }

    #[test]
    fn garbage_injection_answers_with_unframable_bytes() {
        let mut request_bytes = Vec::new();
        write_frame(
            &mut request_bytes,
            &Message::Job {
                id: 0,
                payload: "x".into(),
                span: None,
            }
            .encode(),
        )
        .unwrap();
        let mut reader = BufReader::new(request_bytes.as_slice());
        let mut response_bytes = Vec::new();
        serve(
            &mut reader,
            &mut response_bytes,
            &echo,
            &ServeOptions {
                garbage_after: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        let mut response_reader = BufReader::new(response_bytes.as_slice());
        // The hello is fine...
        assert!(read_frame(&mut response_reader).unwrap().is_some());
        // ...but the answer is not a frame.
        assert!(read_frame(&mut response_reader).is_err());
    }

    #[test]
    fn serve_options_parse_the_environment() {
        // The CRP_FLEET_* knobs are only read by this test in this
        // binary, so the lenient and strict paths are checked here
        // back-to-back without racing another test over the same vars.
        std::env::set_var("CRP_FLEET_DIE_AFTER", "2");
        std::env::set_var("CRP_FLEET_GARBAGE_AFTER", "nope");
        std::env::set_var("CRP_FLEET_CAPACITY", "4");
        std::env::set_var("CRP_FLEET_SPEAK_V1", "1");
        let options = ServeOptions::from_env();
        assert_eq!(options.die_after, Some(2));
        assert_eq!(options.garbage_after, None);
        assert_eq!(options.capacity, 4);
        assert!(options.legacy_v1);
        // Strict parsing surfaces the value from_env silently dropped.
        match ServeOptions::try_from_env() {
            Err(FleetError::Env { var, value, .. }) => {
                assert_eq!(var, "CRP_FLEET_GARBAGE_AFTER");
                assert_eq!(value, "nope");
            }
            other => panic!("expected FleetError::Env, got {other:?}"),
        }
        std::env::remove_var("CRP_FLEET_GARBAGE_AFTER");
        let options = ServeOptions::try_from_env().unwrap();
        assert_eq!(options.die_after, Some(2));
        assert_eq!(options.garbage_after, None);
        assert_eq!(options.capacity, 4);
        assert!(options.legacy_v1);
        std::env::set_var("CRP_FLEET_CAPACITY", "0");
        assert!(matches!(
            ServeOptions::try_from_env(),
            Err(FleetError::Env { .. })
        ));
        std::env::set_var("CRP_FLEET_CAPACITY", "4");
        std::env::set_var("CRP_FLEET_SPEAK_V1", "maybe");
        assert!(matches!(
            ServeOptions::try_from_env(),
            Err(FleetError::Env { .. })
        ));
        std::env::remove_var("CRP_FLEET_DIE_AFTER");
        std::env::remove_var("CRP_FLEET_CAPACITY");
        std::env::remove_var("CRP_FLEET_SPEAK_V1");
        let options = ServeOptions::from_env();
        assert_eq!(options.capacity, 1, "capacity defaults to 1");
        assert!(!options.legacy_v1);
        assert_eq!(ServeOptions::try_from_env().unwrap().capacity, 1);
    }
}
