//! The long-lived worker loop.
//!
//! A worker serves a *stream* of jobs on one connection — N jobs per
//! process instead of the one-spec-one-subprocess lifecycle of the
//! `shard-worker` pipe — which amortises process spawn, binary load and
//! allocator warm-up over the whole batch.  The loop itself is transport
//! agnostic: [`serve`] takes any `(Read, Write)` pair, [`serve_stdio`]
//! binds it to the process's stdio (the local-pool transport), and
//! [`crate::TcpWorker`] binds it to an accepted socket (the remote
//! transport).

use std::io::{BufRead, Write};

use crate::frame::{read_frame, write_frame};
use crate::protocol::{Message, PROTOCOL_VERSION};
use crate::FleetError;

/// A job handler: opaque payload in, opaque answer (or a deterministic
/// failure message) out.
pub type JobHandler<'a> = &'a (dyn Fn(&str) -> Result<String, String> + Sync);

/// Options of one serve loop, including the fault-injection knobs the
/// dispatcher's failure tests (and CI smoke jobs) drive via the
/// environment.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Kill the whole process (exit code 17) when the N-th job *arrives*,
    /// after writing a deliberately truncated frame — a worker dying
    /// mid-stream, from `CRP_FLEET_DIE_AFTER`.
    pub die_after: Option<usize>,
    /// Answer every job from the N-th onwards with bytes that are not a
    /// frame at all — a worker gone haywire, from
    /// `CRP_FLEET_GARBAGE_AFTER`.
    pub garbage_after: Option<usize>,
    /// Answer every job from the N-th onwards with a *well-framed* `done`
    /// whose body is nonsense — a worker whose answers frame correctly
    /// but fail payload validation, from `CRP_FLEET_MANGLE_AFTER`.
    pub mangle_after: Option<usize>,
}

impl ServeOptions {
    /// Reads the fault-injection knobs from `CRP_FLEET_DIE_AFTER`,
    /// `CRP_FLEET_GARBAGE_AFTER` and `CRP_FLEET_MANGLE_AFTER` (unset or
    /// unparsable values disable the corresponding fault).
    pub fn from_env() -> Self {
        let knob = |name: &str| std::env::var(name).ok().and_then(|v| v.trim().parse().ok());
        Self {
            die_after: knob("CRP_FLEET_DIE_AFTER"),
            garbage_after: knob("CRP_FLEET_GARBAGE_AFTER"),
            mangle_after: knob("CRP_FLEET_MANGLE_AFTER"),
        }
    }
}

/// Serves one connection: sends the hello handshake, then answers jobs
/// (and pings) until the peer shuts the stream down.  Returns the number
/// of jobs answered.
///
/// # Errors
///
/// [`FleetError`] for transport failures and malformed or unexpected
/// incoming messages.
pub fn serve(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    handler: JobHandler<'_>,
    options: &ServeOptions,
) -> Result<usize, FleetError> {
    write_frame(
        writer,
        &Message::Hello {
            version: PROTOCOL_VERSION,
            capacity: 1,
        }
        .encode(),
    )?;
    let mut served = 0usize;
    loop {
        let Some(payload) = read_frame(reader)? else {
            return Ok(served);
        };
        match Message::decode(&payload)? {
            Message::Job { id, payload } => {
                if options.die_after == Some(served) {
                    // Die mid-answer: a frame header promising more bytes
                    // than ever arrive, then a hard exit.  The dispatcher
                    // must treat this worker as dead and re-dispatch.
                    let _ = writer.write_all(b"frame 4096\ntruncat");
                    let _ = writer.flush();
                    std::process::exit(17);
                }
                if matches!(options.garbage_after, Some(n) if served >= n) {
                    writer.write_all(b"!!fleet-garbage!!\n")?;
                    writer.flush()?;
                    served += 1;
                    continue;
                }
                if matches!(options.mangle_after, Some(n) if served >= n) {
                    let mangled = Message::Done {
                        id,
                        payload: "!!mangled-answer!!".to_string(),
                    };
                    write_frame(writer, &mangled.encode())?;
                    served += 1;
                    continue;
                }
                let answer = match handler(&payload) {
                    Ok(payload) => Message::Done { id, payload },
                    Err(message) => Message::Failed { id, message },
                };
                write_frame(writer, &answer.encode())?;
                served += 1;
            }
            Message::Ping { id } => write_frame(writer, &Message::Pong { id }.encode())?,
            Message::Shutdown => return Ok(served),
            other => {
                return Err(FleetError::Malformed(format!(
                    "worker received an unexpected {other:?}"
                )))
            }
        }
    }
}

/// Serves the process's stdin/stdout — the transport of a
/// dispatcher-spawned local pool worker.
///
/// # Errors
///
/// As [`serve`].
pub fn serve_stdio(handler: JobHandler<'_>, options: &ServeOptions) -> Result<usize, FleetError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve(&mut stdin.lock(), &mut stdout.lock(), handler, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn echo(payload: &str) -> Result<String, String> {
        match payload.strip_prefix("fail:") {
            Some(message) => Err(message.to_string()),
            None => Ok(format!("echo:{payload}")),
        }
    }

    /// Runs a scripted conversation against the serve loop and returns
    /// the worker's decoded answers (skipping the hello).
    fn converse(messages: &[Message]) -> (Result<usize, FleetError>, Vec<Message>) {
        let mut request_bytes = Vec::new();
        for message in messages {
            write_frame(&mut request_bytes, &message.encode()).unwrap();
        }
        let mut reader = BufReader::new(request_bytes.as_slice());
        let mut response_bytes = Vec::new();
        let served = serve(
            &mut reader,
            &mut response_bytes,
            &echo,
            &ServeOptions::default(),
        );
        let mut responses = Vec::new();
        let mut response_reader = BufReader::new(response_bytes.as_slice());
        while let Some(frame) = read_frame(&mut response_reader).unwrap() {
            responses.push(Message::decode(&frame).unwrap());
        }
        let hello = responses.remove(0);
        assert!(matches!(hello, Message::Hello { version, .. } if version == PROTOCOL_VERSION));
        (served, responses)
    }

    #[test]
    fn worker_answers_a_stream_of_jobs_on_one_connection() {
        let (served, responses) = converse(&[
            Message::Job {
                id: 5,
                payload: "alpha".into(),
            },
            Message::Ping { id: 42 },
            Message::Job {
                id: 6,
                payload: "beta\nwith body".into(),
            },
            Message::Job {
                id: 7,
                payload: "fail:bad spec".into(),
            },
            Message::Shutdown,
        ]);
        assert_eq!(served.unwrap(), 3, "three jobs on one connection");
        assert_eq!(
            responses,
            vec![
                Message::Done {
                    id: 5,
                    payload: "echo:alpha".into()
                },
                Message::Pong { id: 42 },
                Message::Done {
                    id: 6,
                    payload: "echo:beta\nwith body".into()
                },
                Message::Failed {
                    id: 7,
                    message: "bad spec".into()
                },
            ]
        );
    }

    #[test]
    fn worker_stops_cleanly_on_eof() {
        let (served, responses) = converse(&[Message::Job {
            id: 1,
            payload: "only".into(),
        }]);
        assert_eq!(served.unwrap(), 1);
        assert_eq!(responses.len(), 1);
    }

    #[test]
    fn worker_rejects_messages_only_a_dispatcher_may_send() {
        let (served, _) = converse(&[Message::Pong { id: 9 }]);
        assert!(matches!(served, Err(FleetError::Malformed(_))));
    }

    #[test]
    fn garbage_injection_answers_with_unframable_bytes() {
        let mut request_bytes = Vec::new();
        write_frame(
            &mut request_bytes,
            &Message::Job {
                id: 0,
                payload: "x".into(),
            }
            .encode(),
        )
        .unwrap();
        let mut reader = BufReader::new(request_bytes.as_slice());
        let mut response_bytes = Vec::new();
        serve(
            &mut reader,
            &mut response_bytes,
            &echo,
            &ServeOptions {
                garbage_after: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        let mut response_reader = BufReader::new(response_bytes.as_slice());
        // The hello is fine...
        assert!(read_frame(&mut response_reader).unwrap().is_some());
        // ...but the answer is not a frame.
        assert!(read_frame(&mut response_reader).is_err());
    }

    #[test]
    fn serve_options_parse_the_environment() {
        std::env::set_var("CRP_FLEET_DIE_AFTER", "2");
        std::env::set_var("CRP_FLEET_GARBAGE_AFTER", "nope");
        let options = ServeOptions::from_env();
        assert_eq!(options.die_after, Some(2));
        assert_eq!(options.garbage_after, None);
        std::env::remove_var("CRP_FLEET_DIE_AFTER");
        std::env::remove_var("CRP_FLEET_GARBAGE_AFTER");
    }
}
