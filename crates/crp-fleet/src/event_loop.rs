//! The multiplexed event-loop dispatcher: one thread, all endpoints.
//!
//! [`run`] drives an entire batch from the dispatching thread itself.
//! Every endpoint is a non-blocking source — TCP sockets via
//! `set_nonblocking`, subprocess stdio pipes via the feeder channel a
//! [`crate::endpoint`] helper spawns (drained with `try_recv`) — and
//! one loop round-robins accept / read / schedule / write over all of
//! them.  Compared to the thread-per-endpoint scheduler this removes a
//! thread spawn + join and a 100ms-granularity poll loop per worker per
//! batch, which is what makes fleets of hundreds of tiny-shard workers
//! practical (see the `fleet_scale` bench).
//!
//! The crate forbids `unsafe`, so there is no raw `poll(2)` over fds;
//! readiness is approximated by draining every source each round and
//! sleeping adaptively (sub-millisecond, bounded by the tuning's poll
//! interval) when a round made no progress.  With tens or hundreds of
//! sources the loop is effectively always busy and the sleep never
//! matters; on an idle tail it bounds wakeup latency to ~2ms.
//!
//! Scheduling semantics are identical to the threaded dispatcher — same
//! shared [`State`], same attempt accounting, straggler re-dispatch,
//! ping health checks, capacity pipelining, blob shipping, and
//! validation — with two additions:
//!
//! * **Weights** — a connection may hold up to `hello capacity ×
//!   endpoint weight` jobs, and fresh jobs go to the least-loaded
//!   eligible connection (load compared as a fraction of that limit).
//! * **Elastic membership** — when [`crate::Dispatcher::listen_for_workers`]
//!   opened a registration listener, workers dialing it mid-run are
//!   accepted into the loop as weight-1 connections (a worker speaks
//!   hello first, so a dialed-in connection is byte-identical to an
//!   accepted one); a joined worker that leaves has its in-flight jobs
//!   requeued exactly like a dead fixed worker.
//!
//! Because a job's answer is a deterministic function of its payload and
//! results merge in job order, none of this changes any result bit —
//! only wall-clock time.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, ChildStdin};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::{Duration, Instant};

use crate::dispatch::{AnswerValidator, BlobSet, Dispatcher, JobPayload, State, RECONNECT_LIMIT};
use crate::endpoint::{
    accept_hello_capacity, negotiate_hello, spawn_pipe_feeder, DispatchTuning, WorkerEndpoint,
};
use crate::frame::{MAX_FRAME_BYTES, MAX_HEADER_BYTES};
use crate::obs::FleetObs;
use crate::protocol::{Message, PROTOCOL_VERSION};
use crate::FleetError;

/// Incremental frame parser for a non-blocking stream: bytes are fed in
/// as they arrive and complete `frame <len>\n<payload>` frames are
/// extracted, however the reads happened to chunk them.
pub(crate) struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (drained lazily to amortise the memmove).
    start: usize,
}

impl FrameDecoder {
    fn new() -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
        }
    }

    fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when bytes of an unfinished frame are pending — an EOF here
    /// is a truncation, not a clean close.
    fn is_mid_frame(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Extracts the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FleetError> {
        let pending = &self.buf[self.start..];
        let Some(newline) = pending.iter().position(|&byte| byte == b'\n') else {
            if pending.len() > MAX_HEADER_BYTES {
                return Err(FleetError::Malformed(format!(
                    "frame header exceeds {MAX_HEADER_BYTES} bytes"
                )));
            }
            self.compact();
            return Ok(None);
        };
        let header = std::str::from_utf8(&pending[..newline])
            .map_err(|_| FleetError::Malformed("frame header is not UTF-8".into()))?;
        let len = header
            .strip_prefix("frame ")
            .and_then(|token| token.trim().parse::<usize>().ok())
            .ok_or_else(|| FleetError::Malformed(format!("bad frame header {header:?}")))?;
        if len > MAX_FRAME_BYTES {
            return Err(FleetError::Malformed(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
            )));
        }
        let total = newline + 1 + len;
        if pending.len() < total {
            self.compact();
            return Ok(None);
        }
        let frame = pending[newline + 1..total].to_vec();
        self.start += total;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(frame))
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// The byte transport under one event-loop connection.
enum Transport {
    /// A non-blocking TCP socket (reads and writes both ride
    /// `WouldBlock`).
    Tcp(TcpStream),
    /// A subprocess's stdio: stdout drained non-blockingly off the
    /// feeder channel, stdin written blockingly (frames are small and a
    /// subprocess pipe has kernel buffering, so a blocking write only
    /// stalls against a worker that stopped reading — which the ping
    /// machinery then catches).
    Pipe {
        chunks: Receiver<std::io::Result<Vec<u8>>>,
        stdin: ChildStdin,
    },
}

/// One live connection inside the event loop: transport, incremental
/// decoder, a write-behind outbox, hello state, and the same
/// pipelining/ping bookkeeping [`crate::endpoint`]'s blocking
/// `Connection` keeps.
pub(crate) struct LoopConn {
    transport: Transport,
    /// The spawned subprocess of a local endpoint, if any (killed on
    /// drop, reaped on [`LoopConn::shutdown`]).
    child: Option<Child>,
    decoder: FrameDecoder,
    /// Bytes queued for the peer but not yet accepted by the kernel.
    outbox: Vec<u8>,
    /// Clean end-of-stream seen (remaining decoder frames still drain).
    eof: bool,
    /// Hello received and negotiated.
    ready: bool,
    hello_deadline: Instant,
    version: u32,
    capacity: usize,
    known_blobs: HashSet<String>,
    /// Jobs written to this connection and awaiting answers.
    outstanding: Vec<usize>,
    last_heard: Instant,
    ping_sent: Option<Instant>,
    next_ping: u64,
    /// Human-readable peer description for diagnostics.
    peer: String,
}

impl LoopConn {
    fn with_transport(
        transport: Transport,
        child: Option<Child>,
        peer: String,
        tuning: &DispatchTuning,
    ) -> Self {
        Self {
            transport,
            child,
            decoder: FrameDecoder::new(),
            outbox: Vec::new(),
            eof: false,
            ready: false,
            hello_deadline: Instant::now() + tuning.handshake_timeout,
            version: PROTOCOL_VERSION,
            capacity: 1,
            known_blobs: HashSet::new(),
            outstanding: Vec::new(),
            last_heard: Instant::now(),
            ping_sent: None,
            next_ping: 0,
            peer,
        }
    }

    /// Connects a fixed endpoint as a non-blocking source: a local
    /// endpoint is spawned with its stdout routed through the feeder
    /// channel, a TCP endpoint is dialed and switched to non-blocking.
    fn from_endpoint(
        endpoint: &WorkerEndpoint,
        tuning: &DispatchTuning,
    ) -> Result<Self, FleetError> {
        let connect_error = |reason: String| FleetError::Connect {
            endpoint: endpoint.describe(),
            reason,
        };
        match endpoint {
            WorkerEndpoint::Local { .. } => {
                let mut child = endpoint
                    .spawn_local()
                    .map_err(|e| connect_error(e.to_string()))?;
                let stdout = child.stdout.take().expect("stdout was piped");
                let stdin = child.stdin.take().expect("stdin was piped");
                Ok(Self::with_transport(
                    Transport::Pipe {
                        chunks: spawn_pipe_feeder(stdout),
                        stdin,
                    },
                    Some(child),
                    endpoint.describe(),
                    tuning,
                ))
            }
            WorkerEndpoint::Tcp { .. } => {
                let stream = endpoint
                    .dial_tcp(tuning)
                    .map_err(|e| connect_error(e.to_string()))?;
                stream
                    .set_nonblocking(true)
                    .map_err(|e| connect_error(e.to_string()))?;
                Ok(Self::with_transport(
                    Transport::Tcp(stream),
                    None,
                    endpoint.describe(),
                    tuning,
                ))
            }
        }
    }

    /// Wraps a worker that dialed the registration listener.  Workers
    /// speak hello first, so an accepted stream is indistinguishable
    /// from one the dispatcher dialed.
    fn from_joined(
        stream: TcpStream,
        peer: String,
        tuning: &DispatchTuning,
    ) -> Result<Self, FleetError> {
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true).map_err(FleetError::from)?;
        Ok(Self::with_transport(
            Transport::Tcp(stream),
            None,
            format!("joined worker {peer}"),
            tuning,
        ))
    }

    fn note_heard(&mut self) {
        self.last_heard = Instant::now();
        self.ping_sent = None;
    }

    /// Drains every byte the transport has ready into the decoder
    /// without blocking.  Returns whether any bytes arrived; a clean
    /// end-of-stream sets `eof` instead of erroring so already-buffered
    /// answers are still delivered first.
    fn drain_transport(&mut self) -> Result<bool, FleetError> {
        let mut progressed = false;
        match &mut self.transport {
            Transport::Tcp(stream) => {
                let mut buffer = [0u8; 8192];
                loop {
                    match stream.read(&mut buffer) {
                        Ok(0) => {
                            self.eof = true;
                            break;
                        }
                        Ok(n) => {
                            self.decoder.feed(&buffer[..n]);
                            progressed = true;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            Transport::Pipe { chunks, .. } => loop {
                match chunks.try_recv() {
                    Ok(Ok(chunk)) => {
                        self.decoder.feed(&chunk);
                        progressed = true;
                    }
                    Ok(Err(error)) => return Err(error.into()),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.eof = true;
                        break;
                    }
                }
            },
        }
        Ok(progressed)
    }

    /// The next decoded message, `Ok(None)` when the buffered bytes hold
    /// no complete frame.
    fn next_message(&mut self) -> Result<Option<Message>, FleetError> {
        match self.decoder.next_frame()? {
            None => Ok(None),
            Some(frame) => {
                self.note_heard();
                Message::decode(&frame).map(Some)
            }
        }
    }

    /// Appends one frame (header + payload) to the outbox.
    fn queue_frame(&mut self, payload: &[u8]) -> Result<(), FleetError> {
        if payload.len() > MAX_FRAME_BYTES {
            return Err(FleetError::Malformed(format!(
                "refusing to send a {}-byte frame (limit {MAX_FRAME_BYTES})",
                payload.len()
            )));
        }
        self.outbox
            .extend_from_slice(format!("frame {}\n", payload.len()).as_bytes());
        self.outbox.extend_from_slice(payload);
        Ok(())
    }

    /// Queues one claimed job: on a v2 connection with a compact
    /// payload, any blobs this connection has not seen are shipped first
    /// (`scenario-put` is idempotent and unacknowledged) and the compact
    /// form is sent; otherwise the inline form.  The span rides along on
    /// v3+ connections only.  Mirrors the threaded dispatcher's
    /// `send_claim`.
    fn queue_job(
        &mut self,
        job: usize,
        jobs: &[JobPayload],
        blobs: &BlobSet,
    ) -> Result<(), FleetError> {
        let payload = &jobs[job];
        let span = if self.version >= 3 {
            payload.span.clone()
        } else {
            None
        };
        if self.version >= 2 {
            if let Some(compact) = &payload.compact {
                for hash in &payload.refs {
                    if self.known_blobs.contains(hash) {
                        continue;
                    }
                    let blob = blobs.get(hash).ok_or_else(|| {
                        FleetError::Malformed(format!(
                            "job {job} references blob {hash} missing from the batch blob set"
                        ))
                    })?;
                    self.queue_frame(
                        &Message::ScenarioPut {
                            hash: hash.clone(),
                            blob: blob.to_string(),
                        }
                        .encode(),
                    )?;
                    self.known_blobs.insert(hash.clone());
                }
                self.queue_frame(
                    &Message::Job {
                        id: job as u64,
                        payload: compact.clone(),
                        span,
                    }
                    .encode(),
                )?;
                self.outstanding.push(job);
                return Ok(());
            }
        }
        self.queue_frame(
            &Message::Job {
                id: job as u64,
                payload: payload.inline.clone(),
                span,
            }
            .encode(),
        )?;
        self.outstanding.push(job);
        Ok(())
    }

    /// The peer description (for per-worker metrics labelling).
    pub(crate) fn peer(&self) -> &str {
        &self.peer
    }

    /// Pulls the worker's current metrics-snapshot wire body with a
    /// `metrics`/`metrics-report` round trip, polling the non-blocking
    /// transport until the report (or the ping timeout).  `Ok(None)` on
    /// pre-v3 or not-yet-ready connections — those workers are reported
    /// as `metrics: unavailable`.  Called only on warm (idle) connections
    /// between batches, so the only interleaved frames are stale pongs
    /// or query answers.
    ///
    /// # Errors
    ///
    /// [`FleetError::Unresponsive`] when no report arrives in
    /// [`DispatchTuning::ping_timeout`]; any transport error otherwise
    /// (the connection must then be dropped).
    pub(crate) fn fetch_metrics(
        &mut self,
        tuning: &DispatchTuning,
    ) -> Result<Option<String>, FleetError> {
        if !self.ready || self.version < 3 {
            return Ok(None);
        }
        let id = self.next_ping;
        self.next_ping += 1;
        self.queue_frame(&Message::Metrics { id }.encode())?;
        let deadline = Instant::now() + tuning.ping_timeout;
        loop {
            self.flush()?;
            self.drain_transport()?;
            while let Some(message) = self.next_message()? {
                match message {
                    Message::MetricsReport { id: got, body } if got == id => return Ok(Some(body)),
                    // Stale answers from a previous round trip.
                    Message::Pong { .. }
                    | Message::ScenarioState { .. }
                    | Message::MetricsReport { .. } => {}
                    other => {
                        return Err(FleetError::Malformed(format!(
                            "expected a metrics report, got {other:?}"
                        )))
                    }
                }
            }
            if self.eof {
                return Err(FleetError::Closed);
            }
            if Instant::now() >= deadline {
                return Err(FleetError::Unresponsive {
                    silent_ms: tuning.ping_timeout.as_millis() as u64,
                });
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// The ping state machine, identical to the blocking connection's:
    /// silence past `ping_after` with work in flight sends a ping; a
    /// ping unanswered for `ping_timeout` is [`FleetError::Unresponsive`].
    fn ping_if_silent(&mut self, tuning: &DispatchTuning) -> Result<(), FleetError> {
        if let Some(sent) = self.ping_sent {
            if sent.elapsed() >= tuning.ping_timeout {
                return Err(FleetError::Unresponsive {
                    silent_ms: self.last_heard.elapsed().as_millis() as u64,
                });
            }
        } else if self.last_heard.elapsed() >= tuning.ping_after {
            let id = self.next_ping;
            self.next_ping += 1;
            self.queue_frame(&Message::Ping { id }.encode())?;
            self.ping_sent = Some(Instant::now());
        }
        Ok(())
    }

    /// Pushes outbox bytes to the peer: TCP writes as much as the kernel
    /// accepts (the rest stays queued), pipe writes complete.
    fn flush(&mut self) -> Result<(), FleetError> {
        if self.outbox.is_empty() {
            return Ok(());
        }
        match &mut self.transport {
            Transport::Tcp(stream) => {
                while !self.outbox.is_empty() {
                    match stream.write(&self.outbox) {
                        Ok(0) => {
                            return Err(std::io::Error::from(std::io::ErrorKind::WriteZero).into())
                        }
                        Ok(n) => {
                            self.outbox.drain(..n);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            Transport::Pipe { stdin, .. } => {
                stdin.write_all(&self.outbox)?;
                stdin.flush()?;
                self.outbox.clear();
            }
        }
        Ok(())
    }

    /// Best-effort goodbye so a worker exits instead of being killed by
    /// [`Drop`] — the warm pool's cold-stop path.
    pub(crate) fn shutdown(mut self) {
        let _ = self.queue_frame(&Message::Shutdown.encode());
        if let Transport::Tcp(stream) = &self.transport {
            // Switch back to blocking so the goodbye actually leaves.
            let _ = stream.set_nonblocking(false);
        }
        let _ = self.flush();
        if let Some(mut child) = self.child.take() {
            let _ = child.wait();
        }
    }
}

impl Drop for LoopConn {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The event-loop state a [`Dispatcher`] carries *between* batches: the
/// registration listener, one warm connection slot per fixed endpoint,
/// and the still-connected elastically joined workers.
pub(crate) struct WarmPool {
    /// The elastic-membership listener, if
    /// [`Dispatcher::listen_for_workers`] opened one.
    pub(crate) listener: Option<TcpListener>,
    /// Warm connection per fixed endpoint, by endpoint index.
    pub(crate) fixed: Vec<Option<LoopConn>>,
    /// Warm connections of joined workers.
    pub(crate) joined: Vec<LoopConn>,
}

impl WarmPool {
    pub(crate) fn with_fixed(endpoints: usize) -> Self {
        Self {
            listener: None,
            fixed: (0..endpoints).map(|_| None).collect(),
            joined: Vec::new(),
        }
    }

    /// Politely shuts every warm worker down and closes the listener.
    pub(crate) fn shutdown(&mut self) {
        for conn in self.fixed.iter_mut().filter_map(Option::take) {
            conn.shutdown();
        }
        for conn in self.joined.drain(..) {
            conn.shutdown();
        }
        self.listener = None;
    }
}

/// One scheduling slot of the loop: a fixed endpoint (reconnected with
/// backoff up to [`RECONNECT_LIMIT`] failures) or an elastically joined
/// worker (`endpoint: None`; never reconnected — the worker re-dials).
struct Slot {
    endpoint: Option<usize>,
    weight: usize,
    conn: Option<LoopConn>,
    failures: usize,
    retry_at: Instant,
}

impl Slot {
    /// Jobs this slot's connection may hold: negotiated capacity times
    /// the endpoint's configured weight.
    fn limit(&self) -> usize {
        self.conn
            .as_ref()
            .map_or(0, |conn| conn.capacity.max(1) * self.weight.max(1))
    }
}

/// Tears a connection down: its outstanding jobs are requeued (or
/// declared exhausted), the failure is recorded, and the slot backs off
/// before any reconnect.
fn fail_conn(
    slot: &mut Slot,
    error: &FleetError,
    state: &mut State,
    max_attempts: usize,
    obs: &FleetObs,
) {
    if let Some(conn) = slot.conn.take() {
        for &job in &conn.outstanding {
            state.requeue_or_fail(job, error, max_attempts);
            obs.requeued(&conn.peer, job as u64, &error.to_string());
        }
    }
    state.last_transport_error = Some(error.to_string());
    slot.failures += 1;
    slot.retry_at = Instant::now() + Duration::from_millis(20 * slot.failures as u64);
}

/// Reads and handles everything one connection has ready: the hello (if
/// still pending), answers, failures, pongs.  Returns whether anything
/// arrived; an `Err` means the connection is unusable and the caller
/// must [`fail_conn`] it.
fn pump(
    conn: &mut LoopConn,
    state: &mut State,
    done: &(dyn Fn(usize) + Sync),
    validate: AnswerValidator<'_>,
    tuning: &DispatchTuning,
    max_attempts: usize,
    obs: &FleetObs,
) -> Result<bool, FleetError> {
    let mut progressed = conn.drain_transport()?;
    while let Some(message) = conn.next_message()? {
        progressed = true;
        if !conn.ready {
            let (version, capacity) = negotiate_hello(message)?;
            conn.capacity =
                accept_hello_capacity(&conn.peer, capacity, tuning.strict_hello_capacity)?;
            conn.version = version;
            conn.ready = true;
            continue;
        }
        match message {
            Message::Done { id, payload } if conn.outstanding.contains(&(id as usize)) => {
                let job = id as usize;
                conn.outstanding.retain(|&j| j != job);
                // A well-framed answer whose body fails validation is as
                // untrustworthy as garbage bytes: this job's attempt is
                // spent and the connection goes down.
                if let Err(reason) = validate(id, &payload) {
                    let error = FleetError::Malformed(format!(
                        "answer to job {job} failed validation: {reason}"
                    ));
                    state.requeue_or_fail(job, &error, max_attempts);
                    obs.requeued(&conn.peer, id, &error.to_string());
                    return Err(error);
                }
                let micros =
                    state.claimed_at[job].map_or(0, |claimed| claimed.elapsed().as_micros() as u64);
                state.in_flight[job] -= 1;
                obs.completed(&conn.peer, micros);
                if !state.is_settled(job) {
                    state.results[job] = Some(payload);
                    // Completions are delivered from the loop thread, so
                    // they are serialised exactly like the threaded
                    // dispatcher's under-lock delivery.
                    done(job);
                }
            }
            Message::Failed { id, message } if conn.outstanding.contains(&(id as usize)) => {
                let job = id as usize;
                conn.outstanding.retain(|&j| j != job);
                state.in_flight[job] -= 1;
                obs.failed(&conn.peer);
                if !state.is_settled(job) {
                    state.failures[job] = Some(FleetError::Job { id, message });
                }
            }
            // Pongs (health checks), stale query answers, and metrics
            // reports carry no job result.
            Message::Pong { .. }
            | Message::ScenarioState { .. }
            | Message::MetricsReport { .. } => {}
            other => {
                return Err(FleetError::Malformed(format!(
                    "expected an answer to an outstanding job, got {other:?}"
                )))
            }
        }
    }
    if conn.eof {
        return Err(if conn.decoder.is_mid_frame() {
            FleetError::Malformed("stream ended inside a frame".to_string())
        } else {
            FleetError::Closed
        });
    }
    Ok(progressed)
}

/// Runs one batch on the event loop.  Shares the [`State`] shape (and
/// therefore the final-assembly and error-reporting code) with the
/// threaded dispatcher.
pub(crate) fn run(
    dispatcher: &Dispatcher,
    jobs: &[JobPayload],
    blobs: &BlobSet,
    done: &(dyn Fn(usize) + Sync),
    validate: AnswerValidator<'_>,
) -> State {
    let tuning = dispatcher.tuning;
    let max_attempts = dispatcher.max_attempts;
    let obs = &dispatcher.obs;
    let mut state = State::new(jobs.len());

    // Adopt the warm pool: the registration listener, per-endpoint warm
    // connections, and previously joined workers.  Warm connections get
    // their silence clock reset so the idle time between batches is not
    // mistaken for unresponsiveness.
    let (listener, mut slots) = {
        let mut warm = dispatcher.warm.lock().expect("no dispatcher panics");
        let listener = warm.listener.take();
        let mut slots: Vec<Slot> = (0..dispatcher.endpoints.len())
            .map(|index| Slot {
                endpoint: Some(index),
                weight: dispatcher.weights[index].max(1),
                conn: warm.fixed[index].take().map(|mut conn| {
                    conn.note_heard();
                    conn
                }),
                failures: 0,
                retry_at: Instant::now(),
            })
            .collect();
        for mut conn in warm.joined.drain(..) {
            conn.note_heard();
            slots.push(Slot {
                endpoint: None,
                weight: 1,
                conn: Some(conn),
                failures: 0,
                retry_at: Instant::now(),
            });
        }
        (listener, slots)
    };

    const MIN_IDLE: Duration = Duration::from_micros(100);
    let max_idle = tuning.poll.min(Duration::from_millis(2)).max(MIN_IDLE);
    let mut idle = MIN_IDLE;
    // While the pool is empty but a listener is open, how long to keep
    // waiting for a worker to join before giving the batch up.
    let mut join_grace_start: Option<Instant> = None;

    loop {
        let mut progressed = false;

        // Accept elastically joining workers.
        if let Some(listener) = &listener {
            loop {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        match LoopConn::from_joined(stream, peer.to_string(), &tuning) {
                            Ok(conn) => {
                                slots.push(Slot {
                                    endpoint: None,
                                    weight: 1,
                                    conn: Some(conn),
                                    failures: 0,
                                    retry_at: Instant::now(),
                                });
                                progressed = true;
                            }
                            Err(error) => {
                                state.last_transport_error = Some(error.to_string());
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        state.last_transport_error = Some(e.to_string());
                        break;
                    }
                }
            }
        }

        // Reconnect fixed endpoints whose backoff expired.  Connecting
        // *before* claiming means a connect failure never burns a job
        // attempt, exactly like the threaded release-unattempted path.
        let now = Instant::now();
        for slot in &mut slots {
            let Some(index) = slot.endpoint else { continue };
            if slot.conn.is_some() || slot.failures >= RECONNECT_LIMIT || slot.retry_at > now {
                continue;
            }
            match LoopConn::from_endpoint(&dispatcher.endpoints[index], &tuning) {
                Ok(conn) => {
                    slot.conn = Some(conn);
                    progressed = true;
                }
                Err(error) => {
                    state.last_transport_error = Some(error.to_string());
                    slot.failures += 1;
                    slot.retry_at = now + Duration::from_millis(20 * slot.failures as u64);
                }
            }
        }

        // Read phase: handle everything every connection has ready.
        for slot in &mut slots {
            if slot.conn.is_none() {
                continue;
            }
            match pump(
                slot.conn.as_mut().expect("checked above"),
                &mut state,
                done,
                validate,
                &tuning,
                max_attempts,
                obs,
            ) {
                Ok(p) => progressed |= p,
                Err(error) => fail_conn(slot, &error, &mut state, max_attempts, obs),
            }
        }

        // Deadline phase: hello timeouts and ping health checks.
        let now = Instant::now();
        for slot in &mut slots {
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            if !conn.ready {
                if now >= conn.hello_deadline {
                    let error = FleetError::Handshake(format!(
                        "timed out waiting for the hello of {}",
                        conn.peer
                    ));
                    fail_conn(slot, &error, &mut state, max_attempts, obs);
                }
                continue;
            }
            if conn.outstanding.is_empty() {
                continue;
            }
            let was_pinging = conn.ping_sent.is_some();
            match conn.ping_if_silent(&tuning) {
                Ok(()) => {
                    if !was_pinging && conn.ping_sent.is_some() {
                        obs.pinged(&conn.peer);
                    }
                }
                Err(error) => fail_conn(slot, &error, &mut state, max_attempts, obs),
            }
        }

        // Fill phase: queued jobs go to the least-loaded eligible
        // connection (load as a fraction of capacity × weight, compared
        // by cross-multiplication), skipping connections that already
        // hold the job — a duplicate id on one stream would read as a
        // protocol violation.  Jobs nobody can take yet return to the
        // queue front in order.
        let mut held: Vec<usize> = Vec::new();
        while let Some(job) = state.queue.pop_front() {
            if state.is_settled(job) {
                continue;
            }
            let mut best: Option<usize> = None;
            let mut any_spare = false;
            for (i, slot) in slots.iter().enumerate() {
                let Some(conn) = slot.conn.as_ref() else {
                    continue;
                };
                if !conn.ready || conn.outstanding.len() >= slot.limit() {
                    continue;
                }
                any_spare = true;
                if conn.outstanding.contains(&job) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let best_conn = slots[b].conn.as_ref().expect("best slot is live");
                        conn.outstanding.len() * slots[b].limit()
                            < best_conn.outstanding.len() * slot.limit()
                    }
                };
                if better {
                    best = Some(i);
                }
            }
            match best {
                Some(i) => {
                    state.claim(job);
                    let slot = &mut slots[i];
                    let conn = slot.conn.as_mut().expect("picked a live slot");
                    match conn.queue_job(job, jobs, blobs) {
                        Ok(()) => {
                            obs.dispatched(&conn.peer, job as u64, jobs[job].span.as_ref());
                            progressed = true;
                        }
                        Err(error) => {
                            state.requeue_or_fail(job, &error, max_attempts);
                            fail_conn(slot, &error, &mut state, max_attempts, obs);
                        }
                    }
                }
                None => {
                    held.push(job);
                    if !any_spare {
                        break;
                    }
                }
            }
        }
        for job in held.into_iter().rev() {
            state.queue.push_front(job);
        }

        // Straggler phase: once the queue is dry, fully idle connections
        // speculatively duplicate the least-duplicated job still in
        // flight elsewhere, after the grace period — whichever copy
        // answers first wins.
        if state.queue.is_empty() {
            let now = Instant::now();
            for slot in &mut slots {
                let idle_conn = slot
                    .conn
                    .as_ref()
                    .is_some_and(|conn| conn.ready && conn.outstanding.is_empty());
                if !idle_conn {
                    continue;
                }
                let mut pick: Option<usize> = None;
                for job in 0..jobs.len() {
                    if state.is_settled(job)
                        || state.in_flight[job] == 0
                        || state.attempts[job] >= max_attempts
                    {
                        continue;
                    }
                    let ready_at = state.claimed_at[job]
                        .map_or(now, |claimed| claimed + tuning.straggler_grace);
                    if ready_at > now {
                        continue;
                    }
                    let better = pick.is_none_or(|best| {
                        (state.in_flight[job], state.attempts[job], job)
                            < (state.in_flight[best], state.attempts[best], best)
                    });
                    if better {
                        pick = Some(job);
                    }
                }
                let Some(job) = pick else { break };
                state.claim(job);
                let conn = slot.conn.as_mut().expect("idle slot is live");
                match conn.queue_job(job, jobs, blobs) {
                    Ok(()) => {
                        obs.dispatched(&conn.peer, job as u64, jobs[job].span.as_ref());
                        progressed = true;
                    }
                    Err(error) => {
                        state.requeue_or_fail(job, &error, max_attempts);
                        fail_conn(slot, &error, &mut state, max_attempts, obs);
                    }
                }
            }
        }

        // Write phase: push the outboxes out.
        for slot in &mut slots {
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            if let Err(error) = conn.flush() {
                fail_conn(slot, &error, &mut state, max_attempts, obs);
            }
        }

        if (0..jobs.len()).all(|job| state.is_settled(job)) {
            break;
        }

        // Hopelessness: nothing connected and nothing left to connect.
        // With a registration listener open, wait one handshake timeout
        // for a worker to join before giving the batch up.
        let now = Instant::now();
        let any_live = slots.iter().any(|slot| slot.conn.is_some());
        let any_connectable = slots.iter().any(|slot| {
            slot.endpoint.is_some() && slot.conn.is_none() && slot.failures < RECONNECT_LIMIT
        });
        if !any_live && !any_connectable {
            if listener.is_none() {
                break;
            }
            let since = *join_grace_start.get_or_insert(now);
            if now.duration_since(since) >= tuning.handshake_timeout {
                break;
            }
        } else {
            join_grace_start = None;
        }

        // Joined workers that died never reconnect; drop their slots so
        // a long sweep with churn does not accumulate dead weight.
        slots.retain(|slot| slot.endpoint.is_some() || slot.conn.is_some());

        if progressed {
            idle = MIN_IDLE;
        } else {
            std::thread::sleep(idle);
            idle = (idle * 2).min(max_idle);
        }
    }

    // Park the warm state back on the dispatcher: ready connections with
    // nothing in flight survive to the next batch; connections with
    // stale answers still coming are dropped (their workers re-dial or
    // are respawned).
    let mut warm = dispatcher.warm.lock().expect("no dispatcher panics");
    warm.listener = listener;
    for slot in slots {
        if let Some(conn) = slot.conn {
            if conn.ready && conn.outstanding.is_empty() {
                match slot.endpoint {
                    Some(index) => warm.fixed[index] = Some(conn),
                    None => warm.joined.push(conn),
                }
            } else {
                // Dropped with stale straggler answers still owed: the
                // jobs settled elsewhere, so only the health counters
                // need to forget them.
                obs.abandoned(&conn.peer, conn.outstanding.len() as u64);
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_decoder_reassembles_arbitrarily_chunked_frames() {
        let mut wire = Vec::new();
        crate::frame::write_frame(&mut wire, b"first\npayload").unwrap();
        crate::frame::write_frame(&mut wire, b"").unwrap();
        crate::frame::write_frame(&mut wire, b"third").unwrap();
        // Feed one byte at a time: every split point is exercised.
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for &byte in &wire {
            decoder.feed(&[byte]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(
            frames,
            vec![b"first\npayload".to_vec(), b"".to_vec(), b"third".to_vec()]
        );
        assert!(!decoder.is_mid_frame(), "no partial frame left over");
    }

    #[test]
    fn frame_decoder_rejects_garbage_and_oversize() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(b"!!fleet-garbage!!\n");
        assert!(matches!(
            decoder.next_frame(),
            Err(FleetError::Malformed(_))
        ));

        let mut decoder = FrameDecoder::new();
        decoder.feed(format!("frame {}\n", MAX_FRAME_BYTES + 1).as_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(FleetError::Malformed(_))
        ));

        // A header that never terminates is rejected at the length cap
        // instead of buffering forever.
        let mut decoder = FrameDecoder::new();
        decoder.feed(&[b'x'; MAX_HEADER_BYTES + 1]);
        assert!(matches!(
            decoder.next_frame(),
            Err(FleetError::Malformed(_))
        ));
    }

    #[test]
    fn frame_decoder_tracks_mid_frame_state_for_truncation() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(b"frame 4096\ntruncat");
        assert!(decoder.next_frame().unwrap().is_none(), "incomplete frame");
        assert!(decoder.is_mid_frame(), "an EOF here is a truncation");
    }
}
