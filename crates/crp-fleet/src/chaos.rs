//! Declarative chaos plans: typed, scheduled fault injection.
//!
//! The fault-injection knobs ([`crate::ServeOptions`]'s
//! `CRP_FLEET_DIE_AFTER` family) started life as ad-hoc environment
//! variables set by hand in the failure tests.  A [`ChaosPlan`] promotes
//! them to a first-class value: an ordered set of [`ChaosEvent`]s — *which
//! worker* suffers *which fault* *after how many jobs* — that sweeps and
//! fuzz campaigns can declare, persist, and minimise with the same
//! machinery as scenario faults.  [`ChaosPlan::apply`] compiles the plan
//! back down to the env knobs on a pool's local subprocess endpoints, so
//! the worker side needs no new protocol: the env variables remain as the
//! compatibility layer the plan targets.
//!
//! Plans have a canonical text form, `WORKER:FAULT@JOBS` entries joined by
//! commas (e.g. `0:die@2,1:wedge@5`), carried by the `--chaos` CLI flag
//! and round-tripped by [`ChaosPlan::parse`] / [`std::fmt::Display`].

use std::fmt;

use crate::endpoint::WorkerEndpoint;
use crate::FleetError;

/// One injectable fault family, mirroring the [`crate::ServeOptions`]
/// knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker process exits (code 17) mid-answer when the scheduled
    /// job arrives, leaving a truncated frame.
    Die,
    /// Every answer from the scheduled job onwards is unframable bytes.
    Garbage,
    /// Every answer from the scheduled job onwards is a well-framed
    /// `done` whose body fails payload validation.
    Mangle,
    /// The worker goes silent when the scheduled job arrives, holding
    /// its connection open.
    Wedge,
}

impl FaultKind {
    /// Every fault kind, in a stable order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Die,
        FaultKind::Garbage,
        FaultKind::Mangle,
        FaultKind::Wedge,
    ];

    /// The canonical plan-entry name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Die => "die",
            FaultKind::Garbage => "garbage",
            FaultKind::Mangle => "mangle",
            FaultKind::Wedge => "wedge",
        }
    }

    /// The legacy environment knob this fault compiles down to.
    pub fn env_var(&self) -> &'static str {
        match self {
            FaultKind::Die => "CRP_FLEET_DIE_AFTER",
            FaultKind::Garbage => "CRP_FLEET_GARBAGE_AFTER",
            FaultKind::Mangle => "CRP_FLEET_MANGLE_AFTER",
            FaultKind::Wedge => "CRP_FLEET_WEDGE_AFTER",
        }
    }

    fn parse(text: &str, entry: &str) -> Result<Self, FleetError> {
        Self::ALL
            .into_iter()
            .find(|kind| kind.name() == text)
            .ok_or_else(|| FleetError::Chaos {
                entry: entry.to_string(),
                reason: format!(
                    "unknown fault {text:?}; expected one of: {}",
                    Self::ALL.map(|k| k.name()).join(", ")
                ),
            })
    }
}

/// One scheduled fault: `worker` suffers `fault` once it has accepted
/// `after_jobs` jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Zero-based index of the targeted worker in the pool's endpoint
    /// order.
    pub worker: usize,
    /// Which fault to inject.
    pub fault: FaultKind,
    /// How many jobs the worker accepts before the fault fires.
    pub after_jobs: usize,
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}@{}",
            self.worker,
            self.fault.name(),
            self.after_jobs
        )
    }
}

/// A declarative schedule of infrastructure faults over a worker pool.
///
/// The empty plan is a no-op; [`ChaosPlan::apply`] then returns the
/// endpoints unchanged, which is why chaos-configured runs stay available
/// on every backend.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// The empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: adds one scheduled fault.
    #[must_use]
    pub fn with(mut self, worker: usize, fault: FaultKind, after_jobs: usize) -> Self {
        self.events.push(ChaosEvent {
            worker,
            fault,
            after_jobs,
        });
        self
    }

    /// The scheduled events, in declaration order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Rejects plans scheduling the same fault kind twice on one worker
    /// (each kind compiles to a single env knob, so a duplicate would
    /// silently drop one of the two schedules).
    fn check_duplicates(&self) -> Result<(), FleetError> {
        for (index, event) in self.events.iter().enumerate() {
            if self.events[..index]
                .iter()
                .any(|e| e.worker == event.worker && e.fault == event.fault)
            {
                return Err(FleetError::Chaos {
                    entry: event.to_string(),
                    reason: format!(
                        "worker {} already schedules {:?}; one schedule per fault kind per worker",
                        event.worker,
                        event.fault.name()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Parses the canonical text form: comma-separated
    /// `WORKER:FAULT@JOBS` entries (e.g. `0:die@2,1:wedge@5`).  The empty
    /// string is the empty plan.
    ///
    /// # Errors
    ///
    /// [`FleetError::Chaos`] naming the offending entry for malformed
    /// syntax, unknown fault names, or duplicate (worker, fault) pairs.
    pub fn parse(text: &str) -> Result<Self, FleetError> {
        let mut plan = Self::new();
        for entry in text.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let malformed = |reason: &str| FleetError::Chaos {
                entry: entry.to_string(),
                reason: reason.to_string(),
            };
            let (worker, rest) = entry
                .split_once(':')
                .ok_or_else(|| malformed("expected WORKER:FAULT@JOBS"))?;
            let (fault, after) = rest
                .split_once('@')
                .ok_or_else(|| malformed("expected WORKER:FAULT@JOBS"))?;
            let worker = worker
                .parse::<usize>()
                .map_err(|_| malformed("worker index must be a non-negative integer"))?;
            let fault = FaultKind::parse(fault, entry)?;
            let after_jobs = after
                .parse::<usize>()
                .map_err(|_| malformed("job count must be a non-negative integer"))?;
            plan.events.push(ChaosEvent {
                worker,
                fault,
                after_jobs,
            });
        }
        plan.check_duplicates()?;
        Ok(plan)
    }

    /// The environment variables the plan schedules for one worker, in
    /// event order — the compatibility layer the legacy knobs remain as.
    pub fn env_for_worker(&self, worker: usize) -> Vec<(String, String)> {
        self.events
            .iter()
            .filter(|event| event.worker == worker)
            .map(|event| {
                (
                    event.fault.env_var().to_string(),
                    event.after_jobs.to_string(),
                )
            })
            .collect()
    }

    /// The highest worker index the plan targets, if any.
    pub fn max_worker(&self) -> Option<usize> {
        self.events.iter().map(|event| event.worker).max()
    }

    /// Compiles the plan onto a pool: returns the endpoints with each
    /// targeted local worker's spawn environment extended by the fault
    /// knobs.  Untargeted endpoints pass through unchanged.
    ///
    /// # Errors
    ///
    /// [`FleetError::Chaos`] if the plan targets a worker index outside
    /// the pool, a TCP endpoint (faults are injected at spawn time, so
    /// only local subprocess workers can be sabotaged), or schedules
    /// duplicate (worker, fault) pairs.
    pub fn apply(&self, endpoints: &[WorkerEndpoint]) -> Result<Vec<WorkerEndpoint>, FleetError> {
        self.check_duplicates()?;
        for event in &self.events {
            match endpoints.get(event.worker) {
                None => {
                    return Err(FleetError::Chaos {
                        entry: event.to_string(),
                        reason: format!(
                            "worker index {} out of range for a pool of {}",
                            event.worker,
                            endpoints.len()
                        ),
                    })
                }
                Some(WorkerEndpoint::Tcp { addr }) => {
                    return Err(FleetError::Chaos {
                        entry: event.to_string(),
                        reason: format!(
                            "worker {} is the TCP endpoint {addr}; chaos plans can only \
                             sabotage local subprocess workers",
                            event.worker
                        ),
                    })
                }
                Some(WorkerEndpoint::Local { .. }) => {}
            }
        }
        Ok(endpoints
            .iter()
            .enumerate()
            .map(|(index, endpoint)| match endpoint {
                WorkerEndpoint::Local {
                    program,
                    args,
                    envs,
                } => {
                    let mut envs = envs.clone();
                    envs.extend(self.env_for_worker(index));
                    WorkerEndpoint::local_with_env(program.clone(), args.clone(), envs)
                }
                other => other.clone(),
            })
            .collect())
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for event in &self.events {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{event}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_canonical_form() {
        let plan = ChaosPlan::parse("0:die@2,1:wedge@5,1:garbage@0").unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.to_string(), "0:die@2,1:wedge@5,1:garbage@0");
        assert_eq!(ChaosPlan::parse(&plan.to_string()).unwrap(), plan);
        assert!(ChaosPlan::parse("").unwrap().is_empty());
        assert_eq!(ChaosPlan::parse(" 0:mangle@1 , ").unwrap().len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_entries_with_typed_errors() {
        for bad in [
            "die@2",
            "0:die",
            "x:die@2",
            "0:explode@2",
            "0:die@x",
            "0:die@2,0:die@9",
        ] {
            match ChaosPlan::parse(bad) {
                Err(FleetError::Chaos { .. }) => {}
                other => panic!("expected FleetError::Chaos for {bad:?}, got {other:?}"),
            }
        }
        let err = ChaosPlan::parse("0:explode@2").unwrap_err();
        assert!(err.to_string().contains("wedge"), "{err}");
    }

    #[test]
    fn apply_extends_local_spawn_environments() {
        let endpoints = vec![
            WorkerEndpoint::local("worker", vec!["--stdio".into()]),
            WorkerEndpoint::local("worker", vec!["--stdio".into()]),
        ];
        let plan = ChaosPlan::new()
            .with(1, FaultKind::Die, 2)
            .with(1, FaultKind::Garbage, 4);
        let sabotaged = plan.apply(&endpoints).unwrap();
        assert_eq!(sabotaged[0], endpoints[0]);
        match &sabotaged[1] {
            WorkerEndpoint::Local { envs, .. } => {
                assert_eq!(
                    envs,
                    &vec![
                        ("CRP_FLEET_DIE_AFTER".to_string(), "2".to_string()),
                        ("CRP_FLEET_GARBAGE_AFTER".to_string(), "4".to_string()),
                    ]
                );
            }
            other => panic!("expected a local endpoint, got {other:?}"),
        }
        // The empty plan is the identity.
        assert_eq!(ChaosPlan::new().apply(&endpoints).unwrap(), endpoints);
    }

    #[test]
    fn apply_rejects_out_of_range_and_tcp_targets() {
        let endpoints = vec![
            WorkerEndpoint::local("worker", vec![]),
            WorkerEndpoint::tcp("10.0.0.7:9311"),
        ];
        let out_of_range = ChaosPlan::new().with(2, FaultKind::Die, 0);
        assert!(matches!(
            out_of_range.apply(&endpoints),
            Err(FleetError::Chaos { .. })
        ));
        let tcp_target = ChaosPlan::new().with(1, FaultKind::Wedge, 1);
        let err = tcp_target.apply(&endpoints).unwrap_err();
        assert!(err.to_string().contains("TCP"), "{err}");
        let duplicate = ChaosPlan::new()
            .with(0, FaultKind::Die, 1)
            .with(0, FaultKind::Die, 2);
        assert!(duplicate.apply(&endpoints).is_err());
    }
}
