//! Worker endpoints, connections, and the fleet manifest.
//!
//! A [`WorkerEndpoint`] says where one worker lives: a local subprocess
//! the dispatcher spawns and talks to over piped stdio, or a `host:port`
//! it dials over TCP (a worker started on another machine with
//! `crp_experiments worker --listen`).  [`FleetManifest`] is the textual
//! pool description carried by the `CRP_FLEET` environment variable and
//! the `--fleet` CLI flag: comma-separated entries, each either
//! `local[:N]` (N spawned subprocess workers) or `host:port` (one remote
//! worker).

use std::collections::HashSet;
use std::io::{BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::frame::{read_frame, wait_readable, write_frame};
use crate::protocol::{JobSpan, Message, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::FleetError;

/// Default poll interval for straggler checks on timed-read connections
/// (TCP sockets natively; subprocess pipes via [`TimedPipeReader`]).
const TCP_POLL: Duration = Duration::from_millis(100);
/// Default deadline for a fresh connection to deliver its hello.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);
/// Default silence on a polling connection with work in flight before a
/// health-check ping goes out.  Workers answer pings from their read
/// loop even while a job computes, so silence past this plus
/// [`DispatchTuning::ping_timeout`] means the worker process is wedged,
/// not busy.
const PING_AFTER: Duration = Duration::from_millis(1000);
/// Default deadline for an unanswered ping before the connection is
/// declared unresponsive and its jobs are re-dispatched.
const PING_TIMEOUT: Duration = Duration::from_millis(2000);
/// Default grace a job must be in flight before an idle worker may
/// speculatively re-dispatch it.
const STRAGGLER_GRACE: Duration = Duration::from_millis(250);

/// Every timing knob of a dispatcher and its connections, hoisted out of
/// the old hardcoded constants so benches and chaos tests can tighten
/// them deterministically.  [`DispatchTuning::default`] reproduces the
/// historical values; `CRP_FLEET_POLL_MS` scales the whole family down
/// from a faster base poll (strictly parsed on config paths via
/// [`DispatchTuning::try_from_env`], mirroring the `CRP_THREADS` error
/// style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchTuning {
    /// Read-poll interval between frames (straggler/abandon checks).
    pub poll: Duration,
    /// How long a fresh connection may take to deliver its hello.
    pub handshake_timeout: Duration,
    /// Silence with work in flight before a health-check ping goes out.
    pub ping_after: Duration,
    /// How long a ping may go unanswered before the connection is
    /// declared unresponsive.
    pub ping_timeout: Duration,
    /// How long a job must be in flight before an idle worker may
    /// speculatively re-dispatch it.
    pub straggler_grace: Duration,
    /// Treat a capacity-0 hello as a typed handshake error instead of
    /// warning once and clamping to 1.
    pub strict_hello_capacity: bool,
}

impl Default for DispatchTuning {
    fn default() -> Self {
        Self {
            poll: TCP_POLL,
            handshake_timeout: HANDSHAKE_TIMEOUT,
            ping_after: PING_AFTER,
            ping_timeout: PING_TIMEOUT,
            straggler_grace: STRAGGLER_GRACE,
            strict_hello_capacity: false,
        }
    }
}

impl DispatchTuning {
    /// A tuning family scaled from a base poll interval, preserving the
    /// default ratios (ping after 10 polls, ping timeout 20, straggler
    /// grace 2.5, handshake deadline 100).
    pub fn with_poll_ms(poll_ms: u64) -> Self {
        let poll_ms = poll_ms.max(1);
        Self {
            poll: Duration::from_millis(poll_ms),
            handshake_timeout: Duration::from_millis(poll_ms * 100),
            ping_after: Duration::from_millis(poll_ms * 10),
            ping_timeout: Duration::from_millis(poll_ms * 20),
            straggler_grace: Duration::from_millis(poll_ms * 5 / 2),
            strict_hello_capacity: false,
        }
    }

    /// Reads `CRP_FLEET_POLL_MS` leniently: an unset variable keeps the
    /// defaults, an unusable value warns once and keeps the defaults.
    /// Config/CLI paths should prefer the strict
    /// [`DispatchTuning::try_from_env`].
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(tuning) => tuning,
            Err(error) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!("warning: {error}; using the default dispatch tuning");
                });
                Self::default()
            }
        }
    }

    /// Like [`DispatchTuning::from_env`], but strict: a set-but-unusable
    /// `CRP_FLEET_POLL_MS` is a typed [`FleetError::Env`].
    ///
    /// # Errors
    ///
    /// [`FleetError::Env`] when `CRP_FLEET_POLL_MS` is set but is not a
    /// positive integer count of milliseconds.
    pub fn try_from_env() -> Result<Self, FleetError> {
        match std::env::var("CRP_FLEET_POLL_MS") {
            Err(_) => Ok(Self::default()),
            Ok(value) => match value.trim().parse::<u64>() {
                Ok(ms) if ms > 0 => Ok(Self::with_poll_ms(ms)),
                _ => Err(FleetError::Env {
                    var: "CRP_FLEET_POLL_MS".to_string(),
                    value,
                    reason: "expected a positive poll interval in milliseconds".to_string(),
                }),
            },
        }
    }
}

/// Applies the capacity-0 hello policy: a worker advertising `capacity 0`
/// is either a typed handshake error (strict paths) or a once-per-endpoint
/// warning with the capacity clamped to 1 — never a silent promotion.
pub(crate) fn accept_hello_capacity(
    endpoint: &str,
    capacity: usize,
    strict: bool,
) -> Result<usize, FleetError> {
    if capacity > 0 {
        return Ok(capacity);
    }
    if strict {
        return Err(FleetError::Handshake(format!(
            "{endpoint} advertised hello capacity 0 (a worker must accept at least one job)"
        )));
    }
    static WARNED: Mutex<Option<HashSet<String>>> = Mutex::new(None);
    let mut warned = WARNED.lock().expect("no hello-capacity panics");
    if warned
        .get_or_insert_with(HashSet::new)
        .insert(endpoint.to_string())
    {
        eprintln!("warning: {endpoint} advertised hello capacity 0; treating it as capacity 1");
    }
    Ok(1)
}

/// Where one fleet worker lives and how to reach it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerEndpoint {
    /// A subprocess the dispatcher spawns, speaking frames over piped
    /// stdio.
    Local {
        /// The worker binary.
        program: PathBuf,
        /// Arguments selecting its worker mode (e.g. `worker --stdio`).
        args: Vec<String>,
        /// Extra environment for the child — how tests inject faults
        /// into one specific worker of a pool.
        envs: Vec<(String, String)>,
    },
    /// A remote worker reached over TCP.
    Tcp {
        /// The `host:port` to dial.
        addr: String,
    },
}

impl WorkerEndpoint {
    /// A local subprocess endpoint.
    pub fn local(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        WorkerEndpoint::Local {
            program: program.into(),
            args,
            envs: Vec::new(),
        }
    }

    /// A local subprocess endpoint with extra environment variables (the
    /// fault-injection hook).
    pub fn local_with_env(
        program: impl Into<PathBuf>,
        args: Vec<String>,
        envs: Vec<(String, String)>,
    ) -> Self {
        WorkerEndpoint::Local {
            program: program.into(),
            args,
            envs,
        }
    }

    /// A TCP endpoint.
    pub fn tcp(addr: impl Into<String>) -> Self {
        WorkerEndpoint::Tcp { addr: addr.into() }
    }

    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            WorkerEndpoint::Local { program, .. } => {
                format!("local worker {}", program.display())
            }
            WorkerEndpoint::Tcp { addr } => format!("tcp worker {addr}"),
        }
    }

    /// Connects and completes the hello handshake under the default
    /// [`DispatchTuning`] (transport tests; the dispatcher threads its
    /// own tuning through [`WorkerEndpoint::connect_with`]).
    #[cfg(test)]
    pub(crate) fn connect(&self) -> Result<Connection, FleetError> {
        self.connect_with(&DispatchTuning::default())
    }

    /// Connects and completes the hello handshake, timing every poll and
    /// deadline from `tuning`.
    pub(crate) fn connect_with(&self, tuning: &DispatchTuning) -> Result<Connection, FleetError> {
        let connect_error = |reason: String| FleetError::Connect {
            endpoint: self.describe(),
            reason,
        };
        match self {
            WorkerEndpoint::Local { .. } => {
                let mut child = self
                    .spawn_local()
                    .map_err(|e| connect_error(e.to_string()))?;
                let stdout = child.stdout.take().expect("stdout was piped");
                let stdin = child.stdin.take().expect("stdin was piped");
                // A raw pipe read has no timeout, so a worker that goes
                // silent while staying alive (a wedge) would pin its
                // dispatcher thread in the kernel forever.  Routing the
                // pipe through [`TimedPipeReader`] gives the connection
                // the same timed-read semantics as a TCP socket, which
                // enables the straggler poll, the abandon check, and the
                // ping health check — and lets the handshake deadline be
                // enforced by the ordinary polling `expect_hello` path.
                let mut connection = Connection::new(
                    BufReader::new(Box::new(TimedPipeReader::new(stdout, tuning.poll))),
                    Box::new(stdin),
                    Some(child),
                    true,
                    PROTOCOL_VERSION,
                    1,
                    *tuning,
                );
                // On failure dropping the connection kills the child.
                connection
                    .expect_hello(&self.describe())
                    .map_err(|e| connect_error(e.to_string()))?;
                Ok(connection)
            }
            WorkerEndpoint::Tcp { .. } => {
                let stream = self
                    .dial_tcp(tuning)
                    .map_err(|e| connect_error(e.to_string()))?;
                stream
                    .set_read_timeout(Some(tuning.poll))
                    .map_err(|e| connect_error(e.to_string()))?;
                let writer = stream
                    .try_clone()
                    .map_err(|e| connect_error(e.to_string()))?;
                let mut connection = Connection::new(
                    BufReader::new(Box::new(stream)),
                    Box::new(writer),
                    None,
                    true,
                    PROTOCOL_VERSION,
                    1,
                    *tuning,
                );
                connection
                    .expect_hello(&self.describe())
                    .map_err(|e| connect_error(e.to_string()))?;
                Ok(connection)
            }
        }
    }

    /// Spawns the subprocess of a [`WorkerEndpoint::Local`] with piped
    /// stdio (shared by the threaded connector above and the event-loop
    /// transport).
    ///
    /// When the dispatcher itself is tracing (`CRP_TRACE`), each spawned
    /// worker gets its *own* derived trace path
    /// (`<path>.worker-<n>`, see [`crp_obs::derive_worker_trace_path`])
    /// instead of inheriting the dispatcher's path — concurrent
    /// appenders from several processes would interleave bytes mid-line
    /// and corrupt the file.  `trace-join` picks the sibling files back
    /// up.  An endpoint env that sets `CRP_TRACE` explicitly (the
    /// fault-injection hook) wins over the derived path.
    pub(crate) fn spawn_local(&self) -> std::io::Result<Child> {
        let WorkerEndpoint::Local {
            program,
            args,
            envs,
        } = self
        else {
            return Err(std::io::Error::other("not a local endpoint"));
        };
        let mut command = Command::new(program);
        command
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if !envs.iter().any(|(key, _)| key == "CRP_TRACE") {
            if let Some(base) = crp_obs::active_trace_path()
                .or_else(|| std::env::var("CRP_TRACE").ok().filter(|v| !v.is_empty()))
            {
                static NEXT_WORKER_TRACE: std::sync::atomic::AtomicUsize =
                    std::sync::atomic::AtomicUsize::new(0);
                let n = NEXT_WORKER_TRACE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                command.env("CRP_TRACE", crp_obs::derive_worker_trace_path(&base, n));
            }
        }
        for (key, value) in envs {
            command.env(key, value);
        }
        command.spawn()
    }

    /// Resolves and dials the socket of a [`WorkerEndpoint::Tcp`] with
    /// nodelay set (shared by the threaded connector above and the
    /// event-loop transport).
    pub(crate) fn dial_tcp(&self, tuning: &DispatchTuning) -> std::io::Result<TcpStream> {
        let WorkerEndpoint::Tcp { addr } = self else {
            return Err(std::io::Error::other("not a TCP endpoint"));
        };
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| std::io::Error::other(format!("cannot resolve {addr:?}: {e}")))?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("{addr:?} resolves to no address")))?;
        let stream = TcpStream::connect_timeout(&resolved, tuning.handshake_timeout)?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }
}

/// Validates a decoded hello message, returning the negotiated
/// `(version, capacity)` exactly as advertised (capacity 0 included —
/// the caller applies [`accept_hello_capacity`]).  Every version in
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] is accepted; the
/// dispatcher then restricts the conversation to what that version
/// understands (v1 workers get fully inline payloads and no scenario
/// messages).
pub(crate) fn negotiate_hello(message: Message) -> Result<(u32, usize), FleetError> {
    match message {
        Message::Hello { version, capacity }
            if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
        {
            Ok((version, capacity))
        }
        Message::Hello { version, .. } => Err(FleetError::Handshake(format!(
            "worker speaks protocol v{version}, dispatcher supports \
             v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}"
        ))),
        other => Err(FleetError::Handshake(format!(
            "expected hello, worker sent {other:?}"
        ))),
    }
}

/// Reads and negotiates a worker hello off a blocking stream.
fn read_hello(reader: &mut BufReader<Box<dyn Read + Send>>) -> Result<(u32, usize), FleetError> {
    let frame = read_frame(reader)?.ok_or(FleetError::Closed)?;
    negotiate_hello(Message::decode(&frame)?)
}

/// What one [`Connection::call`] produced.  (The dispatcher pipelines
/// via [`Connection::send_job`] / [`Connection::read_answer`]; the
/// one-shot `call` survives for transport tests.)
#[cfg(test)]
#[allow(dead_code)]
pub(crate) enum CallOutcome {
    /// The worker answered the job.
    Done(String),
    /// The worker reported a deterministic job failure.
    Failed(String),
    /// The caller abandoned the straggling call because the job was
    /// completed elsewhere (TCP transports only).
    Abandoned,
}

/// One answer pulled off a pipelined connection by
/// [`Connection::read_answer`].
pub(crate) enum Answer {
    /// The worker answered an outstanding job.
    Done {
        /// The answered job id.
        id: u64,
        /// The answer payload.
        payload: String,
    },
    /// The worker reported a deterministic failure for an outstanding
    /// job.
    Failed {
        /// The failed job id.
        id: u64,
        /// The worker's failure message.
        message: String,
    },
    /// Every outstanding job settled elsewhere, so the caller gave the
    /// connection up (polling transports only).
    Abandoned,
}

/// A subprocess stdout pipe with TCP-like timed reads: a feeder thread
/// performs the blocking pipe reads and hands chunks over a channel, so
/// [`Read::read`] can report [`std::io::ErrorKind::TimedOut`] after
/// [`TCP_POLL`] of silence exactly like a socket with a read timeout.
/// That is what lets pipe connections run the between-frames straggler
/// poll, the abandon check, and the ping health check — without it, a
/// worker that wedges (process alive, pipe open, nothing ever written)
/// would pin its dispatcher thread in an untimed kernel read forever and
/// hang the whole batch at join.
///
/// The feeder thread exits when the pipe closes (worker death or the
/// connection's [`Drop`] killing the child) or when the reader itself is
/// dropped mid-stream.
struct TimedPipeReader {
    chunks: std::sync::mpsc::Receiver<std::io::Result<Vec<u8>>>,
    pending: Vec<u8>,
    offset: usize,
    poll: Duration,
}

impl TimedPipeReader {
    fn new(pipe: impl Read + Send + 'static, poll: Duration) -> Self {
        Self {
            chunks: spawn_pipe_feeder(pipe),
            pending: Vec::new(),
            offset: 0,
            poll,
        }
    }
}

/// Spawns the feeder thread performing the blocking pipe reads, handing
/// chunks back over a channel.  The channel is what gives pipe endpoints
/// timed reads ([`TimedPipeReader`]) *and* what lets the event-loop
/// dispatcher drain a pipe non-blockingly (`try_recv`) — stdio endpoints
/// register as readable sources exactly like sockets.
pub(crate) fn spawn_pipe_feeder(
    mut pipe: impl Read + Send + 'static,
) -> std::sync::mpsc::Receiver<std::io::Result<Vec<u8>>> {
    let (sender, chunks) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut buffer = [0u8; 8192];
        loop {
            match pipe.read(&mut buffer) {
                // EOF: dropping the sender is the signal.
                Ok(0) => break,
                Ok(n) => {
                    if sender.send(Ok(buffer[..n].to_vec())).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    let _ = sender.send(Err(e));
                    break;
                }
            }
        }
    });
    chunks
}

impl Read for TimedPipeReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.offset >= self.pending.len() {
            match self.chunks.recv_timeout(self.poll) {
                Ok(Ok(chunk)) => {
                    self.pending = chunk;
                    self.offset = 0;
                }
                Ok(Err(error)) => return Err(error),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    return Err(std::io::ErrorKind::TimedOut.into())
                }
                // Feeder gone and channel drained: end of stream.
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(0),
            }
        }
        let take = (self.pending.len() - self.offset).min(buf.len());
        buf[..take].copy_from_slice(&self.pending[self.offset..self.offset + take]);
        self.offset += take;
        Ok(take)
    }
}

/// One live, handshake-checked conversation with a worker.
pub(crate) struct Connection {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    child: Option<Child>,
    /// True when the underlying stream has a read timeout, enabling the
    /// between-frames straggler poll and the ping health check.
    polls: bool,
    /// Negotiated protocol version from the worker's hello.
    version: u32,
    /// Jobs the worker is willing to hold in flight (from the hello).
    capacity: usize,
    /// Content hashes this connection's worker is known to hold.
    known_blobs: HashSet<String>,
    /// When the worker last produced any frame.
    last_heard: Instant,
    /// When an unanswered health-check ping went out, if one did.
    ping_sent: Option<Instant>,
    /// Id of the next ping.
    next_ping: u64,
    /// Timing knobs (poll/ping/handshake deadlines).
    tuning: DispatchTuning,
}

impl Connection {
    #[allow(clippy::too_many_arguments)]
    fn new(
        reader: BufReader<Box<dyn Read + Send>>,
        writer: Box<dyn Write + Send>,
        child: Option<Child>,
        polls: bool,
        version: u32,
        capacity: usize,
        tuning: DispatchTuning,
    ) -> Self {
        Self {
            reader,
            writer,
            child,
            polls,
            version,
            capacity,
            known_blobs: HashSet::new(),
            last_heard: Instant::now(),
            ping_sent: None,
            next_ping: 0,
            tuning,
        }
    }

    /// Reads and validates the worker's hello, enforcing the handshake
    /// deadline through the read-timeout poll (every transport polls:
    /// TCP via socket read timeouts, pipes via [`TimedPipeReader`]).
    /// `endpoint` names the peer in the capacity-0 warning/error.
    fn expect_hello(&mut self, endpoint: &str) -> Result<(), FleetError> {
        let deadline = Instant::now() + self.tuning.handshake_timeout;
        while self.polls && !wait_readable(&mut self.reader)? {
            if Instant::now() >= deadline {
                return Err(FleetError::Handshake(
                    "timed out waiting for the worker hello".to_string(),
                ));
            }
        }
        let (version, capacity) = read_hello(&mut self.reader)?;
        self.version = version;
        self.capacity =
            accept_hello_capacity(endpoint, capacity, self.tuning.strict_hello_capacity)?;
        self.note_heard();
        Ok(())
    }

    /// The negotiated protocol version.
    pub(crate) fn version(&self) -> u32 {
        self.version
    }

    /// How many jobs the worker advertised it will hold in flight.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records that the worker produced a frame (any frame proves the
    /// process is alive, so an outstanding ping is considered answered).
    fn note_heard(&mut self) {
        self.last_heard = Instant::now();
        self.ping_sent = None;
    }

    /// The ping state machine, driven from between read-timeout polls:
    /// after [`DispatchTuning::ping_after`] of silence a ping goes out; a
    /// ping unanswered for [`DispatchTuning::ping_timeout`] makes the
    /// connection [`FleetError::Unresponsive`].
    fn ping_if_silent(&mut self) -> Result<(), FleetError> {
        if let Some(sent) = self.ping_sent {
            if sent.elapsed() >= self.tuning.ping_timeout {
                return Err(FleetError::Unresponsive {
                    silent_ms: self.last_heard.elapsed().as_millis() as u64,
                });
            }
        } else if self.last_heard.elapsed() >= self.tuning.ping_after {
            let id = self.next_ping;
            self.next_ping += 1;
            write_frame(&mut self.writer, &Message::Ping { id }.encode())?;
            self.ping_sent = Some(Instant::now());
        }
        Ok(())
    }

    /// Health-checks an idle connection with a ping/pong round trip —
    /// how the dispatcher validates a warm connection before trusting it
    /// with a new batch.  An idle live worker pongs immediately; a dead
    /// one closes its stream; a wedged one stays silent and runs out the
    /// [`PING_TIMEOUT`] deadline on the read-timeout poll.
    ///
    /// # Errors
    ///
    /// [`FleetError::Unresponsive`] when no pong arrives in
    /// [`DispatchTuning::ping_timeout`]; any transport error otherwise.
    pub(crate) fn health_check(&mut self) -> Result<(), FleetError> {
        let id = self.next_ping;
        self.next_ping += 1;
        write_frame(&mut self.writer, &Message::Ping { id }.encode())?;
        let deadline = Instant::now() + self.tuning.ping_timeout;
        loop {
            if self.polls && !wait_readable(&mut self.reader)? {
                if Instant::now() >= deadline {
                    return Err(FleetError::Unresponsive {
                        silent_ms: self.tuning.ping_timeout.as_millis() as u64,
                    });
                }
                continue;
            }
            let frame = read_frame(&mut self.reader)?.ok_or(FleetError::Closed)?;
            self.note_heard();
            match Message::decode(&frame)? {
                Message::Pong { id: got } if got == id => return Ok(()),
                // Stale pongs, query answers, or metrics reports from a
                // previous batch.
                Message::Pong { .. }
                | Message::ScenarioState { .. }
                | Message::MetricsReport { .. } => continue,
                other => {
                    return Err(FleetError::Malformed(format!(
                        "expected a pong, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Pulls the worker's current [`crp_obs::MetricsSnapshot`] wire body
    /// with a `metrics`/`metrics-report` round trip.  Returns `Ok(None)`
    /// on connections whose negotiated protocol predates v3 — old
    /// workers would reject the frame, so the dispatcher reports them as
    /// `metrics: unavailable` instead of asking.  Called only on idle
    /// connections (between batches), so the only interleaved frames
    /// are stale pongs or query answers.
    ///
    /// # Errors
    ///
    /// [`FleetError::Unresponsive`] when no report arrives in
    /// [`DispatchTuning::ping_timeout`]; any transport error otherwise
    /// (the connection must then be dropped).
    pub(crate) fn fetch_metrics(&mut self) -> Result<Option<String>, FleetError> {
        if self.version < 3 {
            return Ok(None);
        }
        let id = self.next_ping;
        self.next_ping += 1;
        write_frame(&mut self.writer, &Message::Metrics { id }.encode())?;
        let deadline = Instant::now() + self.tuning.ping_timeout;
        loop {
            if self.polls && !wait_readable(&mut self.reader)? {
                if Instant::now() >= deadline {
                    return Err(FleetError::Unresponsive {
                        silent_ms: self.tuning.ping_timeout.as_millis() as u64,
                    });
                }
                continue;
            }
            let frame = read_frame(&mut self.reader)?.ok_or(FleetError::Closed)?;
            self.note_heard();
            match Message::decode(&frame)? {
                Message::MetricsReport { id: got, body } if got == id => return Ok(Some(body)),
                // Stale answers from a previous round trip.
                Message::Pong { .. }
                | Message::ScenarioState { .. }
                | Message::MetricsReport { .. } => continue,
                other => {
                    return Err(FleetError::Malformed(format!(
                        "expected a metrics report, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Makes sure the worker holds `blob` under `hash` before a job
    /// referencing it is sent.  Hashes already confirmed on this
    /// connection are skipped outright.  With `may_query` (no answers
    /// outstanding, so the next frame is predictable) the worker is
    /// asked first via `scenario-have` — a TCP worker's store outlives
    /// connections, so reconnects usually skip the re-upload; otherwise
    /// the blob is shipped unconditionally (`scenario-put` is idempotent
    /// and unacknowledged, safe to interleave with in-flight jobs).
    ///
    /// # Errors
    ///
    /// Transport errors; the connection must then be dropped.
    pub(crate) fn ensure_blob(
        &mut self,
        hash: &str,
        blob: &str,
        may_query: bool,
    ) -> Result<(), FleetError> {
        debug_assert!(self.version >= 2, "blob shipping requires protocol v2");
        if self.known_blobs.contains(hash) {
            return Ok(());
        }
        if may_query {
            write_frame(
                &mut self.writer,
                &Message::ScenarioHave {
                    hash: hash.to_string(),
                }
                .encode(),
            )?;
            let deadline = Instant::now() + self.tuning.handshake_timeout;
            let present = loop {
                if self.polls && !wait_readable(&mut self.reader)? {
                    if Instant::now() >= deadline {
                        return Err(FleetError::Unresponsive {
                            silent_ms: self.tuning.handshake_timeout.as_millis() as u64,
                        });
                    }
                    continue;
                }
                let frame = read_frame(&mut self.reader)?.ok_or(FleetError::Closed)?;
                self.note_heard();
                match Message::decode(&frame)? {
                    Message::ScenarioState { hash: got, present } if got == hash => break present,
                    Message::Pong { .. } | Message::MetricsReport { .. } => continue,
                    other => {
                        return Err(FleetError::Malformed(format!(
                            "expected scenario-state for {hash}, got {other:?}"
                        )))
                    }
                }
            };
            if present {
                self.known_blobs.insert(hash.to_string());
                return Ok(());
            }
        }
        write_frame(
            &mut self.writer,
            &Message::ScenarioPut {
                hash: hash.to_string(),
                blob: blob.to_string(),
            }
            .encode(),
        )?;
        self.known_blobs.insert(hash.to_string());
        Ok(())
    }

    /// Writes one job frame without waiting for its answer — the
    /// pipelined half of a conversation; answers are pulled back with
    /// [`Connection::read_answer`].  The span is only put on the wire
    /// when the negotiated protocol is v3 or newer — older workers
    /// would reject the extra tokens, and execution is unaffected
    /// either way.
    ///
    /// # Errors
    ///
    /// Transport errors; the connection must then be dropped.
    pub(crate) fn send_job(
        &mut self,
        id: u64,
        payload: &str,
        span: Option<&JobSpan>,
    ) -> Result<(), FleetError> {
        write_frame(
            &mut self.writer,
            &Message::Job {
                id,
                payload: payload.to_string(),
                span: if self.version >= 3 {
                    span.cloned()
                } else {
                    None
                },
            }
            .encode(),
        )
    }

    /// Waits for the answer to *any* outstanding job (`outstanding`
    /// decides which ids qualify; answers may arrive out of order when
    /// several jobs are pipelined).  Between read-timeout polls on a
    /// polling transport, `should_abandon` lets the caller give up a
    /// connection whose outstanding jobs all settled elsewhere, and the
    /// ping health check detects a wedged worker instead of waiting
    /// forever.
    ///
    /// # Errors
    ///
    /// Any [`FleetError`] here means the *connection* is unusable
    /// (closed stream, malformed frame, unexpected job id, unresponsive
    /// worker) — its jobs may still succeed elsewhere.
    pub(crate) fn read_answer(
        &mut self,
        outstanding: &dyn Fn(u64) -> bool,
        should_abandon: &dyn Fn() -> bool,
    ) -> Result<Answer, FleetError> {
        loop {
            if self.polls && !wait_readable(&mut self.reader)? {
                if should_abandon() {
                    return Ok(Answer::Abandoned);
                }
                self.ping_if_silent()?;
                continue;
            }
            let frame = read_frame(&mut self.reader)?.ok_or(FleetError::Closed)?;
            self.note_heard();
            return match Message::decode(&frame)? {
                Message::Done { id, payload } if outstanding(id) => {
                    Ok(Answer::Done { id, payload })
                }
                Message::Failed { id, message } if outstanding(id) => {
                    Ok(Answer::Failed { id, message })
                }
                // Pongs (health checks), stale query answers, and
                // metrics reports carry no job result; keep waiting.
                Message::Pong { .. }
                | Message::ScenarioState { .. }
                | Message::MetricsReport { .. } => continue,
                other => Err(FleetError::Malformed(format!(
                    "expected an answer to an outstanding job, got {other:?}"
                ))),
            };
        }
    }

    /// Sends one job and waits for its answer — the unpipelined
    /// conversation, kept for single-call users and tests.
    ///
    /// # Errors
    ///
    /// As [`Connection::read_answer`].
    #[cfg(test)]
    pub(crate) fn call(
        &mut self,
        id: u64,
        payload: &str,
        should_abandon: &dyn Fn() -> bool,
    ) -> Result<CallOutcome, FleetError> {
        self.send_job(id, payload, None)?;
        match self.read_answer(&|got| got == id, should_abandon)? {
            Answer::Done { payload, .. } => Ok(CallOutcome::Done(payload)),
            Answer::Failed { message, .. } => Ok(CallOutcome::Failed(message)),
            Answer::Abandoned => Ok(CallOutcome::Abandoned),
        }
    }
}

impl Connection {
    /// Best-effort goodbye so a stdio worker exits instead of being
    /// killed by [`Drop`].
    pub(crate) fn shutdown(&mut self) {
        let _ = write_frame(&mut self.writer, &Message::Shutdown.encode());
        if let Some(child) = &mut self.child {
            let _ = child.wait();
            self.child = None;
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// One entry of a [`FleetManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEntry {
    /// `local[:N][*w]` — N dispatcher-spawned subprocess workers, each
    /// with capacity weight `w`.
    Local {
        /// Pool size (at least 1).
        workers: usize,
        /// Capacity weight (at least 1): the scheduler keeps up to
        /// `hello capacity × weight` jobs in flight per connection.
        weight: usize,
    },
    /// `host:port[*w]` — one remote TCP worker with capacity weight `w`.
    Tcp {
        /// The address to dial.
        addr: String,
        /// Capacity weight (at least 1).
        weight: usize,
    },
}

/// A parsed fleet pool description (`CRP_FLEET` / `--fleet`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetManifest {
    entries: Vec<FleetEntry>,
}

impl FleetManifest {
    /// Parses `local[:N][*w]` and `host:port[*w]` entries from a
    /// comma-separated manifest, e.g.
    /// `local:4,10.0.0.7:9311*2,10.0.0.8:9311`.  The optional `*w`
    /// suffix is a capacity weight: the scheduler keeps up to
    /// `hello capacity × w` jobs in flight on that worker's connection.
    ///
    /// # Errors
    ///
    /// [`FleetError::Manifest`] naming the first offending entry: empty
    /// manifests and entries, `local:0`, an unparsable local count, a
    /// missing or out-of-range port, an empty host, or a weight suffix
    /// that is not a positive integer (`*0`, `*-1`, garbage).
    pub fn parse(text: &str) -> Result<Self, FleetError> {
        let reject = |entry: &str, reason: &str| FleetError::Manifest {
            entry: entry.to_string(),
            reason: reason.to_string(),
        };
        let mut entries = Vec::new();
        for raw in text.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                return Err(reject(raw, "empty entry"));
            }
            let (body, weight) = match entry.rsplit_once('*') {
                Some((body, suffix)) => {
                    let weight = suffix
                        .trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|&weight| weight > 0)
                        .ok_or_else(|| {
                            reject(entry, "expected a positive integer weight after '*'")
                        })?;
                    (body.trim(), weight)
                }
                None => (entry, 1),
            };
            if body.is_empty() {
                return Err(reject(entry, "empty entry before the '*' weight"));
            }
            if body == "local" {
                entries.push(FleetEntry::Local { workers: 1, weight });
            } else if let Some(count) = body.strip_prefix("local:") {
                let workers = count
                    .parse::<usize>()
                    .map_err(|_| reject(entry, "expected local:<positive worker count>"))?;
                if workers == 0 {
                    return Err(reject(entry, "a local pool needs at least one worker"));
                }
                entries.push(FleetEntry::Local { workers, weight });
            } else {
                let (host, port) = body
                    .rsplit_once(':')
                    .ok_or_else(|| reject(entry, "expected local[:N] or host:port"))?;
                if host.is_empty() {
                    return Err(reject(entry, "empty host"));
                }
                port.parse::<u16>()
                    .map_err(|_| reject(entry, "expected a port in 0..=65535"))?;
                entries.push(FleetEntry::Tcp {
                    addr: body.to_string(),
                    weight,
                });
            }
        }
        if entries.is_empty() {
            return Err(reject(text, "empty manifest"));
        }
        Ok(Self { entries })
    }

    /// The parsed entries, in manifest order.
    pub fn entries(&self) -> &[FleetEntry] {
        &self.entries
    }

    /// Expands the manifest into endpoints: each `local:N` entry becomes
    /// N subprocess endpoints running `program args`, each `host:port`
    /// entry one TCP endpoint.  Capacity weights are dropped; use
    /// [`FleetManifest::weighted_endpoints`] to keep them.
    pub fn endpoints(&self, program: impl Into<PathBuf>, args: Vec<String>) -> Vec<WorkerEndpoint> {
        self.weighted_endpoints(program, args)
            .into_iter()
            .map(|(endpoint, _)| endpoint)
            .collect()
    }

    /// Expands the manifest into `(endpoint, weight)` pairs, in manifest
    /// order — the form [`crate::Dispatcher::new_weighted`] consumes.
    pub fn weighted_endpoints(
        &self,
        program: impl Into<PathBuf>,
        args: Vec<String>,
    ) -> Vec<(WorkerEndpoint, usize)> {
        let program = program.into();
        let mut endpoints = Vec::new();
        for entry in &self.entries {
            match entry {
                FleetEntry::Local { workers, weight } => {
                    for _ in 0..*workers {
                        endpoints.push((
                            WorkerEndpoint::local(program.clone(), args.clone()),
                            *weight,
                        ));
                    }
                }
                FleetEntry::Tcp { addr, weight } => {
                    endpoints.push((WorkerEndpoint::tcp(addr.clone()), *weight));
                }
            }
        }
        endpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifests_parse_local_pools_and_remote_addresses() {
        let manifest = FleetManifest::parse("local:3, 10.0.0.7:9311 ,local,worker-a:80").unwrap();
        assert_eq!(
            manifest.entries(),
            &[
                FleetEntry::Local {
                    workers: 3,
                    weight: 1
                },
                FleetEntry::Tcp {
                    addr: "10.0.0.7:9311".into(),
                    weight: 1
                },
                FleetEntry::Local {
                    workers: 1,
                    weight: 1
                },
                FleetEntry::Tcp {
                    addr: "worker-a:80".into(),
                    weight: 1
                },
            ]
        );
        let endpoints = manifest.endpoints("/bin/worker", vec!["worker".into(), "--stdio".into()]);
        assert_eq!(endpoints.len(), 3 + 1 + 1 + 1);
        assert_eq!(
            endpoints[0], endpoints[2],
            "local entries expand to N clones"
        );
        assert_eq!(
            endpoints[3],
            WorkerEndpoint::tcp("10.0.0.7:9311"),
            "manifest order: all local:3 workers first, then the remotes in order"
        );
    }

    #[test]
    fn manifest_weights_round_trip_through_weighted_endpoints() {
        let manifest = FleetManifest::parse("local:2*3, 10.0.0.7:9311*2 ,local*4,worker-a:80")
            .expect("weighted manifest parses");
        assert_eq!(
            manifest.entries(),
            &[
                FleetEntry::Local {
                    workers: 2,
                    weight: 3
                },
                FleetEntry::Tcp {
                    addr: "10.0.0.7:9311".into(),
                    weight: 2
                },
                FleetEntry::Local {
                    workers: 1,
                    weight: 4
                },
                FleetEntry::Tcp {
                    addr: "worker-a:80".into(),
                    weight: 1
                },
            ]
        );
        let weighted = manifest.weighted_endpoints("/bin/worker", vec!["worker".into()]);
        let weights: Vec<usize> = weighted.iter().map(|(_, weight)| *weight).collect();
        assert_eq!(weights, vec![3, 3, 2, 4, 1]);
        assert_eq!(
            weighted[2].0,
            WorkerEndpoint::tcp("10.0.0.7:9311"),
            "the weight suffix is stripped off the dialed address"
        );
        // The weight-dropping expansion stays consistent with the
        // weighted one.
        let flat = manifest.endpoints("/bin/worker", vec!["worker".into()]);
        assert_eq!(flat.len(), weighted.len());
        for (endpoint, (weighted_endpoint, _)) in flat.iter().zip(&weighted) {
            assert_eq!(endpoint, weighted_endpoint);
        }
    }

    #[test]
    fn bad_manifest_entries_name_the_offender() {
        for (text, needle) in [
            ("", "empty"),
            ("local:4,", "empty entry"),
            ("local:0", "at least one"),
            ("local:x", "positive worker count"),
            ("just-a-host", "host:port"),
            (":9311", "empty host"),
            ("host:notaport", "port"),
            ("host:99999", "port"),
            ("local:2*0", "weight"),
            ("local:2*-1", "weight"),
            ("host:9311*lots", "weight"),
            ("local*", "weight"),
            ("*3", "empty entry"),
        ] {
            match FleetManifest::parse(text) {
                Err(FleetError::Manifest { reason, .. }) => {
                    assert!(reason.contains(needle), "{text:?}: reason {reason:?}");
                }
                other => panic!("{text:?} parsed to {other:?}"),
            }
        }
    }

    #[test]
    fn tuning_scales_from_the_poll_interval() {
        let default = DispatchTuning::default();
        assert_eq!(default.poll, Duration::from_millis(100));
        assert_eq!(default.ping_after, Duration::from_millis(1000));
        assert_eq!(default.ping_timeout, Duration::from_millis(2000));
        assert_eq!(default.straggler_grace, Duration::from_millis(250));
        assert!(!default.strict_hello_capacity);
        let tight = DispatchTuning::with_poll_ms(10);
        assert_eq!(tight.poll, Duration::from_millis(10));
        assert_eq!(tight.ping_after, Duration::from_millis(100));
        assert_eq!(tight.ping_timeout, Duration::from_millis(200));
        assert_eq!(tight.straggler_grace, Duration::from_millis(25));
        assert_eq!(tight.handshake_timeout, Duration::from_millis(1000));
    }

    #[test]
    fn poll_env_is_parsed_strictly_on_the_strict_path() {
        // Only this test touches CRP_FLEET_POLL_MS in this binary, so
        // the set/remove pairs do not race another test.
        std::env::set_var("CRP_FLEET_POLL_MS", "25");
        assert_eq!(
            DispatchTuning::try_from_env().unwrap(),
            DispatchTuning::with_poll_ms(25)
        );
        assert_eq!(DispatchTuning::from_env(), DispatchTuning::with_poll_ms(25));
        for bad in ["0", "-5", "fast", "10ms"] {
            std::env::set_var("CRP_FLEET_POLL_MS", bad);
            match DispatchTuning::try_from_env() {
                Err(FleetError::Env { var, value, .. }) => {
                    assert_eq!(var, "CRP_FLEET_POLL_MS");
                    assert_eq!(value, bad);
                }
                other => panic!("{bad:?} parsed to {other:?}"),
            }
            // The lenient path warns and falls back to the defaults.
            assert_eq!(DispatchTuning::from_env(), DispatchTuning::default());
        }
        std::env::remove_var("CRP_FLEET_POLL_MS");
        assert_eq!(
            DispatchTuning::try_from_env().unwrap(),
            DispatchTuning::default()
        );
    }

    #[test]
    fn capacity_zero_hellos_warn_and_clamp_or_error_strictly() {
        // Lenient: clamped to 1 (with a once-per-endpoint warning).
        assert_eq!(
            accept_hello_capacity("tcp worker x:1", 0, false).unwrap(),
            1
        );
        assert_eq!(
            accept_hello_capacity("tcp worker x:1", 0, false).unwrap(),
            1
        );
        // Positive capacities pass through untouched either way.
        assert_eq!(accept_hello_capacity("tcp worker x:1", 7, true).unwrap(), 7);
        // Strict: a typed handshake error naming the endpoint.
        match accept_hello_capacity("tcp worker x:1", 0, true) {
            Err(FleetError::Handshake(reason)) => {
                assert!(reason.contains("capacity 0"), "reason: {reason}");
                assert!(reason.contains("x:1"), "reason: {reason}");
            }
            other => panic!("expected a handshake error, got {other:?}"),
        }
    }

    #[test]
    fn endpoint_descriptions_are_human_readable() {
        assert!(WorkerEndpoint::tcp("h:1").describe().contains("h:1"));
        assert!(WorkerEndpoint::local("/bin/w", vec![])
            .describe()
            .contains("/bin/w"));
    }

    #[test]
    fn connecting_to_a_missing_local_binary_is_a_typed_error() {
        let endpoint = WorkerEndpoint::local("/no/such/binary", vec![]);
        assert!(matches!(
            endpoint.connect(),
            Err(FleetError::Connect { .. })
        ));
    }
}
