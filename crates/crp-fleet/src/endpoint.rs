//! Worker endpoints, connections, and the fleet manifest.
//!
//! A [`WorkerEndpoint`] says where one worker lives: a local subprocess
//! the dispatcher spawns and talks to over piped stdio, or a `host:port`
//! it dials over TCP (a worker started on another machine with
//! `crp_experiments worker --listen`).  [`FleetManifest`] is the textual
//! pool description carried by the `CRP_FLEET` environment variable and
//! the `--fleet` CLI flag: comma-separated entries, each either
//! `local[:N]` (N spawned subprocess workers) or `host:port` (one remote
//! worker).

use std::io::{BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::frame::{read_frame, wait_readable, write_frame};
use crate::protocol::{Message, PROTOCOL_VERSION};
use crate::FleetError;

/// Poll interval for straggler checks on TCP connections.
const TCP_POLL: Duration = Duration::from_millis(100);
/// How long a fresh connection may take to deliver its hello.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Where one fleet worker lives and how to reach it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerEndpoint {
    /// A subprocess the dispatcher spawns, speaking frames over piped
    /// stdio.
    Local {
        /// The worker binary.
        program: PathBuf,
        /// Arguments selecting its worker mode (e.g. `worker --stdio`).
        args: Vec<String>,
        /// Extra environment for the child — how tests inject faults
        /// into one specific worker of a pool.
        envs: Vec<(String, String)>,
    },
    /// A remote worker reached over TCP.
    Tcp {
        /// The `host:port` to dial.
        addr: String,
    },
}

impl WorkerEndpoint {
    /// A local subprocess endpoint.
    pub fn local(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        WorkerEndpoint::Local {
            program: program.into(),
            args,
            envs: Vec::new(),
        }
    }

    /// A local subprocess endpoint with extra environment variables (the
    /// fault-injection hook).
    pub fn local_with_env(
        program: impl Into<PathBuf>,
        args: Vec<String>,
        envs: Vec<(String, String)>,
    ) -> Self {
        WorkerEndpoint::Local {
            program: program.into(),
            args,
            envs,
        }
    }

    /// A TCP endpoint.
    pub fn tcp(addr: impl Into<String>) -> Self {
        WorkerEndpoint::Tcp { addr: addr.into() }
    }

    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            WorkerEndpoint::Local { program, .. } => {
                format!("local worker {}", program.display())
            }
            WorkerEndpoint::Tcp { addr } => format!("tcp worker {addr}"),
        }
    }

    /// Connects and completes the hello handshake.
    pub(crate) fn connect(&self) -> Result<Connection, FleetError> {
        let connect_error = |reason: String| FleetError::Connect {
            endpoint: self.describe(),
            reason,
        };
        match self {
            WorkerEndpoint::Local {
                program,
                args,
                envs,
            } => {
                let mut command = Command::new(program);
                command
                    .args(args)
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit());
                for (key, value) in envs {
                    command.env(key, value);
                }
                let mut child = command.spawn().map_err(|e| connect_error(e.to_string()))?;
                let stdout = child.stdout.take().expect("stdout was piped");
                let stdin = child.stdin.take().expect("stdin was piped");
                // Pipe reads have no timeout, so enforce the handshake
                // deadline with a helper thread: a spawned binary that
                // never says hello must become a typed connect error,
                // not a dispatcher hang.  On timeout the child is
                // killed, which closes the pipe and unblocks (and ends)
                // the helper.
                let mut reader: BufReader<Box<dyn Read + Send>> = BufReader::new(Box::new(stdout));
                let (sender, receiver) = std::sync::mpsc::channel();
                std::thread::spawn(move || {
                    let result = read_hello(&mut reader);
                    let _ = sender.send((result, reader));
                });
                match receiver.recv_timeout(HANDSHAKE_TIMEOUT) {
                    Ok((Ok(()), reader)) => Ok(Connection {
                        reader,
                        writer: Box::new(stdin),
                        child: Some(child),
                        polls: false,
                    }),
                    Ok((Err(error), _)) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        Err(connect_error(error.to_string()))
                    }
                    Err(_) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        Err(connect_error(
                            "timed out waiting for the worker hello".to_string(),
                        ))
                    }
                }
            }
            WorkerEndpoint::Tcp { addr } => {
                let resolved = addr
                    .to_socket_addrs()
                    .map_err(|e| connect_error(format!("cannot resolve {addr:?}: {e}")))?
                    .next()
                    .ok_or_else(|| connect_error(format!("{addr:?} resolves to no address")))?;
                let stream = TcpStream::connect_timeout(&resolved, HANDSHAKE_TIMEOUT)
                    .map_err(|e| connect_error(e.to_string()))?;
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(Some(TCP_POLL))
                    .map_err(|e| connect_error(e.to_string()))?;
                let writer = stream
                    .try_clone()
                    .map_err(|e| connect_error(e.to_string()))?;
                let mut connection = Connection {
                    reader: BufReader::new(Box::new(stream)),
                    writer: Box::new(writer),
                    child: None,
                    polls: true,
                };
                connection
                    .expect_hello()
                    .map_err(|e| connect_error(e.to_string()))?;
                Ok(connection)
            }
        }
    }
}

/// Reads and validates a worker hello off a blocking stream.
fn read_hello(reader: &mut BufReader<Box<dyn Read + Send>>) -> Result<(), FleetError> {
    let frame = read_frame(reader)?.ok_or(FleetError::Closed)?;
    match Message::decode(&frame)? {
        Message::Hello { version, .. } if version == PROTOCOL_VERSION => Ok(()),
        Message::Hello { version, .. } => Err(FleetError::Handshake(format!(
            "worker speaks protocol v{version}, dispatcher requires v{PROTOCOL_VERSION}"
        ))),
        other => Err(FleetError::Handshake(format!(
            "expected hello, worker sent {other:?}"
        ))),
    }
}

/// What one [`Connection::call`] produced.
pub(crate) enum CallOutcome {
    /// The worker answered the job.
    Done(String),
    /// The worker reported a deterministic job failure.
    Failed(String),
    /// The caller abandoned the straggling call because the job was
    /// completed elsewhere (TCP transports only).
    Abandoned,
}

/// One live, handshake-checked conversation with a worker.
pub(crate) struct Connection {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    child: Option<Child>,
    /// True when the underlying stream has a read timeout, enabling the
    /// between-frames straggler poll.
    polls: bool,
}

impl Connection {
    /// Reads and validates the worker's hello on a polling (TCP) stream,
    /// enforcing [`HANDSHAKE_TIMEOUT`] through the read-timeout poll.
    /// (Pipe connections enforce the same deadline with a helper thread
    /// at connect time.)
    fn expect_hello(&mut self) -> Result<(), FleetError> {
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        while self.polls && !wait_readable(&mut self.reader)? {
            if Instant::now() >= deadline {
                return Err(FleetError::Handshake(
                    "timed out waiting for the worker hello".to_string(),
                ));
            }
        }
        read_hello(&mut self.reader)
    }

    /// Sends one job and waits for its answer.  While waiting on a TCP
    /// transport, `should_abandon` is polled between read timeouts so a
    /// straggling call can be given up once the job has completed on
    /// another worker.
    ///
    /// # Errors
    ///
    /// Any [`FleetError`] here means the *connection* is unusable (closed
    /// stream, malformed frame, wrong job id) — the job itself may still
    /// succeed elsewhere.
    pub(crate) fn call(
        &mut self,
        id: u64,
        payload: &str,
        should_abandon: &dyn Fn() -> bool,
    ) -> Result<CallOutcome, FleetError> {
        write_frame(
            &mut self.writer,
            &Message::Job {
                id,
                payload: payload.to_string(),
            }
            .encode(),
        )?;
        loop {
            if self.polls && !wait_readable(&mut self.reader)? {
                if should_abandon() {
                    return Ok(CallOutcome::Abandoned);
                }
                continue;
            }
            let frame = read_frame(&mut self.reader)?.ok_or(FleetError::Closed)?;
            return match Message::decode(&frame)? {
                Message::Done { id: got, payload } if got == id => Ok(CallOutcome::Done(payload)),
                Message::Failed { id: got, message } if got == id => {
                    Ok(CallOutcome::Failed(message))
                }
                // A pong from an earlier health check may still be in
                // flight; skip it and keep waiting for the answer.
                Message::Pong { .. } => continue,
                other => Err(FleetError::Malformed(format!(
                    "expected the answer to job {id}, got {other:?}"
                ))),
            };
        }
    }
}

impl Connection {
    /// Best-effort goodbye so a stdio worker exits instead of being
    /// killed by [`Drop`].
    pub(crate) fn shutdown(&mut self) {
        let _ = write_frame(&mut self.writer, &Message::Shutdown.encode());
        if let Some(child) = &mut self.child {
            let _ = child.wait();
            self.child = None;
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// One entry of a [`FleetManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEntry {
    /// `local[:N]` — N dispatcher-spawned subprocess workers.
    Local {
        /// Pool size (at least 1).
        workers: usize,
    },
    /// `host:port` — one remote TCP worker.
    Tcp {
        /// The address to dial.
        addr: String,
    },
}

/// A parsed fleet pool description (`CRP_FLEET` / `--fleet`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetManifest {
    entries: Vec<FleetEntry>,
}

impl FleetManifest {
    /// Parses `local[:N]` and `host:port` entries from a comma-separated
    /// manifest, e.g. `local:4,10.0.0.7:9311,10.0.0.8:9311`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Manifest`] naming the first offending entry: empty
    /// manifests and entries, `local:0`, an unparsable local count, a
    /// missing or out-of-range port, or an empty host.
    pub fn parse(text: &str) -> Result<Self, FleetError> {
        let reject = |entry: &str, reason: &str| FleetError::Manifest {
            entry: entry.to_string(),
            reason: reason.to_string(),
        };
        let mut entries = Vec::new();
        for raw in text.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                return Err(reject(raw, "empty entry"));
            }
            if entry == "local" {
                entries.push(FleetEntry::Local { workers: 1 });
            } else if let Some(count) = entry.strip_prefix("local:") {
                let workers = count
                    .parse::<usize>()
                    .map_err(|_| reject(entry, "expected local:<positive worker count>"))?;
                if workers == 0 {
                    return Err(reject(entry, "a local pool needs at least one worker"));
                }
                entries.push(FleetEntry::Local { workers });
            } else {
                let (host, port) = entry
                    .rsplit_once(':')
                    .ok_or_else(|| reject(entry, "expected local[:N] or host:port"))?;
                if host.is_empty() {
                    return Err(reject(entry, "empty host"));
                }
                port.parse::<u16>()
                    .map_err(|_| reject(entry, "expected a port in 0..=65535"))?;
                entries.push(FleetEntry::Tcp {
                    addr: entry.to_string(),
                });
            }
        }
        if entries.is_empty() {
            return Err(reject(text, "empty manifest"));
        }
        Ok(Self { entries })
    }

    /// The parsed entries, in manifest order.
    pub fn entries(&self) -> &[FleetEntry] {
        &self.entries
    }

    /// Expands the manifest into endpoints: each `local:N` entry becomes
    /// N subprocess endpoints running `program args`, each `host:port`
    /// entry one TCP endpoint.
    pub fn endpoints(&self, program: impl Into<PathBuf>, args: Vec<String>) -> Vec<WorkerEndpoint> {
        let program = program.into();
        let mut endpoints = Vec::new();
        for entry in &self.entries {
            match entry {
                FleetEntry::Local { workers } => {
                    for _ in 0..*workers {
                        endpoints.push(WorkerEndpoint::local(program.clone(), args.clone()));
                    }
                }
                FleetEntry::Tcp { addr } => endpoints.push(WorkerEndpoint::tcp(addr.clone())),
            }
        }
        endpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifests_parse_local_pools_and_remote_addresses() {
        let manifest = FleetManifest::parse("local:3, 10.0.0.7:9311 ,local,worker-a:80").unwrap();
        assert_eq!(
            manifest.entries(),
            &[
                FleetEntry::Local { workers: 3 },
                FleetEntry::Tcp {
                    addr: "10.0.0.7:9311".into()
                },
                FleetEntry::Local { workers: 1 },
                FleetEntry::Tcp {
                    addr: "worker-a:80".into()
                },
            ]
        );
        let endpoints = manifest.endpoints("/bin/worker", vec!["worker".into(), "--stdio".into()]);
        assert_eq!(endpoints.len(), 3 + 1 + 1 + 1);
        assert_eq!(
            endpoints[0], endpoints[2],
            "local entries expand to N clones"
        );
        assert_eq!(
            endpoints[3],
            WorkerEndpoint::tcp("10.0.0.7:9311"),
            "manifest order: all local:3 workers first, then the remotes in order"
        );
    }

    #[test]
    fn bad_manifest_entries_name_the_offender() {
        for (text, needle) in [
            ("", "empty"),
            ("local:4,", "empty entry"),
            ("local:0", "at least one"),
            ("local:x", "positive worker count"),
            ("just-a-host", "host:port"),
            (":9311", "empty host"),
            ("host:notaport", "port"),
            ("host:99999", "port"),
        ] {
            match FleetManifest::parse(text) {
                Err(FleetError::Manifest { reason, .. }) => {
                    assert!(reason.contains(needle), "{text:?}: reason {reason:?}");
                }
                other => panic!("{text:?} parsed to {other:?}"),
            }
        }
    }

    #[test]
    fn endpoint_descriptions_are_human_readable() {
        assert!(WorkerEndpoint::tcp("h:1").describe().contains("h:1"));
        assert!(WorkerEndpoint::local("/bin/w", vec![])
            .describe()
            .contains("/bin/w"));
    }

    #[test]
    fn connecting_to_a_missing_local_binary_is_a_typed_error() {
        let endpoint = WorkerEndpoint::local("/no/such/binary", vec![]);
        assert!(matches!(
            endpoint.connect(),
            Err(FleetError::Connect { .. })
        ));
    }
}
