//! Fleet-side observability: per-worker health counters feeding an
//! on-demand [`FleetSnapshot`], plus the workspace-global `fleet.*`
//! counters and trace events.
//!
//! Both dispatch modes report through one [`FleetObs`] owned by the
//! [`crate::Dispatcher`], keyed by the worker's human-readable peer
//! description, so a snapshot spans fixed endpoints and elastically
//! joined workers alike and accumulates across batches — the view a
//! long-running serve daemon's `stats` request renders.
//!
//! Nothing here touches job payloads, RNG streams, or completion
//! order: counters are plain additions under a short mutex and trace
//! events are guarded by [`crp_obs::trace_enabled`], so statistics
//! stay bit-identical with observability on or off.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crp_obs::{MetricsSnapshot, TraceEvent};

use crate::protocol::JobSpan;

/// The health counters of one worker, as accumulated by the
/// dispatcher since it was created.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerHealth {
    /// The worker's peer description (endpoint, or joined address).
    pub endpoint: String,
    /// Jobs sent to this worker.
    pub dispatched: u64,
    /// Answers accepted from this worker.
    pub completed: u64,
    /// Jobs requeued off this worker (transport failures, validation
    /// rejections, unresponsiveness).
    pub requeued: u64,
    /// Health-check pings sent to this worker.
    pub pings: u64,
    /// Jobs currently in flight on this worker (0 between batches).
    pub in_flight: i64,
}

/// An on-demand, point-in-time view of per-worker fleet health.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetSnapshot {
    /// Per-worker health, sorted by endpoint description.
    pub workers: Vec<WorkerHealth>,
}

impl FleetSnapshot {
    /// Total jobs dispatched across the pool.
    pub fn dispatched(&self) -> u64 {
        self.workers.iter().map(|w| w.dispatched).sum()
    }

    /// Total jobs requeued across the pool.
    pub fn requeued(&self) -> u64 {
        self.workers.iter().map(|w| w.requeued).sum()
    }

    /// Total health-check pings across the pool.
    pub fn pings(&self) -> u64 {
        self.workers.iter().map(|w| w.pings).sum()
    }

    /// Renders the snapshot as a deterministic text report, one line
    /// per worker in sorted order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for worker in &self.workers {
            let _ = writeln!(
                out,
                "worker {} dispatched={} completed={} requeued={} pings={} in_flight={}",
                worker.endpoint,
                worker.dispatched,
                worker.completed,
                worker.requeued,
                worker.pings,
                worker.in_flight,
            );
        }
        out
    }
}

/// One worker's shipped metrics, as pulled by
/// [`crate::Dispatcher::worker_metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMetrics {
    /// The worker's peer description (endpoint, or joined address).
    pub endpoint: String,
    /// The worker's decoded metrics snapshot — `None` when the worker
    /// speaks a pre-v3 protocol, is not connected, or failed to answer
    /// the pull (rendered as `metrics: unavailable`).
    pub snapshot: Option<MetricsSnapshot>,
}

/// A fleet-wide metrics pull: every known worker's shipped snapshot
/// plus the merged rollup, rendered deterministically for the `stats`
/// report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetMetrics {
    /// Per-worker shipped metrics, sorted by endpoint description.
    pub workers: Vec<WorkerMetrics>,
}

impl FleetMetrics {
    /// How many workers shipped a snapshot.
    pub fn reporting(&self) -> usize {
        self.workers.iter().filter(|w| w.snapshot.is_some()).count()
    }

    /// The fleet-wide rollup: every reporting worker's snapshot merged
    /// (counters summed, gauges maxed, histograms merged bucket-wise).
    pub fn rollup(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for worker in &self.workers {
            if let Some(snapshot) = &worker.snapshot {
                merged.merge(snapshot);
            }
        }
        merged
    }

    /// Renders the pull as a deterministic text report: a header line,
    /// the merged rollup (each line prefixed `rollup `), then each
    /// worker's own snapshot (indented) or `metrics: unavailable`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let reporting = self.reporting();
        let _ = writeln!(
            out,
            "fleet metrics: {reporting} reporting, {} unavailable",
            self.workers.len() - reporting
        );
        for line in self.rollup().render().lines() {
            let _ = writeln!(out, "rollup {line}");
        }
        for worker in &self.workers {
            match &worker.snapshot {
                Some(snapshot) => {
                    let _ = writeln!(out, "worker {} metrics:", worker.endpoint);
                    for line in snapshot.render().lines() {
                        let _ = writeln!(out, "  {line}");
                    }
                }
                None => {
                    let _ = writeln!(out, "worker {} metrics: unavailable", worker.endpoint);
                }
            }
        }
        out
    }
}

/// The dispatcher's accumulator behind [`FleetSnapshot`]: a peer-keyed
/// map both dispatch modes report into.
#[derive(Debug, Default)]
pub(crate) struct FleetObs {
    workers: Mutex<BTreeMap<String, WorkerHealth>>,
}

impl FleetObs {
    fn with(&self, peer: &str, update: impl FnOnce(&mut WorkerHealth)) {
        let mut workers = self.workers.lock().expect("no dispatcher panics");
        let entry = workers
            .entry(peer.to_string())
            .or_insert_with(|| WorkerHealth {
                endpoint: peer.to_string(),
                ..Default::default()
            });
        update(entry);
    }

    /// A job was sent to `peer`.  A span stamped on the dispatch event
    /// is what lets `trace-join` tie the dispatcher's timeline to the
    /// worker's `shard.execute` events for the same job.
    pub(crate) fn dispatched(&self, peer: &str, job: u64, span: Option<&JobSpan>) {
        crp_obs::global().inc("fleet.dispatch");
        if crp_obs::trace_enabled() {
            let mut event = TraceEvent::new("fleet.dispatch")
                .u64("job", job)
                .str("endpoint", peer);
            if let Some(span) = span {
                event = event.str("span", &span.id);
                if let Some(parent) = &span.parent {
                    event = event.str("parent", parent);
                }
            }
            crp_obs::emit(&event);
        }
        self.with(peer, |w| {
            w.dispatched += 1;
            w.in_flight += 1;
        });
    }

    /// `peer` answered a job `micros` after its last claim.
    pub(crate) fn completed(&self, peer: &str, micros: u64) {
        crp_obs::global().observe("fleet.job_micros", micros);
        self.with(peer, |w| {
            w.completed += 1;
            w.in_flight -= 1;
        });
    }

    /// `peer` reported a permanent job failure (the job settled, so it
    /// leaves the in-flight count without a requeue).
    pub(crate) fn failed(&self, peer: &str) {
        self.with(peer, |w| w.in_flight -= 1);
    }

    /// `count` of `peer`'s outstanding jobs settled elsewhere and were
    /// abandoned on this connection.
    pub(crate) fn abandoned(&self, peer: &str, count: u64) {
        self.with(peer, |w| w.in_flight -= count as i64);
    }

    /// A job was pulled back off `peer` for another worker.
    pub(crate) fn requeued(&self, peer: &str, job: u64, reason: &str) {
        crp_obs::global().inc("fleet.requeue");
        if crp_obs::trace_enabled() {
            crp_obs::emit(
                &TraceEvent::new("fleet.requeue")
                    .u64("job", job)
                    .str("endpoint", peer)
                    .str("reason", reason),
            );
        }
        self.with(peer, |w| {
            w.requeued += 1;
            w.in_flight -= 1;
        });
    }

    /// A health-check ping went out to `peer`.
    pub(crate) fn pinged(&self, peer: &str) {
        crp_obs::global().inc("fleet.ping");
        if crp_obs::trace_enabled() {
            crp_obs::emit(&TraceEvent::new("fleet.ping").str("endpoint", peer));
        }
        self.with(peer, |w| w.pings += 1);
    }

    /// The current per-worker health, sorted by endpoint description.
    pub(crate) fn snapshot(&self) -> FleetSnapshot {
        let workers = self.workers.lock().expect("no dispatcher panics");
        FleetSnapshot {
            workers: workers.values().cloned().collect(),
        }
    }
}
