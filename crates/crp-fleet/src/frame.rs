//! Length-prefixed framing over any byte stream.
//!
//! A frame is a header line `frame <len>\n` followed by exactly `len`
//! payload bytes.  Unlike the newline-terminated messages the one-shot
//! `shard-worker` pipe uses, frames delimit messages on a *long-lived*
//! stream: the reader always knows how many bytes belong to the current
//! message, so payloads may contain anything (including newlines and the
//! header literal) and a truncated stream is detected instead of silently
//! concatenating two messages.

use std::io::{BufRead, Write};

use crate::FleetError;

/// Upper bound on a frame payload.  Shard specs and accumulators are a
/// few kilobytes; anything near this limit is a corrupt header, and
/// rejecting it keeps a malformed length from allocating unbounded
/// memory.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Writes one frame (header line + payload) and flushes the stream.
///
/// # Errors
///
/// [`FleetError::Malformed`] for an oversized payload, [`FleetError::Io`]
/// for a transport failure.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), FleetError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(FleetError::Malformed(format!(
            "refusing to send a {}-byte frame (limit {MAX_FRAME_BYTES})",
            payload.len()
        )));
    }
    writer.write_all(format!("frame {}\n", payload.len()).as_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// True for the error kinds a read-timeout-configured stream produces
/// when no data arrived in time.
fn is_timeout(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Longest header line a well-formed frame can produce
/// (`frame <len>\n` with `len <= MAX_FRAME_BYTES`).
pub(crate) const MAX_HEADER_BYTES: usize = 32;

/// Reads the header line byte-wise off the buffered stream, retrying
/// read timeouts: once a frame has *started* arriving the read is
/// committed, and timeouts only carry meaning between frames (see
/// [`wait_readable`]) — a slow link must never corrupt a half-read
/// frame.
fn read_header_line(reader: &mut impl BufRead) -> Result<Option<String>, FleetError> {
    enum Step {
        Eof,
        Consumed { bytes: usize, complete: bool },
        Retry,
    }
    let mut header: Vec<u8> = Vec::new();
    loop {
        let step = match reader.fill_buf() {
            Ok([]) => Step::Eof,
            Ok(available) => match available.iter().position(|&byte| byte == b'\n') {
                Some(newline) => {
                    header.extend_from_slice(&available[..newline]);
                    Step::Consumed {
                        bytes: newline + 1,
                        complete: true,
                    }
                }
                None => {
                    header.extend_from_slice(available);
                    Step::Consumed {
                        bytes: available.len(),
                        complete: false,
                    }
                }
            },
            Err(e) if is_timeout(e.kind()) || e.kind() == std::io::ErrorKind::Interrupted => {
                Step::Retry
            }
            Err(e) => return Err(e.into()),
        };
        match step {
            Step::Eof if header.is_empty() => return Ok(None),
            Step::Eof => {
                return Err(FleetError::Malformed(
                    "stream ended inside a frame header".to_string(),
                ))
            }
            Step::Consumed { bytes, complete } => {
                reader.consume(bytes);
                if complete {
                    return String::from_utf8(header)
                        .map(Some)
                        .map_err(|_| FleetError::Malformed("frame header is not UTF-8".into()));
                }
                if header.len() > MAX_HEADER_BYTES {
                    return Err(FleetError::Malformed(format!(
                        "frame header exceeds {MAX_HEADER_BYTES} bytes"
                    )));
                }
            }
            Step::Retry => {}
        }
    }
}

/// Reads one frame, or `None` on a clean end of stream (no header bytes
/// at all).
///
/// Read timeouts configured on the underlying stream are retried here —
/// they signal "no frame has started yet" and belong to
/// [`wait_readable`], never to a frame already in flight on a slow
/// link.
///
/// # Errors
///
/// [`FleetError::Malformed`] for a bad or oversized header and for a
/// stream that ends mid-frame (truncation); [`FleetError::Io`] for a
/// transport failure.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<Vec<u8>>, FleetError> {
    let Some(header) = read_header_line(reader)? else {
        return Ok(None);
    };
    let len = header
        .strip_prefix("frame ")
        .and_then(|token| token.trim().parse::<usize>().ok())
        .ok_or_else(|| FleetError::Malformed(format!("bad frame header {header:?}")))?;
    if len > MAX_FRAME_BYTES {
        return Err(FleetError::Malformed(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FleetError::Malformed(format!(
                    "frame truncated: expected {len} payload bytes, got {filled}"
                )));
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(e.kind()) || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(payload))
}

/// Waits until at least one byte is readable, without consuming it.
///
/// Returns `Ok(true)` when data (or end-of-stream) is ready and
/// `Ok(false)` when a read timeout configured on the underlying stream
/// expired first.  Because nothing is consumed, a timeout here leaves the
/// stream in a clean between-frames state — this is what lets a
/// dispatcher poll a straggling TCP worker and abandon it once the job
/// has been completed elsewhere.
///
/// # Errors
///
/// [`FleetError::Io`] for a transport failure.
pub fn wait_readable(reader: &mut impl BufRead) -> Result<bool, FleetError> {
    loop {
        match reader.fill_buf() {
            // An empty buffer from fill_buf means end-of-stream, which is
            // "readable": the next read_frame call reports it properly.
            Ok(_) => return Ok(true),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(false)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip(payload: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        write_frame(&mut wire, payload).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        read_frame(&mut reader).unwrap().unwrap()
    }

    #[test]
    fn frames_round_trip_arbitrary_payloads() {
        for payload in [
            b"".as_slice(),
            b"hello",
            b"line one\nline two\n",
            b"frame 12\nnested header literal",
            &[0u8, 255, 10, 13, 0],
        ] {
            assert_eq!(round_trip(payload), payload);
        }
    }

    #[test]
    fn consecutive_frames_do_not_bleed_into_each_other() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first\n").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"first\n");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"second");
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_malformed_frames_are_rejected() {
        // Payload cut short.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"twelve bytes").unwrap();
        wire.truncate(wire.len() - 5);
        let mut reader = BufReader::new(wire.as_slice());
        assert!(matches!(
            read_frame(&mut reader),
            Err(FleetError::Malformed(_))
        ));
        // Header cut short (no trailing newline).
        let mut reader = BufReader::new(b"frame 12".as_slice());
        assert!(matches!(
            read_frame(&mut reader),
            Err(FleetError::Malformed(_))
        ));
        // Not a frame header at all.
        let mut reader = BufReader::new(b"!!not-a-frame!!\n".as_slice());
        assert!(matches!(
            read_frame(&mut reader),
            Err(FleetError::Malformed(_))
        ));
        // Unparsable and oversized lengths.
        let mut reader = BufReader::new(b"frame zebra\n".as_slice());
        assert!(read_frame(&mut reader).is_err());
        let huge = format!("frame {}\n", MAX_FRAME_BYTES + 1);
        let mut reader = BufReader::new(huge.as_bytes());
        assert!(read_frame(&mut reader).is_err());
        // Writers refuse oversized payloads outright (no allocation test —
        // just the length check, exercised via the error path above).
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        let mut reader = BufReader::new(b"".as_slice());
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    /// A reader that delivers its bytes in tiny chunks with a read
    /// timeout (`WouldBlock`) before every one — the shape of a slow TCP
    /// link under a 100ms poll timeout.
    struct ChoppyReader {
        bytes: Vec<u8>,
        offset: usize,
        ready: bool,
    }

    impl std::io::Read for ChoppyReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            if self.offset >= self.bytes.len() {
                return Ok(0);
            }
            // One byte at a time, so every header byte and every payload
            // byte is preceded by a timeout.
            buf[0] = self.bytes[self.offset];
            self.offset += 1;
            Ok(1)
        }
    }

    #[test]
    fn read_timeouts_mid_frame_are_retried_not_fatal() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"slow but healthy\nframe body").unwrap();
        let mut reader = BufReader::new(ChoppyReader {
            bytes: wire,
            offset: 0,
            ready: false,
        });
        // wait_readable reports the timeouts between frames...
        assert!(!wait_readable(&mut reader).unwrap());
        // ...but once the frame starts, read_frame must ride them out.
        assert_eq!(
            read_frame(&mut reader).unwrap().unwrap(),
            b"slow but healthy\nframe body"
        );
        assert!(read_frame(&mut reader).unwrap().is_none());
    }
}
