//! The fleet dispatcher: a batch of opaque jobs scheduled over a pool of
//! worker endpoints.
//!
//! Scheduling keeps the work-stealing semantics of the in-process shard
//! queue: one thread per endpoint claims the next unassigned job from a
//! shared queue, so whichever worker is free takes the next job.  On top
//! of that, the dispatcher handles the failure modes a pool of real
//! processes and sockets adds:
//!
//! * **Dead workers** — a connect failure, a closed stream, or a
//!   malformed answer makes the job go back on the queue for another
//!   worker; the connection is dropped and re-established (local workers
//!   are respawned) up to a per-thread limit before the thread gives up.
//! * **Stragglers** — once the queue is empty, idle workers re-dispatch
//!   the jobs still outstanding on other workers (preferring the least
//!   duplicated job, and only after a short grace period so an ordinary
//!   batch tail is not duplicated pointlessly).  Whichever copy answers
//!   first wins.  A TCP worker blocked on an already-settled job is
//!   abandoned at the next read-timeout poll; a *local* (pipe) worker's
//!   read is blocking, so while its jobs settle promptly via
//!   re-dispatch, a local worker wedged forever delays the final return
//!   of [`Dispatcher::dispatch`] until it answers or dies.
//! * **Poisoned answers** — [`Dispatcher::dispatch_validated`] checks
//!   every answer before its job settles; a well-framed reply whose body
//!   fails validation is retried elsewhere like any transport failure.
//! * **Dedup by job id** — every completion is recorded at most once, so
//!   duplicated answers from straggler re-dispatch (or a slow worker
//!   racing its replacement) are dropped and the per-job completion
//!   callback fires exactly once.
//!
//! Because a job's answer is required to be a deterministic function of
//! its payload (shard answers are — that is the whole bit-identical
//! merge guarantee), *which* worker answers never changes the result,
//! only the wall-clock time.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::endpoint::{CallOutcome, Connection, WorkerEndpoint};
use crate::FleetError;

/// Per-thread cap on transport failures (failed connects, dropped
/// connections) before the thread stops retrying its endpoint.
const RECONNECT_LIMIT: usize = 3;

/// How long a job must have been in flight before an idle worker may
/// speculatively re-dispatch it.  Without a grace period, every batch
/// tail would duplicate its last jobs onto all idle workers the instant
/// the queue drains.
const STRAGGLER_GRACE: Duration = Duration::from_millis(250);

/// Validates a worker's answer *before* the job settles: return `Err`
/// and the answer is treated exactly like a transport failure — the
/// connection is dropped and the job re-dispatched — instead of
/// poisoning the batch.  This is how `crp-sim` rejects a well-framed
/// `done` whose accumulator body is corrupt.
pub type AnswerValidator<'a> = &'a (dyn Fn(u64, &str) -> Result<(), String> + Sync);

/// Schedules batches of jobs over a fixed pool of [`WorkerEndpoint`]s.
pub struct Dispatcher {
    endpoints: Vec<WorkerEndpoint>,
    max_attempts: usize,
}

/// Shared scheduling state, all under one lock.
struct State {
    /// Jobs waiting for a (first or retry) dispatch.
    queue: VecDeque<usize>,
    /// How many workers are currently running each job.
    in_flight: Vec<usize>,
    /// Calls actually made per job (connect failures do not count).
    attempts: Vec<usize>,
    /// When each job was last claimed, for the straggler grace period.
    claimed_at: Vec<Option<Instant>>,
    /// Successful answers, in job order.
    results: Vec<Option<String>>,
    /// Permanent failures (worker-reported, or retries exhausted).
    failures: Vec<Option<FleetError>>,
    /// The most recent transport-level failure, for diagnostics.
    last_transport_error: Option<String>,
}

impl State {
    fn is_settled(&self, job: usize) -> bool {
        self.results[job].is_some() || self.failures[job].is_some()
    }
}

/// The shared state plus the condition variable idle workers sleep on —
/// any event that could unblock a claim (a settle, a requeue) notifies
/// it, so batch tails end the instant the last job settles instead of on
/// a poll tick.
struct Scheduler {
    state: Mutex<State>,
    wake: Condvar,
}

impl Scheduler {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("no dispatcher panics")
    }
}

impl Dispatcher {
    /// A dispatcher over the given pool.  Each job is attempted at most
    /// `max(3, 2 × pool size)` times before it is declared failed.
    pub fn new(endpoints: Vec<WorkerEndpoint>) -> Self {
        let max_attempts = (2 * endpoints.len()).max(3);
        Self {
            endpoints,
            max_attempts,
        }
    }

    /// Overrides the per-job attempt cap (tests).
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// The pool this dispatcher schedules over.
    pub fn endpoints(&self) -> &[WorkerEndpoint] {
        &self.endpoints
    }

    /// Runs every payload to completion on the pool and returns the
    /// answers in job order.  `done(job)` is invoked exactly once per
    /// completed job, in completion order, possibly from a worker
    /// thread.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing job: [`FleetError::Job`]
    /// when a worker rejected the payload deterministically, otherwise
    /// [`FleetError::Exhausted`] describing the transport failures that
    /// used up the job's attempts (or left the pool unreachable).
    pub fn dispatch(
        &self,
        payloads: &[String],
        done: &(dyn Fn(usize) + Sync),
    ) -> Result<Vec<String>, FleetError> {
        self.dispatch_validated(payloads, done, &|_, _| Ok(()))
    }

    /// Like [`Dispatcher::dispatch`], but every answer must pass
    /// `validate` before its job settles; a rejected answer is retried
    /// on another worker like any transport failure.
    ///
    /// # Errors
    ///
    /// As [`Dispatcher::dispatch`].
    pub fn dispatch_validated(
        &self,
        payloads: &[String],
        done: &(dyn Fn(usize) + Sync),
        validate: AnswerValidator<'_>,
    ) -> Result<Vec<String>, FleetError> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        if self.endpoints.is_empty() {
            return Err(FleetError::Connect {
                endpoint: "fleet pool".to_string(),
                reason: "no worker endpoints configured".to_string(),
            });
        }
        let scheduler = Scheduler {
            state: Mutex::new(State {
                queue: (0..payloads.len()).collect(),
                in_flight: vec![0; payloads.len()],
                attempts: vec![0; payloads.len()],
                claimed_at: vec![None; payloads.len()],
                results: vec![None; payloads.len()],
                failures: vec![None; payloads.len()],
                last_transport_error: None,
            }),
            wake: Condvar::new(),
        };

        std::thread::scope(|scope| {
            for endpoint in &self.endpoints {
                let scheduler = &scheduler;
                scope
                    .spawn(move || self.worker_loop(endpoint, scheduler, payloads, done, validate));
            }
        });

        let state = scheduler.state.into_inner().expect("no dispatcher panics");
        for job in 0..payloads.len() {
            if let Some(error) = &state.failures[job] {
                return Err(error.clone());
            }
            if state.results[job].is_none() {
                // Every worker thread gave up before this job ran.
                return Err(FleetError::Exhausted {
                    id: job as u64,
                    attempts: state.attempts[job],
                    last: state
                        .last_transport_error
                        .clone()
                        .unwrap_or_else(|| "no workers reachable".to_string()),
                });
            }
        }
        Ok(state
            .results
            .into_iter()
            .map(|slot| slot.expect("every unsettled job was reported above"))
            .collect())
    }

    /// One endpoint's thread: claim, connect, call, record — retrying
    /// transport failures until the batch settles or the reconnect
    /// budget is spent.
    fn worker_loop(
        &self,
        endpoint: &WorkerEndpoint,
        scheduler: &Scheduler,
        payloads: &[String],
        done: &(dyn Fn(usize) + Sync),
        validate: AnswerValidator<'_>,
    ) {
        let mut connection: Option<Connection> = None;
        let mut transport_failures = 0usize;
        while let Some(job) = self.claim_next(scheduler) {
            if connection.is_none() {
                match endpoint.connect() {
                    Ok(live) => connection = Some(live),
                    Err(error) => {
                        self.release_unattempted(scheduler, job, &error);
                        transport_failures += 1;
                        if transport_failures >= RECONNECT_LIMIT {
                            return;
                        }
                        // Back off briefly so a dead endpoint is not
                        // hammered in a tight loop.
                        std::thread::sleep(Duration::from_millis(20 * transport_failures as u64));
                        continue;
                    }
                }
            }
            let live = connection.as_mut().expect("connected above");
            let should_abandon = || scheduler.lock().is_settled(job);
            match live.call(job as u64, &payloads[job], &should_abandon) {
                Ok(CallOutcome::Done(payload)) => {
                    // A well-framed answer whose body fails validation is
                    // as untrustworthy as garbage bytes: drop the
                    // connection and re-dispatch elsewhere instead of
                    // settling the job with a poisoned answer.
                    if let Err(reason) = validate(job as u64, &payload) {
                        connection = None;
                        self.requeue_or_fail(
                            scheduler,
                            job,
                            &FleetError::Malformed(format!(
                                "answer to job {job} failed validation: {reason}"
                            )),
                        );
                        transport_failures += 1;
                        if transport_failures >= RECONNECT_LIMIT {
                            return;
                        }
                        continue;
                    }
                    {
                        let mut state = scheduler.lock();
                        state.in_flight[job] -= 1;
                        if !state.is_settled(job) {
                            state.results[job] = Some(payload);
                            // Deliver while holding the lock so
                            // completions are serialised, exactly like
                            // the in-process progress callbacks.
                            done(job);
                        }
                    }
                    scheduler.wake.notify_all();
                }
                Ok(CallOutcome::Failed(message)) => {
                    {
                        let mut state = scheduler.lock();
                        state.in_flight[job] -= 1;
                        if !state.is_settled(job) {
                            state.failures[job] = Some(FleetError::Job {
                                id: job as u64,
                                message,
                            });
                        }
                    }
                    scheduler.wake.notify_all();
                }
                Ok(CallOutcome::Abandoned) => {
                    // The job settled elsewhere while this worker was
                    // still chewing on it.  The connection has a stale
                    // answer in flight, so drop it and start fresh.
                    scheduler.lock().in_flight[job] -= 1;
                    scheduler.wake.notify_all();
                    connection = None;
                }
                Err(error) => {
                    connection = None;
                    self.requeue_or_fail(scheduler, job, &error);
                    transport_failures += 1;
                    if transport_failures >= RECONNECT_LIMIT {
                        return;
                    }
                }
            }
        }
        if let Some(mut live) = connection {
            live.shutdown();
        }
    }

    /// Claims the next job: first from the retry/fresh queue, then — once
    /// the queue is dry — the least-duplicated job still outstanding on
    /// another worker for longer than [`STRAGGLER_GRACE`] (straggler
    /// re-dispatch; the grace period keeps an ordinary batch tail from
    /// being duplicated onto every idle worker the moment the queue
    /// drains).  Sleeps on the scheduler's condition variable while
    /// in-flight jobs exist that may yet become re-dispatchable; returns
    /// `None` once this worker can never contribute again.
    fn claim_next(&self, scheduler: &Scheduler) -> Option<usize> {
        let mut state = scheduler.lock();
        loop {
            while let Some(job) = state.queue.pop_front() {
                // A queued retry may have settled via a duplicate in the
                // meantime; skip it.
                if !state.is_settled(job) {
                    state.attempts[job] += 1;
                    state.in_flight[job] += 1;
                    state.claimed_at[job] = Some(Instant::now());
                    return Some(job);
                }
            }
            // The queue is dry: look for a straggler whose grace period
            // has expired, and otherwise note when the earliest one will
            // become claimable.
            let now = Instant::now();
            let mut eligible: Option<usize> = None;
            let mut next_ready: Option<Instant> = None;
            for job in 0..state.results.len() {
                if state.is_settled(job)
                    || state.in_flight[job] == 0
                    || state.attempts[job] >= self.max_attempts
                {
                    continue;
                }
                let ready_at =
                    state.claimed_at[job].map_or(now, |claimed| claimed + STRAGGLER_GRACE);
                if ready_at <= now {
                    let better = eligible.is_none_or(|best| {
                        (state.in_flight[job], state.attempts[job], job)
                            < (state.in_flight[best], state.attempts[best], best)
                    });
                    if better {
                        eligible = Some(job);
                    }
                } else {
                    next_ready = Some(next_ready.map_or(ready_at, |t: Instant| t.min(ready_at)));
                }
            }
            if let Some(job) = eligible {
                state.attempts[job] += 1;
                state.in_flight[job] += 1;
                state.claimed_at[job] = Some(now);
                return Some(job);
            }
            // Nothing left this worker could ever run: the batch is
            // settled, or the stragglers are out of attempts and their
            // fate rests with the copies in flight.
            let deadline = next_ready?;
            // In-grace stragglers exist: sleep until the earliest grace
            // expiry or the next settle/requeue notification, whichever
            // comes first.
            let (guard, _) = scheduler
                .wake
                .wait_timeout(state, deadline.saturating_duration_since(now))
                .expect("no dispatcher panics");
            state = guard;
        }
    }

    /// Returns a job whose worker could not even be reached: the claim is
    /// undone (connect failures do not count as attempts) and the job
    /// goes back to the front of the queue.
    fn release_unattempted(&self, scheduler: &Scheduler, job: usize, error: &FleetError) {
        {
            let mut state = scheduler.lock();
            state.attempts[job] -= 1;
            state.in_flight[job] -= 1;
            state.last_transport_error = Some(error.to_string());
            if !state.is_settled(job) {
                state.queue.push_front(job);
            }
        }
        scheduler.wake.notify_all();
    }

    /// Records a transport failure mid-job: re-dispatch on another worker
    /// while attempts remain, otherwise (and only once no copy is still
    /// in flight) declare the job failed.
    fn requeue_or_fail(&self, scheduler: &Scheduler, job: usize, error: &FleetError) {
        {
            let mut state = scheduler.lock();
            state.in_flight[job] -= 1;
            state.last_transport_error = Some(error.to_string());
            if !state.is_settled(job) {
                if state.attempts[job] < self.max_attempts {
                    state.queue.push_back(job);
                } else if state.in_flight[job] == 0 {
                    state.failures[job] = Some(FleetError::Exhausted {
                        id: job as u64,
                        attempts: state.attempts[job],
                        last: error.to_string(),
                    });
                }
            }
        }
        scheduler.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpWorker;
    use crate::worker::ServeOptions;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// An echo worker whose handler can also reject (`fail:<message>`)
    /// or straggle (`slow-once:<ms>:<text>` sleeps on its *first*
    /// execution in this process only, so a re-dispatched copy of the
    /// same payload answers promptly — the answer text stays identical
    /// either way, like a shard answer does).
    fn scripted(payload: &str) -> Result<String, String> {
        static SLOWED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        if let Some(message) = payload.strip_prefix("fail:") {
            return Err(message.to_string());
        }
        let payload = if let Some(rest) = payload.strip_prefix("slow-once:") {
            let (ms, text) = rest.split_once(':').expect("slow-once:<ms>:<text>");
            if !SLOWED.swap(true, Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(ms.parse().expect("sleep ms")));
            }
            text
        } else {
            payload
        };
        Ok(format!("echo:{payload}"))
    }

    fn spawn_worker() -> String {
        let worker = TcpWorker::bind("127.0.0.1:0").unwrap();
        let addr = worker.local_addr().unwrap().to_string();
        std::thread::spawn(move || worker.serve_forever(&scripted, &ServeOptions::default()));
        addr
    }

    fn dead_endpoint() -> WorkerEndpoint {
        let port = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        WorkerEndpoint::tcp(format!("127.0.0.1:{port}"))
    }

    #[test]
    fn a_pool_answers_a_batch_in_job_order() {
        let endpoints = (0..3)
            .map(|_| WorkerEndpoint::tcp(spawn_worker()))
            .collect();
        let payloads: Vec<String> = (0..20).map(|i| format!("job-{i}")).collect();
        let completions = AtomicUsize::new(0);
        let answers = Dispatcher::new(endpoints)
            .dispatch(&payloads, &|_| {
                completions.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        let expected: Vec<String> = (0..20).map(|i| format!("echo:job-{i}")).collect();
        assert_eq!(answers, expected);
        assert_eq!(
            completions.load(Ordering::Relaxed),
            20,
            "done fires exactly once per job, duplicates are dropped"
        );
    }

    #[test]
    fn a_dead_endpoint_does_not_lose_jobs() {
        let endpoints = vec![dead_endpoint(), WorkerEndpoint::tcp(spawn_worker())];
        let payloads: Vec<String> = (0..8).map(|i| format!("j{i}")).collect();
        let answers = Dispatcher::new(endpoints)
            .dispatch(&payloads, &|_| {})
            .unwrap();
        assert_eq!(answers[7], "echo:j7");
        assert_eq!(answers.len(), 8);
    }

    #[test]
    fn stragglers_are_redispatched_and_duplicates_deduped() {
        // Worker A gets stuck on the slow job; worker B drains the rest
        // of the queue and then re-dispatches the straggler.  The batch
        // must complete in well under the slow worker's sleep.
        let endpoints = vec![
            WorkerEndpoint::tcp(spawn_worker()),
            WorkerEndpoint::tcp(spawn_worker()),
        ];
        let mut payloads = vec!["slow-once:4000:tortoise".to_string()];
        payloads.extend((0..6).map(|i| format!("hare-{i}")));
        let completions = AtomicUsize::new(0);
        let start = std::time::Instant::now();
        let answers = Dispatcher::new(endpoints)
            .dispatch(&payloads, &|_| {
                completions.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(3500),
            "the straggling copy must not gate completion (took {:?})",
            start.elapsed()
        );
        assert_eq!(answers[0], "echo:tortoise");
        assert_eq!(completions.load(Ordering::Relaxed), payloads.len());
    }

    #[test]
    fn worker_reported_failures_are_permanent_and_lowest_index_wins() {
        let endpoints = vec![WorkerEndpoint::tcp(spawn_worker())];
        let payloads = vec![
            "fine".to_string(),
            "fail:second is bad".to_string(),
            "fail:third is bad".to_string(),
        ];
        let err = Dispatcher::new(endpoints)
            .dispatch(&payloads, &|_| {})
            .unwrap_err();
        match err {
            FleetError::Job { id, message } => {
                assert_eq!(id, 1);
                assert_eq!(message, "second is bad");
            }
            other => panic!("expected a worker-reported job failure, got {other}"),
        }
    }

    #[test]
    fn an_unreachable_pool_is_a_typed_error_not_a_hang() {
        let err = Dispatcher::new(vec![dead_endpoint(), dead_endpoint()])
            .dispatch(&["x".to_string()], &|_| {})
            .unwrap_err();
        assert!(matches!(err, FleetError::Exhausted { .. }), "got {err}");
        let err = Dispatcher::new(Vec::new())
            .dispatch(&["x".to_string()], &|_| {})
            .unwrap_err();
        assert!(matches!(err, FleetError::Connect { .. }));
    }

    #[test]
    fn rejected_answers_are_retried_like_transport_failures() {
        // The validator refuses the first answer it sees for job 0, so
        // the dispatcher must drop that connection and recompute the job
        // — the final answer set is still complete and correct.
        let endpoints = vec![
            WorkerEndpoint::tcp(spawn_worker()),
            WorkerEndpoint::tcp(spawn_worker()),
        ];
        let payloads: Vec<String> = (0..4).map(|i| format!("v{i}")).collect();
        let rejected_once = std::sync::atomic::AtomicBool::new(false);
        let answers = Dispatcher::new(endpoints)
            .dispatch_validated(&payloads, &|_| {}, &|id, _| {
                if id == 0 && !rejected_once.swap(true, Ordering::SeqCst) {
                    Err("first answer rejected".to_string())
                } else {
                    Ok(())
                }
            })
            .unwrap();
        assert_eq!(answers[0], "echo:v0");
        assert_eq!(answers.len(), 4);
        assert!(rejected_once.load(Ordering::SeqCst));

        // A validator that never accepts exhausts the job's attempts
        // into a typed error instead of settling a poisoned answer.
        let err = Dispatcher::new(vec![WorkerEndpoint::tcp(spawn_worker())])
            .dispatch_validated(&["x".to_string()], &|_| {}, &|_, _| Err("no".into()))
            .unwrap_err();
        assert!(matches!(err, FleetError::Exhausted { .. }), "got {err}");
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let answers = Dispatcher::new(vec![dead_endpoint()])
            .dispatch(&[], &|_| {})
            .unwrap();
        assert!(answers.is_empty());
    }
}
