//! The fleet dispatcher: a batch of opaque jobs scheduled over a pool of
//! worker endpoints.
//!
//! Scheduling keeps the work-stealing semantics of the in-process shard
//! queue: one thread per endpoint claims the next unassigned job from a
//! shared queue, so whichever worker is free takes the next job.  On top
//! of that, the dispatcher handles the failure modes a pool of real
//! processes and sockets adds:
//!
//! * **Dead workers** — a connect failure, a closed stream, or a
//!   malformed answer makes the job go back on the queue for another
//!   worker; the connection is dropped and re-established (local workers
//!   are respawned) up to a per-thread limit before the thread gives up.
//! * **Wedged workers** — every connection (TCP natively, local pipes
//!   via a timed-read adapter) polls, so one that goes silent with work
//!   in flight is pinged; a ping that stays unanswered makes the
//!   connection [`FleetError::Unresponsive`] and its jobs are
//!   re-dispatched immediately instead of waiting for the batch tail's
//!   straggler machinery (or forever, on a single-worker pool).
//! * **Stragglers** — once the queue is empty, idle workers re-dispatch
//!   the jobs still outstanding on other workers (preferring the least
//!   duplicated job, and only after a short grace period so an ordinary
//!   batch tail is not duplicated pointlessly).  Whichever copy answers
//!   first wins.  A worker blocked on an already-settled job is
//!   abandoned at the next read-timeout poll, so a wedged worker can
//!   delay but never hang the final return of [`Dispatcher::dispatch`].
//! * **Poisoned answers** — [`Dispatcher::dispatch_validated`] checks
//!   every answer before its job settles; a well-framed reply whose body
//!   fails validation is retried elsewhere like any transport failure.
//! * **Dedup by job id** — every completion is recorded at most once, so
//!   duplicated answers from straggler re-dispatch (or a slow worker
//!   racing its replacement) are dropped and the per-job completion
//!   callback fires exactly once.
//!
//! Two protocol-v2 capabilities are layered over that core:
//!
//! * **Pipelining** — the worker's `hello` advertises a capacity, and
//!   the dispatcher keeps up to that many jobs in flight on the
//!   connection (writes run ahead of reads; answers are matched by job
//!   id, in whatever order they come back).
//! * **Content-addressed blobs** — a [`JobPayload`] may carry a compact
//!   encoding referencing blobs from a [`BlobSet`] by hash.  On a v2
//!   connection the dispatcher ships each blob at most once
//!   (`scenario-put`, after an optional `scenario-have` query) and sends
//!   the compact payload; a v1 worker transparently gets the equivalent
//!   fully inline payload instead.
//!
//! Connections are *warm*: a [`Dispatcher`] keeps each endpoint's
//! connection (and therefore its spawned local worker process) alive
//! between `dispatch` calls, health-checking it with a ping before
//! reuse.  This is what lets a long-running sweep service answer
//! back-to-back submissions without re-paying process spawn or blob
//! shipping.
//!
//! Because a job's answer is required to be a deterministic function of
//! its payload (shard answers are — that is the whole bit-identical
//! merge guarantee), *which* worker answers never changes the result,
//! only the wall-clock time.

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::endpoint::{Answer, Connection, DispatchTuning, WorkerEndpoint};
use crate::event_loop::{self, WarmPool};
use crate::hash::content_hash;
use crate::obs::{FleetMetrics, FleetObs, FleetSnapshot, WorkerMetrics};
use crate::protocol::JobSpan;
use crate::FleetError;

/// Per-endpoint cap on transport failures (failed connects, dropped
/// connections) before the dispatcher stops retrying that endpoint.
pub(crate) const RECONNECT_LIMIT: usize = 3;

/// How the dispatcher drives its pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// One readiness event loop on the dispatching thread multiplexes
    /// every endpoint over non-blocking I/O — no per-endpoint threads,
    /// so fleets of hundreds of workers cost one poll loop.  Supports
    /// elastic membership via [`Dispatcher::listen_for_workers`].
    #[default]
    EventLoop,
    /// The legacy thread-per-endpoint scheduler: each endpoint gets a
    /// worker thread with timed-poll blocking reads.  Kept as the
    /// reference implementation and for the `fleet_scale` bench's
    /// baseline.
    Threaded,
}

impl DispatchMode {
    /// The canonical mode names, in the order the strict parser's
    /// error message lists them.
    pub const NAMES: [&'static str; 2] = ["event-loop", "threaded"];

    /// The environment variable selecting the dispatch mode.
    pub const ENV: &'static str = "CRP_FLEET_DISPATCH";

    /// Strictly reads [`DispatchMode::ENV`]: `Ok(None)` when unset, a
    /// typed [`FleetError::Env`] listing the valid names on a value
    /// that parses as neither mode.  The CLI calls this so a mistyped
    /// override fails loudly; the lenient [`Dispatcher::new`] default
    /// warns once and falls back instead.
    pub fn try_from_env() -> Result<Option<Self>, FleetError> {
        let Ok(value) = std::env::var(Self::ENV) else {
            return Ok(None);
        };
        match value.trim().parse() {
            Ok(mode) => Ok(Some(mode)),
            Err(reason) => Err(FleetError::Env {
                var: Self::ENV.to_string(),
                value,
                reason,
            }),
        }
    }

    /// Reads [`DispatchMode::ENV`] leniently: unset keeps the default,
    /// an unknown value warns once and keeps the default.
    fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(mode) => mode.unwrap_or_default(),
            Err(error) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(move || {
                    eprintln!("warning: {error}; using the default dispatch mode");
                });
                Self::default()
            }
        }
    }
}

impl std::str::FromStr for DispatchMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "event-loop" | "event_loop" | "eventloop" => Ok(Self::EventLoop),
            "threaded" | "threads" => Ok(Self::Threaded),
            _ => Err(format!("expected one of: {}", Self::NAMES.join(", "))),
        }
    }
}

/// Validates a worker's answer *before* the job settles: return `Err`
/// and the answer is treated exactly like a transport failure — the
/// connection is dropped and the job re-dispatched — instead of
/// poisoning the batch.  This is how `crp-sim` rejects a well-framed
/// `done` whose accumulator body is corrupt.
pub type AnswerValidator<'a> = &'a (dyn Fn(u64, &str) -> Result<(), String> + Sync);

/// One dispatchable job: the canonical fully inline payload every worker
/// understands, plus an optional compact payload that references
/// [`BlobSet`] entries by content hash (sent to protocol-v2 workers
/// after the blobs have been shipped once).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPayload {
    /// The canonical self-contained payload (protocol v1 compatible).
    pub inline: String,
    /// A smaller payload referencing blobs by hash, if the job has one.
    pub compact: Option<String>,
    /// The content hashes `compact` references.
    pub refs: Vec<String>,
    /// The job's trace span, carried in the job frame on protocol-v3
    /// connections so the worker's trace events correlate with the
    /// dispatcher's.  Never affects scheduling or answers.
    pub span: Option<JobSpan>,
}

impl JobPayload {
    /// A job with only an inline payload.
    pub fn inline(payload: impl Into<String>) -> Self {
        Self {
            inline: payload.into(),
            compact: None,
            refs: Vec::new(),
            span: None,
        }
    }

    /// A job with a compact encoding referencing `refs` from the batch's
    /// [`BlobSet`].
    pub fn with_compact(
        inline: impl Into<String>,
        compact: impl Into<String>,
        refs: Vec<String>,
    ) -> Self {
        Self {
            inline: inline.into(),
            compact: Some(compact.into()),
            refs,
            span: None,
        }
    }

    /// Attaches a trace span (builder style).
    pub fn with_span(mut self, span: JobSpan) -> Self {
        self.span = Some(span);
        self
    }
}

impl From<String> for JobPayload {
    fn from(payload: String) -> Self {
        Self::inline(payload)
    }
}

impl From<&str> for JobPayload {
    fn from(payload: &str) -> Self {
        Self::inline(payload.to_string())
    }
}

/// The content-addressed blobs a batch's compact payloads reference.
#[derive(Debug, Clone, Default)]
pub struct BlobSet {
    blobs: HashMap<String, String>,
}

impl BlobSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `blob` under its [`content_hash`] and returns the hash
    /// (idempotent — the same bytes always land on the same key).
    pub fn insert(&mut self, blob: impl Into<String>) -> String {
        let blob = blob.into();
        let hash = content_hash(blob.as_bytes());
        self.blobs.entry(hash.clone()).or_insert(blob);
        hash
    }

    /// The blob stored under `hash`, if any.
    pub fn get(&self, hash: &str) -> Option<&str> {
        self.blobs.get(hash).map(String::as_str)
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Iterates over `(hash, blob)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.blobs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// Schedules batches of jobs over a pool of [`WorkerEndpoint`]s,
/// keeping each endpoint's connection warm between batches.
pub struct Dispatcher {
    pub(crate) endpoints: Vec<WorkerEndpoint>,
    /// Capacity multiplier per endpoint: the scheduler keeps up to
    /// `hello capacity × weight` jobs in flight on that connection.
    pub(crate) weights: Vec<usize>,
    pub(crate) max_attempts: usize,
    pub(crate) tuning: DispatchTuning,
    mode: DispatchMode,
    /// One warm-connection slot per endpoint, reused across `dispatch`
    /// calls (and health-checked before reuse).  Threaded mode only.
    slots: Vec<Mutex<Option<Connection>>>,
    /// The event loop's warm connections, registration listener, and
    /// elastically joined workers, carried across `dispatch` calls.
    pub(crate) warm: Mutex<WarmPool>,
    /// Per-worker health counters behind [`Dispatcher::snapshot`],
    /// accumulated across batches by both dispatch modes.
    pub(crate) obs: FleetObs,
}

/// Shared scheduling state.  The threaded dispatcher keeps it under one
/// lock; the event loop owns it outright on a single thread.
pub(crate) struct State {
    /// Jobs waiting for a (first or retry) dispatch.
    pub(crate) queue: VecDeque<usize>,
    /// How many workers are currently running each job.
    pub(crate) in_flight: Vec<usize>,
    /// Calls actually made per job (connect failures do not count).
    pub(crate) attempts: Vec<usize>,
    /// When each job was last claimed, for the straggler grace period.
    pub(crate) claimed_at: Vec<Option<Instant>>,
    /// Successful answers, in job order.
    pub(crate) results: Vec<Option<String>>,
    /// Permanent failures (worker-reported, or retries exhausted).
    pub(crate) failures: Vec<Option<FleetError>>,
    /// The most recent transport-level failure, for diagnostics.
    pub(crate) last_transport_error: Option<String>,
}

impl State {
    pub(crate) fn new(jobs: usize) -> Self {
        Self {
            queue: (0..jobs).collect(),
            in_flight: vec![0; jobs],
            attempts: vec![0; jobs],
            claimed_at: vec![None; jobs],
            results: vec![None; jobs],
            failures: vec![None; jobs],
            last_transport_error: None,
        }
    }

    pub(crate) fn is_settled(&self, job: usize) -> bool {
        self.results[job].is_some() || self.failures[job].is_some()
    }

    /// Marks a claim: one more attempt, one more copy in flight.
    pub(crate) fn claim(&mut self, job: usize) {
        self.attempts[job] += 1;
        self.in_flight[job] += 1;
        self.claimed_at[job] = Some(Instant::now());
    }

    /// The single-threaded equivalent of the scheduler's
    /// `requeue_or_fail`: a transport failure mid-job re-dispatches it
    /// while attempts remain, otherwise (and only once no copy is still
    /// in flight) declares the job failed.
    pub(crate) fn requeue_or_fail(&mut self, job: usize, error: &FleetError, max_attempts: usize) {
        self.in_flight[job] -= 1;
        self.last_transport_error = Some(error.to_string());
        if !self.is_settled(job) {
            if self.attempts[job] < max_attempts {
                self.queue.push_back(job);
            } else if self.in_flight[job] == 0 {
                self.failures[job] = Some(FleetError::Exhausted {
                    id: job as u64,
                    attempts: self.attempts[job],
                    last: error.to_string(),
                });
            }
        }
    }
}

/// The shared state plus the condition variable idle workers sleep on —
/// any event that could unblock a claim (a settle, a requeue) notifies
/// it, so batch tails end the instant the last job settles instead of on
/// a poll tick.
struct Scheduler {
    state: Mutex<State>,
    wake: Condvar,
}

impl Scheduler {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("no dispatcher panics")
    }
}

impl Dispatcher {
    /// A dispatcher over the given pool (every endpoint at weight 1).
    /// Each job is attempted at most `max(3, 2 × pool size)` times
    /// before it is declared failed.
    ///
    /// The dispatch mode defaults to [`DispatchMode::EventLoop`];
    /// `CRP_FLEET_DISPATCH=threaded` (read leniently) selects the
    /// legacy thread-per-endpoint scheduler, and timing knobs come from
    /// [`DispatchTuning::from_env`].  Use [`Dispatcher::with_mode`] /
    /// [`Dispatcher::with_tuning`] for explicit control.
    pub fn new(endpoints: Vec<WorkerEndpoint>) -> Self {
        let weights = vec![1; endpoints.len()];
        Self::new_weighted(endpoints.into_iter().zip(weights).collect())
    }

    /// A dispatcher over a pool with per-endpoint capacity weights: the
    /// scheduler keeps up to `hello capacity × weight` jobs in flight
    /// on each connection, so a beefy host can be oversubscribed
    /// relative to its peers (`host:port*4` in a [`crate::FleetManifest`]).
    /// Zero weights are promoted to 1.
    pub fn new_weighted(endpoints: Vec<(WorkerEndpoint, usize)>) -> Self {
        let (endpoints, weights): (Vec<_>, Vec<_>) = endpoints
            .into_iter()
            .map(|(endpoint, weight)| (endpoint, weight.max(1)))
            .unzip();
        let max_attempts = (2 * endpoints.len()).max(3);
        let slots = endpoints.iter().map(|_| Mutex::new(None)).collect();
        let warm = Mutex::new(WarmPool::with_fixed(endpoints.len()));
        Self {
            endpoints,
            weights,
            max_attempts,
            tuning: DispatchTuning::from_env(),
            mode: DispatchMode::from_env(),
            slots,
            warm,
            obs: FleetObs::default(),
        }
    }

    /// Overrides the per-job attempt cap (tests).
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Overrides the timing knobs (polling, pings, straggler grace).
    pub fn with_tuning(mut self, tuning: DispatchTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Selects the dispatch mode explicitly, overriding the
    /// environment.
    pub fn with_mode(mut self, mode: DispatchMode) -> Self {
        self.mode = mode;
        self
    }

    /// The dispatch mode in effect.
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// The timing knobs in effect.
    pub fn tuning(&self) -> DispatchTuning {
        self.tuning
    }

    /// The pool this dispatcher schedules over.
    pub fn endpoints(&self) -> &[WorkerEndpoint] {
        &self.endpoints
    }

    /// The per-endpoint capacity weights, parallel to
    /// [`Dispatcher::endpoints`] (always ≥ 1).
    pub fn weights(&self) -> &[usize] {
        &self.weights
    }

    /// An on-demand view of per-worker health: jobs dispatched,
    /// completed, requeued, pings sent, and jobs currently in flight —
    /// accumulated since this dispatcher was created, spanning fixed
    /// and elastically joined workers.
    pub fn snapshot(&self) -> FleetSnapshot {
        self.obs.snapshot()
    }

    /// Pulls every warm worker's shipped [`crp_obs::MetricsSnapshot`]
    /// with a `metrics`/`metrics-report` round trip and returns the
    /// per-worker results plus the merged fleet-wide rollup.  Workers
    /// that are not connected, speak a pre-v3 protocol, or fail the
    /// pull are reported with `snapshot: None` (rendered as
    /// `metrics: unavailable`) — a metrics pull never tears a healthy
    /// batch down, and the failed connection is simply dropped to be
    /// re-established on the next dispatch.
    ///
    /// Call between batches only (the serve daemon does): a pull
    /// interleaved with outstanding jobs on the threaded path would
    /// race the worker thread for the connection.
    pub fn worker_metrics(&self) -> FleetMetrics {
        let decode = |endpoint: String, body: Option<String>| WorkerMetrics {
            snapshot: body.and_then(|body| crp_obs::MetricsSnapshot::decode(&body).ok()),
            endpoint,
        };
        let mut workers: Vec<WorkerMetrics> = Vec::new();
        match self.mode {
            DispatchMode::Threaded => {
                for (index, slot) in self.slots.iter().enumerate() {
                    let endpoint = self.endpoints[index].describe();
                    let mut guard = slot.lock().expect("no dispatcher panics");
                    match guard.as_mut().map(Connection::fetch_metrics) {
                        Some(Ok(body)) => workers.push(decode(endpoint, body)),
                        Some(Err(_)) => {
                            // The connection broke mid-pull; drop it.
                            *guard = None;
                            workers.push(decode(endpoint, None));
                        }
                        None => workers.push(decode(endpoint, None)),
                    }
                }
            }
            DispatchMode::EventLoop => {
                let mut warm = self.warm.lock().expect("no dispatcher panics");
                for (index, slot) in warm.fixed.iter_mut().enumerate() {
                    let endpoint = self.endpoints[index].describe();
                    match slot.as_mut().map(|conn| conn.fetch_metrics(&self.tuning)) {
                        Some(Ok(body)) => workers.push(decode(endpoint, body)),
                        Some(Err(_)) => {
                            *slot = None;
                            workers.push(decode(endpoint, None));
                        }
                        None => workers.push(decode(endpoint, None)),
                    }
                }
                let mut dead: Vec<usize> = Vec::new();
                for (index, conn) in warm.joined.iter_mut().enumerate() {
                    let endpoint = conn.peer().to_string();
                    match conn.fetch_metrics(&self.tuning) {
                        Ok(body) => workers.push(decode(endpoint, body)),
                        Err(_) => {
                            dead.push(index);
                            workers.push(decode(endpoint, None));
                        }
                    }
                }
                for index in dead.into_iter().rev() {
                    warm.joined.remove(index);
                }
            }
        }
        workers.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));
        FleetMetrics { workers }
    }

    /// Opens a registration listener for elastic membership: workers
    /// that dial `addr` (see `crp_fleet::join_fleet` or
    /// `crp_experiments worker --join`) are folded into the event loop
    /// of every subsequent — or currently running — `dispatch` call as
    /// weight-1 endpoints.  A joined worker that disconnects mid-batch
    /// has its in-flight jobs requeued exactly like a dead fixed
    /// worker.  Returns the bound address (useful with port 0).
    ///
    /// Joined workers are only consumed by [`DispatchMode::EventLoop`];
    /// the threaded scheduler ignores the listener.
    ///
    /// # Errors
    ///
    /// [`FleetError::Connect`] when the address cannot be bound.
    pub fn listen_for_workers(&self, addr: &str) -> Result<SocketAddr, FleetError> {
        let listener = std::net::TcpListener::bind(addr).map_err(|e| FleetError::Connect {
            endpoint: addr.to_string(),
            reason: format!("bind worker registration listener: {e}"),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| FleetError::Connect {
                endpoint: addr.to_string(),
                reason: format!("set registration listener non-blocking: {e}"),
            })?;
        let bound = listener.local_addr().map_err(|e| FleetError::Connect {
            endpoint: addr.to_string(),
            reason: format!("query registration listener address: {e}"),
        })?;
        self.warm.lock().expect("no dispatcher panics").listener = Some(listener);
        Ok(bound)
    }

    /// Closes every warm connection, politely shutting spawned local
    /// workers down.  Called automatically on drop; call it explicitly
    /// to cold-stop a fleet without dropping the dispatcher.
    pub fn shutdown_workers(&self) {
        for slot in &self.slots {
            if let Some(mut live) = slot.lock().expect("no dispatcher panics").take() {
                live.shutdown();
            }
        }
        self.warm.lock().expect("no dispatcher panics").shutdown();
    }

    /// Runs every payload to completion on the pool and returns the
    /// answers in job order.  `done(job)` is invoked exactly once per
    /// completed job, in completion order, possibly from a worker
    /// thread.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing job: [`FleetError::Job`]
    /// when a worker rejected the payload deterministically, otherwise
    /// [`FleetError::Exhausted`] describing the transport failures that
    /// used up the job's attempts (or left the pool unreachable).
    pub fn dispatch(
        &self,
        payloads: &[String],
        done: &(dyn Fn(usize) + Sync),
    ) -> Result<Vec<String>, FleetError> {
        self.dispatch_validated(payloads, done, &|_, _| Ok(()))
    }

    /// Like [`Dispatcher::dispatch`], but every answer must pass
    /// `validate` before its job settles; a rejected answer is retried
    /// on another worker like any transport failure.
    ///
    /// # Errors
    ///
    /// As [`Dispatcher::dispatch`].
    pub fn dispatch_validated(
        &self,
        payloads: &[String],
        done: &(dyn Fn(usize) + Sync),
        validate: AnswerValidator<'_>,
    ) -> Result<Vec<String>, FleetError> {
        let jobs: Vec<JobPayload> = payloads
            .iter()
            .map(|payload| JobPayload::inline(payload.clone()))
            .collect();
        self.dispatch_jobs(&jobs, &BlobSet::new(), done, validate)
    }

    /// The full-featured entry point: [`JobPayload`]s whose compact
    /// encodings may reference `blobs`, answer validation, and per-job
    /// completion callbacks.  See [`Dispatcher::dispatch`] for the
    /// scheduling contract.
    ///
    /// # Errors
    ///
    /// As [`Dispatcher::dispatch`].
    pub fn dispatch_jobs(
        &self,
        jobs: &[JobPayload],
        blobs: &BlobSet,
        done: &(dyn Fn(usize) + Sync),
        validate: AnswerValidator<'_>,
    ) -> Result<Vec<String>, FleetError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        if self.endpoints.is_empty() && !self.has_elastic_sources() {
            return Err(FleetError::Connect {
                endpoint: "fleet pool".to_string(),
                reason: "no worker endpoints configured".to_string(),
            });
        }
        let state = match self.mode {
            DispatchMode::EventLoop => event_loop::run(self, jobs, blobs, done, validate),
            DispatchMode::Threaded => self.dispatch_threaded(jobs, blobs, done, validate),
        };
        for job in 0..jobs.len() {
            if let Some(error) = &state.failures[job] {
                return Err(error.clone());
            }
            if state.results[job].is_none() {
                // Every worker thread gave up before this job ran.
                return Err(FleetError::Exhausted {
                    id: job as u64,
                    attempts: state.attempts[job],
                    last: state
                        .last_transport_error
                        .clone()
                        .unwrap_or_else(|| "no workers reachable".to_string()),
                });
            }
        }
        Ok(state
            .results
            .into_iter()
            .map(|slot| slot.expect("every unsettled job was reported above"))
            .collect())
    }

    /// True when an empty fixed pool can still find workers: a
    /// registration listener is open, or joined workers are parked warm
    /// from a previous batch.
    fn has_elastic_sources(&self) -> bool {
        if self.mode != DispatchMode::EventLoop {
            return false;
        }
        let warm = self.warm.lock().expect("no dispatcher panics");
        warm.listener.is_some() || !warm.joined.is_empty()
    }

    /// The legacy thread-per-endpoint scheduler: one blocking
    /// `worker_loop` thread per endpoint over a shared locked queue.
    fn dispatch_threaded(
        &self,
        jobs: &[JobPayload],
        blobs: &BlobSet,
        done: &(dyn Fn(usize) + Sync),
        validate: AnswerValidator<'_>,
    ) -> State {
        let scheduler = Scheduler {
            state: Mutex::new(State::new(jobs.len())),
            wake: Condvar::new(),
        };

        std::thread::scope(|scope| {
            for index in 0..self.endpoints.len() {
                let scheduler = &scheduler;
                scope
                    .spawn(move || self.worker_loop(index, scheduler, jobs, blobs, done, validate));
            }
        });

        scheduler.state.into_inner().expect("no dispatcher panics")
    }

    /// Sends one claimed job down a live connection: on a v2 connection
    /// with a compact payload, ships any missing blobs first and sends
    /// the compact form; otherwise sends the inline form.
    fn send_claim(
        connection: &mut Connection,
        job: usize,
        jobs: &[JobPayload],
        blobs: &BlobSet,
        may_query: bool,
    ) -> Result<(), FleetError> {
        let payload = &jobs[job];
        if connection.version() >= 2 {
            if let Some(compact) = &payload.compact {
                for hash in &payload.refs {
                    let blob = blobs.get(hash).ok_or_else(|| {
                        FleetError::Malformed(format!(
                            "job {job} references blob {hash} missing from the batch blob set"
                        ))
                    })?;
                    connection.ensure_blob(hash, blob, may_query)?;
                }
                return connection.send_job(job as u64, compact, payload.span.as_ref());
            }
        }
        connection.send_job(job as u64, &payload.inline, payload.span.as_ref())
    }

    /// One endpoint's thread: claim (up to the connection's capacity),
    /// send, read, record — retrying transport failures until the batch
    /// settles or the reconnect budget is spent, and returning the warm
    /// connection to its slot at the end.
    fn worker_loop(
        &self,
        index: usize,
        scheduler: &Scheduler,
        jobs: &[JobPayload],
        blobs: &BlobSet,
        done: &(dyn Fn(usize) + Sync),
        validate: AnswerValidator<'_>,
    ) {
        let endpoint = &self.endpoints[index];
        let peer = endpoint.describe();
        let slot = &self.slots[index];
        // Reuse the warm connection from the previous batch — but only
        // after it proves it is still alive (ping/pong), so a worker
        // that died while idle costs a reconnect, not a batch failure.
        let mut connection: Option<Connection> = slot
            .lock()
            .expect("no dispatcher panics")
            .take()
            .and_then(|mut live| live.health_check().is_ok().then_some(live));
        let mut transport_failures = 0usize;
        // Jobs written to the connection and awaiting answers.
        let mut outstanding: Vec<usize> = Vec::new();

        'batch: loop {
            // Fill phase: top the pipeline up to the worker's capacity
            // times the endpoint's configured weight.  The first claim
            // of an empty pipeline may block (waiting on the queue /
            // straggler machinery); extra claims never do.  Capacity is
            // re-read every iteration: before the first connect it is
            // unknown (treat as 1), and the moment the hello arrives
            // the advertised value takes effect.
            let weight = self.weights[index].max(1);
            while outstanding.len()
                < connection
                    .as_ref()
                    .map_or(1, |c| c.capacity().max(1) * weight)
            {
                let job = if outstanding.is_empty() {
                    match self.claim_next(scheduler) {
                        Some(job) => job,
                        None => break 'batch,
                    }
                } else {
                    match self.try_claim(scheduler, &outstanding) {
                        Some(job) => job,
                        None => break,
                    }
                };
                if connection.is_none() {
                    match endpoint.connect_with(&self.tuning) {
                        Ok(live) => connection = Some(live),
                        Err(error) => {
                            self.release_unattempted(scheduler, job, &error);
                            transport_failures += 1;
                            if transport_failures >= RECONNECT_LIMIT {
                                return;
                            }
                            // Back off briefly so a dead endpoint is not
                            // hammered in a tight loop.
                            std::thread::sleep(Duration::from_millis(
                                20 * transport_failures as u64,
                            ));
                            continue 'batch;
                        }
                    }
                }
                let live = connection.as_mut().expect("connected above");
                // Blob queries need a predictable next frame, so only
                // query when nothing is in flight.
                match Self::send_claim(live, job, jobs, blobs, outstanding.is_empty()) {
                    Ok(()) => {
                        self.obs
                            .dispatched(&peer, job as u64, jobs[job].span.as_ref());
                        outstanding.push(job);
                    }
                    Err(error) => {
                        // The connection broke mid-send: everything on it
                        // (including this claim) goes back for another
                        // worker.  (The failed claim was never recorded
                        // as dispatched, so only the in-flight jobs are
                        // counted as requeued off this worker.)
                        self.requeue_or_fail(scheduler, job, &error);
                        for &lost in &outstanding {
                            self.requeue_or_fail(scheduler, lost, &error);
                            self.obs.requeued(&peer, lost as u64, &error.to_string());
                        }
                        outstanding.clear();
                        connection = None;
                        transport_failures += 1;
                        if transport_failures >= RECONNECT_LIMIT {
                            return;
                        }
                        continue 'batch;
                    }
                }
            }
            debug_assert!(!outstanding.is_empty(), "the fill phase claimed a job");

            // Read phase: pull one answer off the connection.
            let live = connection.as_mut().expect("pipeline holds jobs");
            let pipeline = &outstanding;
            let answer = live.read_answer(&|id| pipeline.contains(&(id as usize)), &|| {
                let state = scheduler.lock();
                pipeline.iter().all(|&job| state.is_settled(job))
            });
            match answer {
                Ok(Answer::Done { id, payload }) => {
                    let job = id as usize;
                    outstanding.retain(|&j| j != job);
                    // A well-framed answer whose body fails validation is
                    // as untrustworthy as garbage bytes: drop the
                    // connection and re-dispatch elsewhere instead of
                    // settling the job with a poisoned answer.
                    if let Err(reason) = validate(id, &payload) {
                        let error = FleetError::Malformed(format!(
                            "answer to job {job} failed validation: {reason}"
                        ));
                        self.obs.requeued(&peer, job as u64, &error.to_string());
                        self.requeue_or_fail(scheduler, job, &error);
                        for &lost in &outstanding {
                            self.requeue_or_fail(scheduler, lost, &error);
                            self.obs.requeued(&peer, lost as u64, &error.to_string());
                        }
                        outstanding.clear();
                        connection = None;
                        transport_failures += 1;
                        if transport_failures >= RECONNECT_LIMIT {
                            return;
                        }
                        continue;
                    }
                    let micros = {
                        let mut state = scheduler.lock();
                        let micros = state.claimed_at[job]
                            .map_or(0, |claimed| claimed.elapsed().as_micros() as u64);
                        state.in_flight[job] -= 1;
                        if !state.is_settled(job) {
                            state.results[job] = Some(payload);
                            // Deliver while holding the lock so
                            // completions are serialised, exactly like
                            // the in-process progress callbacks.
                            done(job);
                        }
                        micros
                    };
                    self.obs.completed(&peer, micros);
                    scheduler.wake.notify_all();
                }
                Ok(Answer::Failed { id, message }) => {
                    let job = id as usize;
                    outstanding.retain(|&j| j != job);
                    {
                        let mut state = scheduler.lock();
                        state.in_flight[job] -= 1;
                        if !state.is_settled(job) {
                            state.failures[job] = Some(FleetError::Job { id, message });
                        }
                    }
                    self.obs.failed(&peer);
                    scheduler.wake.notify_all();
                }
                Ok(Answer::Abandoned) => {
                    // Every outstanding job settled elsewhere while this
                    // worker was still chewing.  The connection has stale
                    // answers in flight, so drop it and start fresh.
                    {
                        let mut state = scheduler.lock();
                        for &job in &outstanding {
                            state.in_flight[job] -= 1;
                        }
                    }
                    self.obs.abandoned(&peer, outstanding.len() as u64);
                    outstanding.clear();
                    scheduler.wake.notify_all();
                    connection = None;
                }
                Err(error) => {
                    connection = None;
                    for &job in &outstanding {
                        self.requeue_or_fail(scheduler, job, &error);
                        self.obs.requeued(&peer, job as u64, &error.to_string());
                    }
                    outstanding.clear();
                    transport_failures += 1;
                    if transport_failures >= RECONNECT_LIMIT {
                        return;
                    }
                }
            }
        }
        // Keep the connection warm for the next batch.
        if let Some(live) = connection {
            *slot.lock().expect("no dispatcher panics") = Some(live);
        }
    }

    /// Claims the next job: first from the retry/fresh queue, then — once
    /// the queue is dry — the least-duplicated job still outstanding on
    /// another worker for longer than the tuning's straggler grace
    /// (straggler re-dispatch; the grace period keeps an ordinary batch
    /// tail from being duplicated onto every idle worker the moment the
    /// queue drains).  Sleeps on the scheduler's condition variable while
    /// in-flight jobs exist that may yet become re-dispatchable; returns
    /// `None` once this worker can never contribute again.
    fn claim_next(&self, scheduler: &Scheduler) -> Option<usize> {
        let mut state = scheduler.lock();
        loop {
            while let Some(job) = state.queue.pop_front() {
                // A queued retry may have settled via a duplicate in the
                // meantime; skip it.
                if !state.is_settled(job) {
                    state.attempts[job] += 1;
                    state.in_flight[job] += 1;
                    state.claimed_at[job] = Some(Instant::now());
                    return Some(job);
                }
            }
            // The queue is dry: look for a straggler whose grace period
            // has expired, and otherwise note when the earliest one will
            // become claimable.
            let now = Instant::now();
            let mut eligible: Option<usize> = None;
            let mut next_ready: Option<Instant> = None;
            for job in 0..state.results.len() {
                if state.is_settled(job)
                    || state.in_flight[job] == 0
                    || state.attempts[job] >= self.max_attempts
                {
                    continue;
                }
                let ready_at = state.claimed_at[job]
                    .map_or(now, |claimed| claimed + self.tuning.straggler_grace);
                if ready_at <= now {
                    let better = eligible.is_none_or(|best| {
                        (state.in_flight[job], state.attempts[job], job)
                            < (state.in_flight[best], state.attempts[best], best)
                    });
                    if better {
                        eligible = Some(job);
                    }
                } else {
                    next_ready = Some(next_ready.map_or(ready_at, |t: Instant| t.min(ready_at)));
                }
            }
            if let Some(job) = eligible {
                state.attempts[job] += 1;
                state.in_flight[job] += 1;
                state.claimed_at[job] = Some(now);
                return Some(job);
            }
            // Nothing left this worker could ever run: the batch is
            // settled, or the stragglers are out of attempts and their
            // fate rests with the copies in flight.
            let deadline = next_ready?;
            // In-grace stragglers exist: sleep until the earliest grace
            // expiry or the next settle/requeue notification, whichever
            // comes first.
            let (guard, _) = scheduler
                .wake
                .wait_timeout(state, deadline.saturating_duration_since(now))
                .expect("no dispatcher panics");
            state = guard;
        }
    }

    /// The non-blocking claim used to top a pipeline up: pops fresh or
    /// retried jobs off the queue, but never waits and never duplicates
    /// stragglers (those go to fully idle workers via [`claim_next`]).
    /// Jobs in `exclude` — the caller's own pipeline — are skipped and
    /// left queued for other workers: a requeued copy of a job this
    /// connection still has outstanding must not produce a duplicate id
    /// on the same stream (its second answer would read as a protocol
    /// violation and tear the healthy connection down).
    fn try_claim(&self, scheduler: &Scheduler, exclude: &[usize]) -> Option<usize> {
        let mut state = scheduler.lock();
        let mut skipped: Vec<usize> = Vec::new();
        let mut picked = None;
        while let Some(job) = state.queue.pop_front() {
            if state.is_settled(job) {
                continue;
            }
            if exclude.contains(&job) {
                skipped.push(job);
                continue;
            }
            state.attempts[job] += 1;
            state.in_flight[job] += 1;
            state.claimed_at[job] = Some(Instant::now());
            picked = Some(job);
            break;
        }
        // Return the skipped jobs to the front, preserving their order.
        for job in skipped.into_iter().rev() {
            state.queue.push_front(job);
        }
        picked
    }

    /// Returns a job whose worker could not even be reached: the claim is
    /// undone (connect failures do not count as attempts) and the job
    /// goes back to the front of the queue.
    fn release_unattempted(&self, scheduler: &Scheduler, job: usize, error: &FleetError) {
        {
            let mut state = scheduler.lock();
            state.attempts[job] -= 1;
            state.in_flight[job] -= 1;
            state.last_transport_error = Some(error.to_string());
            if !state.is_settled(job) {
                state.queue.push_front(job);
            }
        }
        scheduler.wake.notify_all();
    }

    /// Records a transport failure mid-job: re-dispatch on another worker
    /// while attempts remain, otherwise (and only once no copy is still
    /// in flight) declare the job failed.
    fn requeue_or_fail(&self, scheduler: &Scheduler, job: usize, error: &FleetError) {
        {
            let mut state = scheduler.lock();
            state.in_flight[job] -= 1;
            state.last_transport_error = Some(error.to_string());
            if !state.is_settled(job) {
                if state.attempts[job] < self.max_attempts {
                    state.queue.push_back(job);
                } else if state.in_flight[job] == 0 {
                    state.failures[job] = Some(FleetError::Exhausted {
                        id: job as u64,
                        attempts: state.attempts[job],
                        last: error.to_string(),
                    });
                }
            }
        }
        scheduler.wake.notify_all();
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpWorker;
    use crate::worker::{ScenarioStore, ServeOptions};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// An echo worker whose handler can also reject (`fail:<message>`),
    /// sleep every time (`sleep:<ms>:<text>`) or straggle
    /// (`slow-once:<ms>:<text>` sleeps on its *first* execution in this
    /// process only, so a re-dispatched copy of the same payload answers
    /// promptly — the answer text stays identical either way, like a
    /// shard answer does).
    fn scripted(payload: &str) -> Result<String, String> {
        static SLOWED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        if let Some(message) = payload.strip_prefix("fail:") {
            return Err(message.to_string());
        }
        let payload = if let Some(rest) = payload.strip_prefix("slow-once:") {
            let (ms, text) = rest.split_once(':').expect("slow-once:<ms>:<text>");
            if !SLOWED.swap(true, Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(ms.parse().expect("sleep ms")));
            }
            text
        } else if let Some(rest) = payload.strip_prefix("sleep:") {
            let (ms, text) = rest.split_once(':').expect("sleep:<ms>:<text>");
            std::thread::sleep(Duration::from_millis(ms.parse().expect("sleep ms")));
            text
        } else {
            payload
        };
        Ok(format!("echo:{payload}"))
    }

    fn spawn_worker_with(options: ServeOptions) -> String {
        let worker = TcpWorker::bind("127.0.0.1:0").unwrap();
        let addr = worker.local_addr().unwrap().to_string();
        std::thread::spawn(move || worker.serve_forever(&scripted, &options));
        addr
    }

    fn spawn_worker() -> String {
        spawn_worker_with(ServeOptions::default())
    }

    fn dead_endpoint() -> WorkerEndpoint {
        let port = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        WorkerEndpoint::tcp(format!("127.0.0.1:{port}"))
    }

    #[test]
    fn a_pool_answers_a_batch_in_job_order() {
        let endpoints = (0..3)
            .map(|_| WorkerEndpoint::tcp(spawn_worker()))
            .collect();
        let payloads: Vec<String> = (0..20).map(|i| format!("job-{i}")).collect();
        let completions = AtomicUsize::new(0);
        let answers = Dispatcher::new(endpoints)
            .dispatch(&payloads, &|_| {
                completions.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        let expected: Vec<String> = (0..20).map(|i| format!("echo:job-{i}")).collect();
        assert_eq!(answers, expected);
        assert_eq!(
            completions.load(Ordering::Relaxed),
            20,
            "done fires exactly once per job, duplicates are dropped"
        );
    }

    #[test]
    fn warm_connections_survive_across_batches() {
        // One TCP worker, two dispatches through the same dispatcher:
        // the second batch reuses the health-checked warm connection.
        let dispatcher = Dispatcher::new(vec![WorkerEndpoint::tcp(spawn_worker())]);
        let first = dispatcher.dispatch(&["a".to_string()], &|_| {}).unwrap();
        assert_eq!(first, vec!["echo:a".to_string()]);
        let second = dispatcher.dispatch(&["b".to_string()], &|_| {}).unwrap();
        assert_eq!(second, vec!["echo:b".to_string()]);
    }

    #[test]
    fn a_capacity_4_worker_gets_its_pipeline_filled() {
        // Four 300ms jobs on ONE capacity-4 connection: pipelined writes
        // plus the worker's concurrent execution finish them together;
        // a one-at-a-time conversation would need ~1200ms.
        let addr = spawn_worker_with(ServeOptions {
            capacity: 4,
            ..Default::default()
        });
        let payloads: Vec<String> = (0..4).map(|i| format!("sleep:300:p{i}")).collect();
        let dispatcher = Dispatcher::new(vec![WorkerEndpoint::tcp(addr)]);
        let start = Instant::now();
        let answers = dispatcher.dispatch(&payloads, &|_| {}).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(
            answers,
            (0..4).map(|i| format!("echo:p{i}")).collect::<Vec<_>>()
        );
        assert!(
            elapsed < Duration::from_millis(900),
            "capacity-4 pipelining should overlap the four sleeps (took {elapsed:?})"
        );
    }

    #[test]
    fn an_unresponsive_worker_is_a_typed_error_not_a_hang() {
        // The worker accepts the job and then goes silent without
        // closing its socket.  Read timeouts alone would poll forever;
        // the ping health check must declare it unresponsive.
        let addr = spawn_worker_with(ServeOptions {
            wedge_after: Some(0),
            ..Default::default()
        });
        let dispatcher = Dispatcher::new(vec![WorkerEndpoint::tcp(addr)]).with_max_attempts(1);
        let err = dispatcher
            .dispatch(&["stuck".to_string()], &|_| {})
            .unwrap_err();
        match err {
            FleetError::Exhausted { last, .. } => {
                assert!(last.contains("unresponsive"), "last error: {last}");
            }
            other => panic!("expected exhaustion via unresponsiveness, got {other}"),
        }
    }

    #[test]
    fn jobs_of_a_wedged_worker_are_requeued_onto_the_healthy_one() {
        let wedged = spawn_worker_with(ServeOptions {
            wedge_after: Some(0),
            ..Default::default()
        });
        let healthy = spawn_worker();
        let payloads: Vec<String> = (0..6).map(|i| format!("w{i}")).collect();
        let answers = Dispatcher::new(vec![
            WorkerEndpoint::tcp(wedged),
            WorkerEndpoint::tcp(healthy),
        ])
        .dispatch(&payloads, &|_| {})
        .unwrap();
        assert_eq!(
            answers,
            (0..6).map(|i| format!("echo:w{i}")).collect::<Vec<_>>()
        );
    }

    #[test]
    fn compact_payloads_ship_blobs_once_and_v1_workers_get_inline() {
        // A worker whose handler resolves `resolve:<hash>` out of its
        // scenario store — the fleet-level shape of scenario-by-hash
        // shipping.
        fn spawn_resolving_worker(options: ServeOptions) -> (String, Arc<ScenarioStore>) {
            let store = Arc::new(ScenarioStore::new());
            let handler_store = Arc::clone(&store);
            let serve_store = Arc::clone(&store);
            let worker = TcpWorker::bind("127.0.0.1:0").unwrap();
            let addr = worker.local_addr().unwrap().to_string();
            std::thread::spawn(move || {
                let handler = move |payload: &str| -> Result<String, String> {
                    match payload.strip_prefix("resolve:") {
                        Some(hash) => handler_store
                            .get(hash)
                            .map(|blob| format!("resolved:{blob}"))
                            .ok_or_else(|| format!("unknown blob {hash}")),
                        None => Ok(format!("inline:{payload}")),
                    }
                };
                worker.serve_forever_with_store(&handler, &options, &serve_store)
            });
            (addr, store)
        }

        let mut blobs = BlobSet::new();
        let hash = blobs.insert("the-masses");
        let jobs: Vec<JobPayload> = (0..3)
            .map(|i| {
                JobPayload::with_compact(
                    format!("inline-{i}:the-masses"),
                    format!("resolve:{hash}"),
                    vec![hash.clone()],
                )
            })
            .collect();

        // A v2 worker resolves the reference; the blob travels once.
        let (addr, store) = spawn_resolving_worker(ServeOptions::default());
        let answers = Dispatcher::new(vec![WorkerEndpoint::tcp(addr)])
            .dispatch_jobs(&jobs, &blobs, &|_| {}, &|_, _| Ok(()))
            .unwrap();
        assert_eq!(answers, vec!["resolved:the-masses".to_string(); 3]);
        assert_eq!(store.len(), 1, "one scenario-put for three jobs");

        // A legacy v1 worker never sees scenario messages or compact
        // payloads — it gets the inline encodings and still answers.
        let (addr, store) = spawn_resolving_worker(ServeOptions {
            legacy_v1: true,
            ..Default::default()
        });
        let answers = Dispatcher::new(vec![WorkerEndpoint::tcp(addr)])
            .dispatch_jobs(&jobs, &blobs, &|_| {}, &|_, _| Ok(()))
            .unwrap();
        assert_eq!(
            answers,
            (0..3)
                .map(|i| format!("inline:inline-{i}:the-masses"))
                .collect::<Vec<_>>()
        );
        assert!(store.is_empty(), "no blob ever shipped to a v1 worker");
    }

    #[test]
    fn a_dead_endpoint_does_not_lose_jobs() {
        let endpoints = vec![dead_endpoint(), WorkerEndpoint::tcp(spawn_worker())];
        let payloads: Vec<String> = (0..8).map(|i| format!("j{i}")).collect();
        let answers = Dispatcher::new(endpoints)
            .dispatch(&payloads, &|_| {})
            .unwrap();
        assert_eq!(answers[7], "echo:j7");
        assert_eq!(answers.len(), 8);
    }

    #[test]
    fn stragglers_are_redispatched_and_duplicates_deduped() {
        // Worker A gets stuck on the slow job; worker B drains the rest
        // of the queue and then re-dispatches the straggler.  The batch
        // must complete in well under the slow worker's sleep.
        let endpoints = vec![
            WorkerEndpoint::tcp(spawn_worker()),
            WorkerEndpoint::tcp(spawn_worker()),
        ];
        let mut payloads = vec!["slow-once:4000:tortoise".to_string()];
        payloads.extend((0..6).map(|i| format!("hare-{i}")));
        let completions = AtomicUsize::new(0);
        let start = std::time::Instant::now();
        let answers = Dispatcher::new(endpoints)
            .dispatch(&payloads, &|_| {
                completions.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(3500),
            "the straggling copy must not gate completion (took {:?})",
            start.elapsed()
        );
        assert_eq!(answers[0], "echo:tortoise");
        assert_eq!(completions.load(Ordering::Relaxed), payloads.len());
    }

    #[test]
    fn worker_reported_failures_are_permanent_and_lowest_index_wins() {
        let endpoints = vec![WorkerEndpoint::tcp(spawn_worker())];
        let payloads = vec![
            "fine".to_string(),
            "fail:second is bad".to_string(),
            "fail:third is bad".to_string(),
        ];
        let err = Dispatcher::new(endpoints)
            .dispatch(&payloads, &|_| {})
            .unwrap_err();
        match err {
            FleetError::Job { id, message } => {
                assert_eq!(id, 1);
                assert_eq!(message, "second is bad");
            }
            other => panic!("expected a worker-reported job failure, got {other}"),
        }
    }

    #[test]
    fn an_unreachable_pool_is_a_typed_error_not_a_hang() {
        let err = Dispatcher::new(vec![dead_endpoint(), dead_endpoint()])
            .dispatch(&["x".to_string()], &|_| {})
            .unwrap_err();
        assert!(matches!(err, FleetError::Exhausted { .. }), "got {err}");
        let err = Dispatcher::new(Vec::new())
            .dispatch(&["x".to_string()], &|_| {})
            .unwrap_err();
        assert!(matches!(err, FleetError::Connect { .. }));
    }

    #[test]
    fn rejected_answers_are_retried_like_transport_failures() {
        // The validator refuses the first answer it sees for job 0, so
        // the dispatcher must drop that connection and recompute the job
        // — the final answer set is still complete and correct.
        let endpoints = vec![
            WorkerEndpoint::tcp(spawn_worker()),
            WorkerEndpoint::tcp(spawn_worker()),
        ];
        let payloads: Vec<String> = (0..4).map(|i| format!("v{i}")).collect();
        let rejected_once = std::sync::atomic::AtomicBool::new(false);
        let answers = Dispatcher::new(endpoints)
            .dispatch_validated(&payloads, &|_| {}, &|id, _| {
                if id == 0 && !rejected_once.swap(true, Ordering::SeqCst) {
                    Err("first answer rejected".to_string())
                } else {
                    Ok(())
                }
            })
            .unwrap();
        assert_eq!(answers[0], "echo:v0");
        assert_eq!(answers.len(), 4);
        assert!(rejected_once.load(Ordering::SeqCst));

        // A validator that never accepts exhausts the job's attempts
        // into a typed error instead of settling a poisoned answer.
        let err = Dispatcher::new(vec![WorkerEndpoint::tcp(spawn_worker())])
            .dispatch_validated(&["x".to_string()], &|_| {}, &|_, _| Err("no".into()))
            .unwrap_err();
        assert!(matches!(err, FleetError::Exhausted { .. }), "got {err}");
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let answers = Dispatcher::new(vec![dead_endpoint()])
            .dispatch(&[], &|_| {})
            .unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn the_threaded_mode_still_answers_batches() {
        // The legacy scheduler stays available behind an explicit mode
        // switch (and the CRP_FLEET_DISPATCH env override).
        let endpoints = (0..3)
            .map(|_| WorkerEndpoint::tcp(spawn_worker()))
            .collect();
        let payloads: Vec<String> = (0..12).map(|i| format!("t{i}")).collect();
        let completions = AtomicUsize::new(0);
        let dispatcher = Dispatcher::new(endpoints).with_mode(DispatchMode::Threaded);
        assert_eq!(dispatcher.mode(), DispatchMode::Threaded);
        let answers = dispatcher
            .dispatch(&payloads, &|_| {
                completions.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(
            answers,
            (0..12).map(|i| format!("echo:t{i}")).collect::<Vec<_>>()
        );
        assert_eq!(completions.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn a_weighted_endpoint_holds_capacity_times_weight_in_flight() {
        // One capacity-1 worker at weight 4: the event loop may keep
        // 1 × 4 jobs in flight, and the worker executes them
        // concurrently — four 300ms sleeps overlap instead of queueing.
        let addr = spawn_worker();
        let payloads: Vec<String> = (0..4).map(|i| format!("sleep:300:w{i}")).collect();
        let dispatcher = Dispatcher::new_weighted(vec![(WorkerEndpoint::tcp(addr), 4)]);
        let start = Instant::now();
        let answers = dispatcher.dispatch(&payloads, &|_| {}).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(
            answers,
            (0..4).map(|i| format!("echo:w{i}")).collect::<Vec<_>>()
        );
        assert!(
            elapsed < Duration::from_millis(900),
            "weight-4 oversubscription should overlap the four sleeps (took {elapsed:?})"
        );
    }

    /// A worker that joins via the registration listener, answers
    /// exactly one job, then hangs up — an elastic *leave* with work
    /// possibly still in flight.
    fn join_answer_one_then_leave(addr: String) {
        use crate::frame::{read_frame, write_frame};
        use crate::protocol::Message;
        let stream = std::net::TcpStream::connect(addr).expect("dispatcher listener is up");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("sockets clone"));
        let mut writer = stream;
        write_frame(
            &mut writer,
            &Message::Hello {
                version: crate::protocol::PROTOCOL_VERSION,
                capacity: 2,
            }
            .encode(),
        )
        .expect("hello goes out");
        while let Ok(Some(frame)) = read_frame(&mut reader) {
            match Message::decode(&frame) {
                Ok(Message::Job { id, payload, .. }) => {
                    let _ = write_frame(
                        &mut writer,
                        &Message::Done {
                            id,
                            payload: format!("echo:{payload}"),
                        }
                        .encode(),
                    );
                    // Hang up with the pipeline possibly non-empty: the
                    // dispatcher must requeue whatever was outstanding.
                    return;
                }
                Ok(Message::Ping { id }) => {
                    let _ = write_frame(&mut writer, &Message::Pong { id }.encode());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn workers_join_elastically_and_a_leaver_is_requeued() {
        // No fixed endpoints at all: the whole pool is elastic.
        let dispatcher = Dispatcher::new(Vec::new());
        let addr = dispatcher
            .listen_for_workers("127.0.0.1:0")
            .unwrap()
            .to_string();
        // A capacity-2 worker joins, answers one job and leaves — its
        // still-outstanding job must be requeued, not lost.
        {
            let addr = addr.clone();
            std::thread::spawn(move || join_answer_one_then_leave(addr));
        }
        // A healthy worker joins 200ms into the batch and drains it.
        {
            let addr = addr.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(200));
                let _ = crate::tcp::join_fleet(&addr, &scripted, &ServeOptions::default());
            });
        }
        let payloads: Vec<String> = (0..8).map(|i| format!("e{i}")).collect();
        let completions = AtomicUsize::new(0);
        let answers = dispatcher
            .dispatch(&payloads, &|_| {
                completions.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(
            answers,
            (0..8).map(|i| format!("echo:e{i}")).collect::<Vec<_>>()
        );
        assert_eq!(completions.load(Ordering::Relaxed), 8);
    }

    /// A hand-rolled worker whose hello advertises capacity 0 — the
    /// clamp-vs-error policy split lives on the dispatcher side, so the
    /// stock [`ServeOptions`] worker (which clamps at write time) cannot
    /// produce it.
    fn spawn_capacity_zero_worker() -> String {
        use crate::frame::{read_frame, write_frame};
        use crate::protocol::Message;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut reader =
                        std::io::BufReader::new(stream.try_clone().expect("sockets clone"));
                    let mut writer = stream;
                    if write_frame(
                        &mut writer,
                        &Message::Hello {
                            version: crate::protocol::PROTOCOL_VERSION,
                            capacity: 0,
                        }
                        .encode(),
                    )
                    .is_err()
                    {
                        return;
                    }
                    while let Ok(Some(frame)) = read_frame(&mut reader) {
                        match Message::decode(&frame) {
                            Ok(Message::Job { id, payload, .. }) => {
                                let _ = write_frame(
                                    &mut writer,
                                    &Message::Done {
                                        id,
                                        payload: format!("echo:{payload}"),
                                    }
                                    .encode(),
                                );
                            }
                            Ok(Message::Ping { id }) => {
                                let _ = write_frame(&mut writer, &Message::Pong { id }.encode());
                            }
                            Ok(Message::Shutdown) | Err(_) => return,
                            _ => {}
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn worker_metrics_merge_a_rollup_and_flag_v1_workers_unavailable() {
        // Two v3 workers plus one legacy v1 worker.  After a batch, a
        // metrics pull must report the two v3 snapshots (merged into
        // the rollup) and flag the v1 worker unavailable — without
        // disturbing the warm connections.
        let v3a = spawn_worker();
        let v3b = spawn_worker();
        let v1 = spawn_worker_with(ServeOptions {
            legacy_v1: true,
            ..Default::default()
        });
        // A generous pull timeout: under a fully loaded test host a
        // worker thread can legitimately stall past the 2s default,
        // and this test asserts on *protocol* availability, not
        // scheduling latency.
        let tuning = DispatchTuning {
            ping_timeout: Duration::from_secs(30),
            ..Default::default()
        };
        let dispatcher = Dispatcher::new(vec![
            WorkerEndpoint::tcp(v3a),
            WorkerEndpoint::tcp(v3b),
            WorkerEndpoint::tcp(v1),
        ])
        .with_tuning(tuning);
        let payloads: Vec<String> = (0..9).map(|i| format!("m{i}")).collect();
        dispatcher.dispatch(&payloads, &|_| {}).unwrap();
        // A pull reports whichever connections are warm right now; on a
        // loaded host a batch can finish before every handshake does,
        // leaving a worker legitimately unavailable.  Re-dispatch until
        // both v3 workers are warm — what stays pinned is that the v1
        // worker NEVER reports and the v3 workers eventually both do.
        let mut metrics = dispatcher.worker_metrics();
        for round in 0..50 {
            if metrics.reporting() >= 2 {
                break;
            }
            let warmup: Vec<String> = (0..3).map(|i| format!("warm{round}-{i}")).collect();
            dispatcher.dispatch(&warmup, &|_| {}).unwrap();
            metrics = dispatcher.worker_metrics();
        }
        assert_eq!(metrics.workers.len(), 3, "every endpoint is listed");
        assert_eq!(metrics.reporting(), 2, "both v3 workers ship snapshots");
        let rendered = metrics.render();
        assert!(
            rendered.starts_with("fleet metrics: 2 reporting, 1 unavailable\n"),
            "render: {rendered}"
        );
        assert!(
            rendered.contains("metrics: unavailable"),
            "the v1 worker renders as unavailable: {rendered}"
        );
        // The pull is repeatable and the pool still answers afterwards.
        assert_eq!(dispatcher.worker_metrics().reporting(), 2);
        let again = dispatcher
            .dispatch(&["after".to_string()], &|_| {})
            .unwrap();
        assert_eq!(again, vec!["echo:after".to_string()]);
    }

    #[test]
    fn capacity_zero_hellos_clamp_leniently_and_exhaust_strictly() {
        let addr = spawn_capacity_zero_worker();
        // Lenient (the default): warn once, clamp to capacity 1, and
        // the batch completes.
        let answers = Dispatcher::new(vec![WorkerEndpoint::tcp(addr.clone())])
            .dispatch(&["a".to_string()], &|_| {})
            .unwrap();
        assert_eq!(answers, vec!["echo:a".to_string()]);
        // Strict: the hello is a typed handshake failure, the endpoint
        // never becomes usable, and the batch exhausts with the
        // capacity-0 diagnosis as its last error.
        let strict = DispatchTuning {
            strict_hello_capacity: true,
            ..Default::default()
        };
        let err = Dispatcher::new(vec![WorkerEndpoint::tcp(addr)])
            .with_tuning(strict)
            .dispatch(&["a".to_string()], &|_| {})
            .unwrap_err();
        match err {
            FleetError::Exhausted { last, .. } => {
                assert!(last.contains("capacity 0"), "last error: {last}");
            }
            other => panic!("expected exhaustion via the strict hello policy, got {other}"),
        }
    }
}
