//! The TCP worker transport: a listening socket serving one fleet
//! conversation per accepted connection.
//!
//! This is the loopback/remote half of the subsystem: start
//! `crp_experiments worker --listen host:port` on any machine, point a
//! dispatcher at `host:port` via the fleet manifest, and the same framed
//! protocol that runs over subprocess stdio runs over the socket.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

use crate::worker::{serve_with_store, JobHandler, ScenarioStore, ServeOptions};
use crate::FleetError;

/// Dials a dispatcher's worker-registration listener (see
/// [`crate::Dispatcher::listen_for_workers`]) and serves jobs over the
/// connection until the dispatcher says shutdown or hangs up — the
/// elastic-membership worker half.  Because a worker speaks hello first,
/// the dialed-out conversation is byte-identical to an accepted one.
///
/// Returns the number of jobs served once the dispatcher disconnects.
///
/// # Errors
///
/// [`FleetError::Connect`] when the dispatcher cannot be reached; any
/// transport error the serve loop hits afterwards.
pub fn join_fleet(
    addr: impl ToSocketAddrs + std::fmt::Debug,
    handler: JobHandler<'_>,
    options: &ServeOptions,
) -> Result<usize, FleetError> {
    let store = ScenarioStore::new();
    join_fleet_with_store(addr, handler, options, &store)
}

/// [`join_fleet`] with a caller-owned [`ScenarioStore`], so a worker
/// that re-joins keeps the blobs it already received.
///
/// # Errors
///
/// As [`join_fleet`].
pub fn join_fleet_with_store(
    addr: impl ToSocketAddrs + std::fmt::Debug,
    handler: JobHandler<'_>,
    options: &ServeOptions,
    store: &ScenarioStore,
) -> Result<usize, FleetError> {
    let stream = TcpStream::connect(&addr).map_err(|e| FleetError::Connect {
        endpoint: format!("dispatcher {addr:?}"),
        reason: e.to_string(),
    })?;
    stream.set_nodelay(true).ok();
    let mut reader = std::io::BufReader::new(stream.try_clone().map_err(FleetError::from)?);
    let mut writer = stream;
    serve_with_store(&mut reader, &mut writer, handler, options, store)
}

/// A bound TCP worker: accepts dispatcher connections and serves each on
/// its own thread (several dispatchers — or several connections of one
/// dispatcher — can be in flight at once).
pub struct TcpWorker {
    listener: TcpListener,
}

impl TcpWorker {
    /// Binds the listener.  `addr` may use port 0 to let the OS pick
    /// (read the result back with [`TcpWorker::local_addr`]).
    ///
    /// # Errors
    ///
    /// [`FleetError::Connect`] when the address cannot be resolved or
    /// bound.
    pub fn bind(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<Self, FleetError> {
        let listener = TcpListener::bind(&addr).map_err(|e| FleetError::Connect {
            endpoint: format!("listener {addr:?}"),
            reason: e.to_string(),
        })?;
        Ok(Self { listener })
    }

    /// The actually bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, FleetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts and serves connections until the process is killed, with
    /// one process-wide [`ScenarioStore`] shared by every connection —
    /// a blob shipped by one dispatcher run is still present when the
    /// next run reconnects and asks via `scenario-have`.  Per-connection
    /// errors are reported on stderr and do not stop the accept loop —
    /// one misbehaving dispatcher must not take the worker down for
    /// everyone else.
    pub fn serve_forever_with_store(
        &self,
        handler: JobHandler<'_>,
        options: &ServeOptions,
        store: &ScenarioStore,
    ) -> ! {
        std::thread::scope(|scope| loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    scope.spawn(move || {
                        stream.set_nodelay(true).ok();
                        let mut reader = std::io::BufReader::new(
                            stream.try_clone().expect("accepted sockets clone"),
                        );
                        let mut writer = stream;
                        match serve_with_store(&mut reader, &mut writer, handler, options, store) {
                            Ok(served) => {
                                eprintln!("fleet worker: {peer} disconnected after {served} jobs");
                            }
                            Err(err) => eprintln!("fleet worker: connection {peer}: {err}"),
                        }
                    });
                }
                Err(err) => eprintln!("fleet worker: accept failed: {err}"),
            }
        })
    }

    /// [`TcpWorker::serve_forever_with_store`] with a fresh process-wide
    /// store.
    pub fn serve_forever(&self, handler: JobHandler<'_>, options: &ServeOptions) -> ! {
        let store = ScenarioStore::new();
        self.serve_forever_with_store(handler, options, &store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{CallOutcome, WorkerEndpoint};

    fn echo(payload: &str) -> Result<String, String> {
        Ok(format!("echo:{payload}"))
    }

    /// Binds a loopback worker on an ephemeral port and serves it from a
    /// detached thread for the rest of the test process's life.
    pub(crate) fn spawn_echo_worker() -> SocketAddr {
        let worker = TcpWorker::bind("127.0.0.1:0").unwrap();
        let addr = worker.local_addr().unwrap();
        std::thread::spawn(move || worker.serve_forever(&echo, &ServeOptions::default()));
        addr
    }

    #[test]
    fn tcp_round_trip_through_a_real_socket() {
        let addr = spawn_echo_worker();
        let endpoint = WorkerEndpoint::tcp(addr.to_string());
        let mut connection = endpoint.connect().unwrap();
        for id in 0..3u64 {
            match connection
                .call(id, &format!("job-{id}"), &|| false)
                .unwrap()
            {
                CallOutcome::Done(payload) => assert_eq!(payload, format!("echo:job-{id}")),
                _ => panic!("echo worker must answer done"),
            }
        }
    }

    #[test]
    fn two_connections_are_served_concurrently() {
        let addr = spawn_echo_worker();
        let endpoint = WorkerEndpoint::tcp(addr.to_string());
        let mut a = endpoint.connect().unwrap();
        let mut b = endpoint.connect().unwrap();
        // Interleave calls across both live connections.
        assert!(matches!(
            a.call(1, "x", &|| false).unwrap(),
            CallOutcome::Done(_)
        ));
        assert!(matches!(
            b.call(2, "y", &|| false).unwrap(),
            CallOutcome::Done(_)
        ));
        assert!(matches!(
            a.call(3, "z", &|| false).unwrap(),
            CallOutcome::Done(_)
        ));
    }

    #[test]
    fn dialing_a_dead_port_is_a_typed_connect_error() {
        // Bind-then-drop guarantees the port is closed.
        let port = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        let endpoint = WorkerEndpoint::tcp(format!("127.0.0.1:{port}"));
        assert!(matches!(
            endpoint.connect(),
            Err(FleetError::Connect { .. })
        ));
    }
}
