//! The messages inside fleet frames.
//!
//! Every frame payload is UTF-8 text: a head line naming the message
//! (and carrying its job id where applicable), then an optional body.
//! Bodies are opaque to this crate — `crp-sim` puts its `ShardSpec` and
//! `TrialAccumulator` wire text there unchanged.
//!
//! The conversation on one connection:
//!
//! ```text
//! worker     -> dispatcher   hello v3 capacity 4        (handshake)
//! dispatcher -> worker       scenario-have ab12..       (v2: blob query)
//! worker     -> dispatcher   scenario-state ab12.. no
//! dispatcher -> worker       scenario-put ab12..\n<blob> (v2: ship once)
//! dispatcher -> worker       job 17 span cd34..\n<payload> (v3: trace span rides along)
//! dispatcher -> worker       job 18\n<payload>          (pipelined up to the capacity)
//! worker     -> dispatcher   done 17\n<payload>         (or: failed 17\n<message>)
//! dispatcher -> worker       ping 99
//! worker     -> dispatcher   pong 99                    (health check, answered mid-job)
//! dispatcher -> worker       metrics 7                  (v3: registry pull)
//! worker     -> dispatcher   metrics-report 7\n<snapshot>
//! worker     -> dispatcher   done 18\n<payload>
//! dispatcher -> worker       shutdown                   (or just closes the stream)
//! ```
//!
//! Protocol v2 adds the `scenario-put` / `scenario-have` /
//! `scenario-state` blob messages (content-addressed payload shipping:
//! a scenario's masses travel once per worker and later jobs reference
//! them by hash).  Protocol v3 adds the `metrics` / `metrics-report`
//! registry pull and the optional `span`/`parent` trace-context tokens
//! on `job` head lines.  Older workers never receive any of them — the
//! dispatcher negotiates the version from the hello, falls back to
//! fully inline unstamped payloads, and reports a pre-v3 worker's
//! metrics as unavailable — so old workers keep interoperating
//! unchanged.

use crate::hash::is_content_hash;
use crate::FleetError;

/// Version of the fleet wire protocol; sent in the [`Message::Hello`]
/// handshake.  The dispatcher accepts every version in
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] and restricts the
/// conversation to what the worker's version understands; anything
/// outside the range is rejected with a typed error instead of
/// misparsing frames.
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest worker protocol version the dispatcher still speaks.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// The trace context a v3 `job` head line carries: the job's
/// deterministic span id plus its parent span, both derived from
/// content hashes on the dispatching side (see `crp_obs::span_from_hash`),
/// never from randomness.  Workers stamp both onto the trace events
/// they emit while executing the job, which is what lets `trace-join`
/// correlate dispatcher and worker files causally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpan {
    /// The job's span id (16 lowercase hex digits).
    pub id: String,
    /// The enclosing span (a cell, on the serve path), when known.
    pub parent: Option<String>,
}

/// One fleet protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Worker → dispatcher, first message on every connection.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u32,
        /// How many jobs the worker is willing to run concurrently on
        /// this connection (currently always 1; reserved for pipelining).
        capacity: usize,
    },
    /// Dispatcher → worker: execute this payload.
    Job {
        /// Dispatcher-chosen id echoed back in the answer.
        id: u64,
        /// Opaque job description.
        payload: String,
        /// The job's trace context (v3; absent on unstamped jobs and on
        /// connections negotiated below v3).
        span: Option<JobSpan>,
    },
    /// Worker → dispatcher: the job's successful answer.
    Done {
        /// Echo of the job id.
        id: u64,
        /// Opaque answer.
        payload: String,
    },
    /// Worker → dispatcher: the job failed deterministically (the payload
    /// itself is bad; re-dispatching cannot help).
    Failed {
        /// Echo of the job id.
        id: u64,
        /// Human-readable failure.
        message: String,
    },
    /// Dispatcher → worker health check.
    Ping {
        /// Echoed in the matching [`Message::Pong`].
        id: u64,
    },
    /// Worker → dispatcher health-check answer.
    Pong {
        /// Echo of the ping id.
        id: u64,
    },
    /// Dispatcher → worker (v2): store this content-addressed blob so
    /// later job payloads can reference it by hash.  Fire-and-forget —
    /// the worker verifies the hash and answers nothing.
    ScenarioPut {
        /// The blob's [`crate::hash::content_hash`].
        hash: String,
        /// The opaque blob bytes (UTF-8 text in practice).
        blob: String,
    },
    /// Dispatcher → worker (v2): does the worker already hold this blob?
    /// (A TCP worker's store outlives connections, so a reconnecting
    /// dispatcher asks before re-shipping.)
    ScenarioHave {
        /// The queried content hash.
        hash: String,
    },
    /// Worker → dispatcher (v2): the answer to [`Message::ScenarioHave`].
    ScenarioState {
        /// Echo of the queried hash.
        hash: String,
        /// True when the worker holds the blob.
        present: bool,
    },
    /// Dispatcher → worker (v3): report the worker's process-wide
    /// metrics registry.
    Metrics {
        /// Echoed in the matching [`Message::MetricsReport`].
        id: u64,
    },
    /// Worker → dispatcher (v3): the answer to [`Message::Metrics`] — a
    /// `MetricsSnapshot` in its canonical wire encoding.
    MetricsReport {
        /// Echo of the request id.
        id: u64,
        /// The snapshot wire body (`crp_obs::MetricsSnapshot::encode`).
        body: String,
    },
    /// Dispatcher → worker: finish up and close the connection.
    Shutdown,
}

impl Message {
    /// Encodes the message into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Hello { version, capacity } => {
                format!("hello v{version} capacity {capacity}")
            }
            Message::Job { id, payload, span } => {
                let mut head = format!("job {id}");
                if let Some(span) = span {
                    head.push_str(" span ");
                    head.push_str(&span.id);
                    if let Some(parent) = &span.parent {
                        head.push_str(" parent ");
                        head.push_str(parent);
                    }
                }
                format!("{head}\n{payload}")
            }
            Message::Done { id, payload } => format!("done {id}\n{payload}"),
            Message::Failed { id, message } => format!("failed {id}\n{message}"),
            Message::Ping { id } => format!("ping {id}"),
            Message::Pong { id } => format!("pong {id}"),
            Message::ScenarioPut { hash, blob } => format!("scenario-put {hash}\n{blob}"),
            Message::ScenarioHave { hash } => format!("scenario-have {hash}"),
            Message::ScenarioState { hash, present } => {
                format!(
                    "scenario-state {hash} {}",
                    if *present { "yes" } else { "no" }
                )
            }
            Message::Metrics { id } => format!("metrics {id}"),
            Message::MetricsReport { id, body } => format!("metrics-report {id}\n{body}"),
            Message::Shutdown => "shutdown".to_string(),
        }
        .into_bytes()
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`FleetError::Malformed`] for non-UTF-8 payloads, unknown message
    /// names, and missing or unparsable ids.
    pub fn decode(bytes: &[u8]) -> Result<Self, FleetError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| FleetError::Malformed(format!("message is not UTF-8: {e}")))?;
        let (head, body) = match text.split_once('\n') {
            Some((head, body)) => (head, body),
            None => (text, ""),
        };
        let mut tokens = head.split_ascii_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| FleetError::Malformed("empty message".to_string()))?;
        let mut id = |label: &str| -> Result<u64, FleetError> {
            tokens
                .next()
                .ok_or_else(|| FleetError::Malformed(format!("{label} is missing its id")))?
                .parse::<u64>()
                .map_err(|e| FleetError::Malformed(format!("bad {label} id: {e}")))
        };
        match name {
            "hello" => {
                let version = tokens
                    .next()
                    .and_then(|token| token.strip_prefix('v'))
                    .and_then(|token| token.parse::<u32>().ok())
                    .ok_or_else(|| {
                        FleetError::Malformed(format!("bad hello version in {head:?}"))
                    })?;
                let capacity = match (tokens.next(), tokens.next()) {
                    (Some("capacity"), Some(token)) => token
                        .parse::<usize>()
                        .map_err(|e| FleetError::Malformed(format!("bad hello capacity: {e}")))?,
                    (None, _) => 1,
                    _ => {
                        return Err(FleetError::Malformed(format!(
                            "unexpected hello trailer in {head:?}"
                        )))
                    }
                };
                Ok(Message::Hello { version, capacity })
            }
            "job" => {
                let id = id("job")?;
                let span = match tokens.next() {
                    None => None,
                    Some("span") => {
                        let span_id = span_token(&mut tokens, "job span")?;
                        let parent = match tokens.next() {
                            None => None,
                            Some("parent") => Some(span_token(&mut tokens, "job parent")?),
                            Some(other) => {
                                return Err(FleetError::Malformed(format!(
                                    "unexpected job trailer token {other:?}"
                                )))
                            }
                        };
                        Some(JobSpan {
                            id: span_id,
                            parent,
                        })
                    }
                    Some(other) => {
                        return Err(FleetError::Malformed(format!(
                            "unexpected job trailer token {other:?}"
                        )))
                    }
                };
                Ok(Message::Job {
                    id,
                    payload: body.to_string(),
                    span,
                })
            }
            "done" => Ok(Message::Done {
                id: id("done")?,
                payload: body.to_string(),
            }),
            "failed" => Ok(Message::Failed {
                id: id("failed")?,
                message: body.to_string(),
            }),
            "ping" => Ok(Message::Ping { id: id("ping")? }),
            "pong" => Ok(Message::Pong { id: id("pong")? }),
            "scenario-put" => Ok(Message::ScenarioPut {
                hash: hash_token(&mut tokens, "scenario-put")?,
                blob: body.to_string(),
            }),
            "scenario-have" => Ok(Message::ScenarioHave {
                hash: hash_token(&mut tokens, "scenario-have")?,
            }),
            "scenario-state" => {
                let hash = hash_token(&mut tokens, "scenario-state")?;
                let present = match tokens.next() {
                    Some("yes") => true,
                    Some("no") => false,
                    other => {
                        return Err(FleetError::Malformed(format!(
                            "bad scenario-state flag {other:?}"
                        )))
                    }
                };
                Ok(Message::ScenarioState { hash, present })
            }
            "metrics" => Ok(Message::Metrics { id: id("metrics")? }),
            "metrics-report" => Ok(Message::MetricsReport {
                id: id("metrics-report")?,
                body: body.to_string(),
            }),
            "shutdown" => Ok(Message::Shutdown),
            other => Err(FleetError::Malformed(format!("unknown message {other:?}"))),
        }
    }
}

/// Pulls a span-id token off a head line, rejecting anything that is
/// not 16 lowercase hex digits.
fn span_token(
    tokens: &mut std::str::SplitAsciiWhitespace<'_>,
    label: &str,
) -> Result<String, FleetError> {
    let token = tokens
        .next()
        .ok_or_else(|| FleetError::Malformed(format!("{label} is missing its span id")))?;
    if !crp_obs::is_span_id(token) {
        return Err(FleetError::Malformed(format!(
            "{label} id {token:?} is not a canonical span id"
        )));
    }
    Ok(token.to_string())
}

/// Pulls a content-hash token off a head line, rejecting anything that
/// is not a canonical digest.
fn hash_token(
    tokens: &mut std::str::SplitAsciiWhitespace<'_>,
    label: &str,
) -> Result<String, FleetError> {
    let token = tokens
        .next()
        .ok_or_else(|| FleetError::Malformed(format!("{label} is missing its hash")))?;
    if !is_content_hash(token) {
        return Err(FleetError::Malformed(format!(
            "{label} hash {token:?} is not a canonical content hash"
        )));
    }
    Ok(token.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip() {
        let messages = [
            Message::Hello {
                version: PROTOCOL_VERSION,
                capacity: 4,
            },
            Message::Job {
                id: 17,
                payload: "crp-shard-spec v1\nprotocol decay\nend\n".to_string(),
                span: None,
            },
            Message::Job {
                id: 21,
                payload: "crp-shard-spec v1\nprotocol decay\nend\n".to_string(),
                span: Some(JobSpan {
                    id: "ab12cd34ef56ab78".to_string(),
                    parent: None,
                }),
            },
            Message::Job {
                id: 22,
                payload: "payload".to_string(),
                span: Some(JobSpan {
                    id: "ab12cd34ef56ab78".to_string(),
                    parent: Some("0011223344556677".to_string()),
                }),
            },
            Message::Done {
                id: 17,
                payload: "crp-shard-accumulator v1\ntrials 3\nend\n".to_string(),
            },
            Message::Failed {
                id: 9,
                message: "unknown protocol \"nope\"".to_string(),
            },
            Message::Ping { id: 1 },
            Message::Pong { id: 1 },
            Message::ScenarioPut {
                hash: crate::hash::content_hash(b"masses"),
                blob: "sampled 3fe0\nwith a second line".to_string(),
            },
            Message::ScenarioHave {
                hash: crate::hash::content_hash(b"masses"),
            },
            Message::ScenarioState {
                hash: crate::hash::content_hash(b"masses"),
                present: true,
            },
            Message::ScenarioState {
                hash: crate::hash::content_hash(b"other"),
                present: false,
            },
            Message::Metrics { id: 7 },
            Message::MetricsReport {
                id: 7,
                body: "crp-metrics-snapshot v1\ncounters 0\ngauges 0\nhistograms 0\nend\n"
                    .to_string(),
            },
            Message::Shutdown,
        ];
        for message in messages {
            assert_eq!(Message::decode(&message.encode()).unwrap(), message);
        }
    }

    #[test]
    fn hello_without_capacity_defaults_to_one() {
        let hello = Message::decode(b"hello v1").unwrap();
        assert_eq!(
            hello,
            Message::Hello {
                version: 1,
                capacity: 1
            }
        );
    }

    #[test]
    fn malformed_messages_are_rejected() {
        for bad in [
            b"".as_slice(),
            b"job",
            b"job x\npayload",
            b"done",
            b"hello",
            b"hello 1",
            b"hello vx",
            b"hello v1 cap 2",
            b"hello v1 capacity x",
            b"warp 9",
            b"job 1 span\npayload",
            b"job 1 span SHOUTYHEXDIGITS\npayload",
            b"job 1 span ab12cd34ef56ab78 parent\npayload",
            b"job 1 span ab12cd34ef56ab78 parent nope\npayload",
            b"job 1 parent ab12cd34ef56ab78\npayload",
            b"job 1 span ab12cd34ef56ab78 extra\npayload",
            b"metrics",
            b"metrics-report",
            b"scenario-put",
            b"scenario-put nothash\nblob",
            b"scenario-have short",
            b"scenario-state 0000000000000000000000000000000000000000000000000000000000000000 maybe",
            &[0xFF, 0xFE],
        ] {
            assert!(
                matches!(Message::decode(bad), Err(FleetError::Malformed(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn bodies_preserve_embedded_newlines() {
        let payload = "a\nb\n\nc";
        let encoded = Message::Job {
            id: 0,
            payload: payload.to_string(),
            span: None,
        }
        .encode();
        match Message::decode(&encoded).unwrap() {
            Message::Job { payload: got, .. } => assert_eq!(got, payload),
            other => panic!("decoded {other:?}"),
        }
    }
}
