//! Fleet dispatch: long-lived workers, a straggler-retrying dispatcher,
//! and a framed wire protocol over stdio or TCP.
//!
//! The crate is deliberately *payload-agnostic*: jobs are opaque strings
//! shipped to workers, answers are opaque strings shipped back, and a
//! worker is anything that serves the framed protocol with a
//! `Fn(&str) -> Result<String, String>` handler.  `crp-sim` layers its
//! `ShardSpec` / `TrialAccumulator` codec on top to get a remote shard
//! backend; nothing here knows about shards, which keeps the dependency
//! arrow pointing one way (`crp-sim` → `crp-fleet`) and lets the
//! `crp_experiments` binary host the worker mode.
//!
//! The layers, bottom up:
//!
//! * [`frame`] — length-prefixed framing over any byte stream (a header
//!   line carrying the payload size, then exactly that many bytes), with
//!   truncation and oversize rejection.
//! * [`hash`] — content addressing: a self-contained SHA-256 and the
//!   canonical hex digest shared by the blob protocol, the dispatcher,
//!   and the `crp-serve` result cache.
//! * [`protocol`] — the messages inside frames: a versioned
//!   [`protocol::Message::Hello`] handshake (v1 peers are negotiated
//!   down to, v2 adds the blob messages), `job` / `done` / `failed`
//!   requests and answers keyed by job id, a `ping` / `pong` health
//!   check, and the content-addressed `scenario-put` / `scenario-have` /
//!   `scenario-state` blob shipping.
//! * [`worker`] — the long-lived worker loop: [`worker::serve`] answers a
//!   stream of jobs over any `(Read, Write)` pair — N jobs per process
//!   instead of one, executed concurrently so pings are answered even
//!   mid-job — with a [`worker::ScenarioStore`] of received blobs and
//!   [`worker::ServeOptions`] carrying the capacity/version knobs and
//!   the fault injection the failure tests use.
//!   [`worker::serve_stdio`] binds it to a subprocess's stdio;
//!   [`tcp::TcpWorker`] binds it to a listening socket with one
//!   process-wide blob store shared across connections.
//! * [`endpoint`] — [`endpoint::WorkerEndpoint`]: where a worker lives
//!   (a local subprocess to spawn, or a `host:port` to dial) and the
//!   handshake-checked [connection](endpoint::WorkerEndpoint::describe)
//!   lifecycle — version/capacity negotiation, pipelined send/read,
//!   ping-based unresponsiveness detection — plus the
//!   [`endpoint::FleetManifest`] (`local:4,host:9000`) the `CRP_FLEET`
//!   environment variable and `--fleet` flag carry.
//! * [`chaos`] — [`chaos::ChaosPlan`]: typed, declarative schedules of
//!   the fault injections above (`0:die@2,1:wedge@5`), compiled down
//!   onto the spawn environment of a pool's local endpoints so fuzz
//!   campaigns and sweeps can declare — and minimise — infrastructure
//!   faults like any other input.
//! * [`dispatch`] — [`dispatch::Dispatcher`]: schedules a batch of
//!   [`dispatch::JobPayload`]s over a pool of endpoints with
//!   work-stealing semantics (idle workers claim the next unassigned
//!   job), keeps up to the advertised hello capacity in flight per
//!   connection, ships [`dispatch::BlobSet`] blobs once per v2 worker,
//!   **re-dispatches the outstanding jobs of dead, wedged or straggling
//!   workers**, deduplicates completions by job id, and keeps
//!   connections (and their spawned workers) warm across batches.  By
//!   default the batch runs on a single-threaded readiness event loop
//!   multiplexing every endpoint over non-blocking I/O
//!   ([`dispatch::DispatchMode::EventLoop`]) with per-endpoint capacity
//!   weights and elastic membership
//!   ([`dispatch::Dispatcher::listen_for_workers`]); the legacy
//!   thread-per-endpoint scheduler survives as
//!   [`dispatch::DispatchMode::Threaded`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod dispatch;
pub mod endpoint;
pub(crate) mod event_loop;
pub mod frame;
pub mod hash;
pub mod obs;
pub mod protocol;
pub mod tcp;
pub mod worker;

use std::error::Error;
use std::fmt;

pub use chaos::{ChaosEvent, ChaosPlan, FaultKind};
pub use dispatch::{BlobSet, DispatchMode, Dispatcher, JobPayload};
pub use endpoint::{DispatchTuning, FleetEntry, FleetManifest, WorkerEndpoint};
pub use frame::{read_frame, write_frame, MAX_FRAME_BYTES};
pub use hash::{content_hash, is_content_hash};
pub use obs::{FleetMetrics, FleetSnapshot, WorkerHealth, WorkerMetrics};
pub use protocol::{JobSpan, Message, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
pub use tcp::{join_fleet, join_fleet_with_store, TcpWorker};
pub use worker::{
    serve, serve_stdio, serve_stdio_with_store, serve_with_store, JobHandler, ScenarioStore,
    ServeOptions,
};

/// Errors produced by the fleet transport and dispatcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// An I/O operation on a transport failed.
    Io(String),
    /// The peer closed the stream mid-conversation.
    Closed,
    /// A frame or message was malformed (truncated, oversized, bad
    /// header, unknown message, wrong job id).
    Malformed(String),
    /// The handshake failed (missing hello, protocol version mismatch).
    Handshake(String),
    /// A fleet manifest entry could not be parsed.
    Manifest {
        /// The offending manifest entry.
        entry: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A polling connection went silent: no answer, and a health-check
    /// ping got no pong within its deadline.  The worker is presumed
    /// wedged and its in-flight jobs are re-dispatched.
    Unresponsive {
        /// Milliseconds of silence before the worker was given up on.
        silent_ms: u64,
    },
    /// A worker endpoint could not be reached (spawn or dial failure).
    Connect {
        /// Human-readable endpoint description.
        endpoint: String,
        /// The underlying failure.
        reason: String,
    },
    /// A worker answered a job with a deterministic failure (the job
    /// itself is bad, so re-dispatching it cannot help).
    Job {
        /// The failing job id.
        id: u64,
        /// The worker-reported failure message.
        message: String,
    },
    /// A job could not be completed on any worker.
    Exhausted {
        /// The job id that ran out of workers.
        id: u64,
        /// Attempts made before giving up.
        attempts: usize,
        /// The last transport or connect failure observed.
        last: String,
    },
    /// A chaos-plan entry was malformed or could not be applied to the
    /// pool.
    Chaos {
        /// The offending plan entry (canonical `WORKER:FAULT@JOBS` form).
        entry: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A fleet environment variable carried a value that cannot be used
    /// (strict parsing; the lenient [`ServeOptions::from_env`] compat
    /// path ignores such values instead).
    Env {
        /// The environment variable name.
        var: String,
        /// The offending value.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io(what) => write!(f, "fleet transport I/O error: {what}"),
            FleetError::Closed => write!(f, "the peer closed the fleet stream"),
            FleetError::Malformed(what) => write!(f, "malformed fleet frame: {what}"),
            FleetError::Handshake(what) => write!(f, "fleet handshake failed: {what}"),
            FleetError::Manifest { entry, reason } => {
                write!(f, "invalid fleet manifest entry {entry:?}: {reason}")
            }
            FleetError::Unresponsive { silent_ms } => write!(
                f,
                "fleet worker unresponsive: no frame or pong for {silent_ms}ms"
            ),
            FleetError::Connect { endpoint, reason } => {
                write!(f, "cannot reach fleet worker {endpoint}: {reason}")
            }
            FleetError::Job { id, message } => {
                write!(f, "fleet job {id} failed on the worker: {message}")
            }
            FleetError::Exhausted { id, attempts, last } => write!(
                f,
                "fleet job {id} failed on every worker ({attempts} attempts; last error: {last})"
            ),
            FleetError::Chaos { entry, reason } => {
                write!(f, "invalid chaos-plan entry {entry:?}: {reason}")
            }
            FleetError::Env { var, value, reason } => {
                write!(f, "invalid {var} value {value:?}: {reason}")
            }
        }
    }
}

impl Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(err: std::io::Error) -> Self {
        FleetError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_the_failure() {
        assert!(FleetError::Closed.to_string().contains("closed"));
        assert!(FleetError::Io("broken pipe".into())
            .to_string()
            .contains("broken pipe"));
        assert!(FleetError::Malformed("bad header".into())
            .to_string()
            .contains("bad header"));
        assert!(FleetError::Handshake("version 9".into())
            .to_string()
            .contains("version 9"));
        let err = FleetError::Manifest {
            entry: "local:x".into(),
            reason: "bad count".into(),
        };
        assert!(err.to_string().contains("local:x"));
        let err = FleetError::Exhausted {
            id: 3,
            attempts: 4,
            last: "connection refused".into(),
        };
        assert!(err.to_string().contains("connection refused"));
        let err: FleetError = std::io::Error::other("oops").into();
        assert!(matches!(err, FleetError::Io(_)));
        let err = FleetError::Chaos {
            entry: "0:die@x".into(),
            reason: "job count must be a non-negative integer".into(),
        };
        assert!(err.to_string().contains("0:die@x"));
        let err = FleetError::Env {
            var: "CRP_FLEET_DIE_AFTER".into(),
            value: "nope".into(),
            reason: "expected a job count".into(),
        };
        assert!(err.to_string().contains("CRP_FLEET_DIE_AFTER"));
        assert!(err.to_string().contains("nope"));
    }
}
