//! Bench F-KL: the cost of miscalibrated predictions
//! (Theorems 2.12 and 2.16's `D_KL` terms).
//!
//! Fixes a bimodal ground truth, generates predictions of increasing
//! divergence, and prints the measured rounds of both §2 algorithms next
//! to the divergence.  Protocols are built by name through the registry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::{bench_truth, BENCH_TRIALS};
use crp_info::CondensedDistribution;
use crp_predict::noise;
use crp_protocols::ProtocolSpec;
use crp_sim::{RunnerConfig, Simulation};

fn kl_divergence_bench(c: &mut Criterion) {
    let truth = bench_truth();
    let n = truth.max_size();
    let truth_condensed = CondensedDistribution::from_sizes(&truth);
    let config = RunnerConfig::with_trials(BENCH_TRIALS).seeded(0x76);

    let predictions = vec![
        ("exact".to_string(), truth.clone()),
        (
            "mix-0.5".to_string(),
            noise::towards_uniform(&truth, 0.5).unwrap(),
        ),
        (
            "mix-0.9".to_string(),
            noise::towards_uniform(&truth, 0.9).unwrap(),
        ),
        (
            "shift-2".to_string(),
            noise::support_shift(&truth, 2).unwrap(),
        ),
        (
            "shift-3".to_string(),
            noise::support_shift(&truth, 3).unwrap(),
        ),
    ];

    println!("\n=== Rounds vs prediction divergence ===");
    println!(
        "{:<10} {:>10} {:>18} {:>12}",
        "prediction", "D_KL bits", "no-CD E[rounds]", "CD rounds"
    );
    for (label, prediction) in &predictions {
        let condensed = CondensedDistribution::from_sizes(prediction);
        let divergence = truth_condensed.kl_divergence(&condensed);
        let no_cd = Simulation::builder()
            .protocol(
                ProtocolSpec::new("sorted-guess-cycling")
                    .universe(n)
                    .prediction(condensed.clone()),
            )
            .truth(truth.clone())
            .max_rounds(64 * n)
            .runner(config.clone())
            .run()
            .unwrap();
        let cd = Simulation::builder()
            .protocol(
                ProtocolSpec::new("coded-search")
                    .universe(n)
                    .prediction(condensed.clone()),
            )
            .truth(truth.clone())
            .runner(config.clone())
            .run()
            .unwrap();
        println!(
            "{:<10} {:>10.3} {:>18.2} {:>12.2}",
            label,
            divergence,
            no_cd.mean_rounds_overall(),
            cd.mean_rounds_when_resolved()
        );
    }

    let mut group = c.benchmark_group("kl_divergence");
    group.sample_size(10);
    for (label, prediction) in &predictions {
        let condensed = CondensedDistribution::from_sizes(prediction);
        let spec = ProtocolSpec::new("sorted-guess-cycling")
            .universe(n)
            .prediction(condensed);
        group.bench_with_input(BenchmarkId::from_parameter(label), prediction, |b, _| {
            // Construct once; the measured loop times only the Monte-Carlo
            // execution, as the pre-registry benches did.
            let quick = RunnerConfig::with_trials(64).seeded(0x76).single_threaded();
            let simulation = Simulation::builder()
                .protocol(spec.clone())
                .truth(truth.clone())
                .max_rounds(16 * n)
                .runner(quick.clone())
                .build()
                .unwrap();
            b.iter(|| simulation.run().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, kl_divergence_bench);
criterion_main!(benches);
