//! Bench F-BASELINE: prediction-augmented protocols vs the classical
//! baselines across universe sizes.
//!
//! Prints the decay / Willard / known-size / prediction columns for a
//! sweep of `n`, the series behind the paper's motivating comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_info::SizeDistribution;
use crp_predict::ScenarioLibrary;
use crp_protocols::{CodedSearch, Decay, FixedProbability, SortedGuess, Willard};
use crp_sim::{measure_cd_strategy, measure_schedule, RunnerConfig};

fn baselines(c: &mut Criterion) {
    let config = RunnerConfig::with_trials(600).seeded(0x77);
    let sizes = [1usize << 10, 1 << 12, 1 << 14, 1 << 16];

    println!("\n=== Baselines vs predictions ===");
    println!(
        "{:>7} {:>8} {:>14} {:>9} {:>14} {:>12}",
        "n", "decay", "sorted-guess", "willard", "coded-search", "known-size"
    );
    for &n in &sizes {
        let library = ScenarioLibrary::new(n).unwrap();
        let scenario = library.bimodal();
        let truth = scenario.distribution();
        let condensed = scenario.condensed();

        let decay = measure_schedule(&Decay::new(n).unwrap(), truth, 64 * n, &config);
        let sorted = SortedGuess::new(&condensed).cycling();
        let sorted_stats = measure_schedule(&sorted, truth, 64 * n, &config);
        let willard = Willard::new(n).unwrap();
        let willard_stats = measure_cd_strategy(&willard, truth, willard.worst_case_rounds(), &config);
        let coded = CodedSearch::new(&condensed).unwrap();
        let coded_stats = measure_cd_strategy(&coded, truth, coded.horizon().max(2), &config);
        let mode = (n / 32).max(2);
        let known = measure_schedule(
            &FixedProbability::new(mode).unwrap(),
            &SizeDistribution::point_mass(n, mode).unwrap(),
            64 * n,
            &config,
        );

        println!(
            "{n:>7} {:>8.2} {:>14.2} {:>9.2} {:>14.2} {:>12.2}",
            decay.mean_rounds_overall(),
            sorted_stats.mean_rounds_overall(),
            willard_stats.mean_rounds_when_resolved(),
            coded_stats.mean_rounds_when_resolved(),
            known.mean_rounds_overall()
        );
    }

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for &n in &sizes[..2] {
        let library = ScenarioLibrary::new(n).unwrap();
        let scenario = library.bimodal();
        let decay = Decay::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("decay", n), &n, |b, &n| {
            let quick = RunnerConfig::with_trials(64).seeded(0x77).single_threaded();
            b.iter(|| measure_schedule(&decay, scenario.distribution(), 16 * n, &quick));
        });
    }
    group.finish();
}

criterion_group!(benches, baselines);
criterion_main!(benches);
