//! Bench F-BASELINE: prediction-augmented protocols vs the classical
//! baselines across universe sizes.
//!
//! Prints the decay / Willard / known-size / prediction columns for a
//! sweep of `n`, the series behind the paper's motivating comparison.
//! Every protocol is constructed by name through the registry and run
//! through the `Simulation` builder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_info::SizeDistribution;
use crp_predict::ScenarioLibrary;
use crp_protocols::ProtocolSpec;
use crp_sim::{RunnerConfig, Simulation, TrialStats};

fn measure(
    spec: ProtocolSpec,
    truth: SizeDistribution,
    budget: Option<usize>,
    config: &RunnerConfig,
) -> TrialStats {
    let mut builder = Simulation::builder()
        .protocol(spec)
        .truth(truth)
        .runner(config.clone());
    if let Some(budget) = budget {
        builder = builder.max_rounds(budget);
    }
    builder.run().expect("bench configurations are valid")
}

fn baselines(c: &mut Criterion) {
    let config = RunnerConfig::with_trials(600).seeded(0x77);
    let sizes = [1usize << 10, 1 << 12, 1 << 14, 1 << 16];

    println!("\n=== Baselines vs predictions ===");
    println!(
        "{:>7} {:>8} {:>14} {:>9} {:>14} {:>12}",
        "n", "decay", "sorted-guess", "willard", "coded-search", "known-size"
    );
    for &n in &sizes {
        let library = ScenarioLibrary::new(n).unwrap();
        let scenario = library.bimodal();
        let truth = scenario.distribution().clone();
        let condensed = scenario.condensed();

        let decay = measure(
            ProtocolSpec::new("decay").universe(n),
            truth.clone(),
            Some(64 * n),
            &config,
        );
        let sorted = measure(
            ProtocolSpec::new("sorted-guess-cycling")
                .universe(n)
                .prediction(condensed.clone()),
            truth.clone(),
            Some(64 * n),
            &config,
        );
        let willard = measure(
            ProtocolSpec::new("willard").universe(n),
            truth.clone(),
            None,
            &config,
        );
        let coded = measure(
            ProtocolSpec::new("coded-search")
                .universe(n)
                .prediction(condensed.clone()),
            truth.clone(),
            None,
            &config,
        );
        let mode = (n / 32).max(2);
        let known = measure(
            ProtocolSpec::new("fixed-probability")
                .universe(n)
                .estimate(mode),
            SizeDistribution::point_mass(n, mode).unwrap(),
            Some(64 * n),
            &config,
        );

        println!(
            "{n:>7} {:>8.2} {:>14.2} {:>9.2} {:>14.2} {:>12.2}",
            decay.mean_rounds_overall(),
            sorted.mean_rounds_overall(),
            willard.mean_rounds_when_resolved(),
            coded.mean_rounds_when_resolved(),
            known.mean_rounds_overall()
        );
    }

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for &n in &sizes[..2] {
        let library = ScenarioLibrary::new(n).unwrap();
        let scenario = library.bimodal();
        group.bench_with_input(BenchmarkId::new("decay", n), &n, |b, &n| {
            // Construct once; the measured loop times only the Monte-Carlo
            // execution, as the pre-registry benches did.
            let quick = RunnerConfig::with_trials(64).seeded(0x77).single_threaded();
            let simulation = Simulation::builder()
                .protocol(ProtocolSpec::new("decay").universe(n))
                .truth(scenario.distribution().clone())
                .max_rounds(16 * n)
                .runner(quick.clone())
                .build()
                .unwrap();
            b.iter(|| simulation.run().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, baselines);
criterion_main!(benches);
