//! Bench F-ENTROPY: rounds as a function of condensed entropy.
//!
//! Sweeps the entropy ladder (point mass mixed toward uniform-over-ranges)
//! and prints the measured rounds of both §2 algorithms, the series a
//! figure of the paper's Table 1 bounds would plot.  Protocols are built
//! by name through the registry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::{bench_library, BENCH_TRIALS};
use crp_protocols::ProtocolSpec;
use crp_sim::{RunnerConfig, Simulation};

fn entropy_scaling(c: &mut Criterion) {
    let library = bench_library();
    let n = library.max_size();
    let config = RunnerConfig::with_trials(BENCH_TRIALS).seeded(0x75);
    let ladder = library.entropy_ladder(8);

    println!("\n=== Rounds vs condensed entropy (n = {n}) ===");
    println!(
        "{:>9} {:>16} {:>14}",
        "H(c(X))", "no-CD rounds", "CD rounds"
    );
    for scenario in &ladder {
        let condensed = scenario.condensed();
        let no_cd = Simulation::builder()
            .protocol(
                ProtocolSpec::new("sorted-guess")
                    .universe(n)
                    .prediction(condensed.clone()),
            )
            .truth(scenario.distribution().clone())
            .runner(config.clone())
            .run()
            .unwrap();
        let cd = Simulation::builder()
            .protocol(
                ProtocolSpec::new("coded-search")
                    .universe(n)
                    .prediction(condensed.clone()),
            )
            .truth(scenario.distribution().clone())
            .runner(config.clone())
            .run()
            .unwrap();
        println!(
            "{:>9.3} {:>16.3} {:>14.3}",
            condensed.entropy(),
            no_cd.mean_rounds_when_resolved(),
            cd.mean_rounds_when_resolved()
        );
    }

    let mut group = c.benchmark_group("entropy_scaling");
    group.sample_size(10);
    for (i, scenario) in ladder.iter().enumerate().step_by(3) {
        let spec = ProtocolSpec::new("sorted-guess")
            .universe(n)
            .prediction(scenario.condensed());
        group.bench_with_input(BenchmarkId::from_parameter(i), scenario, |b, scenario| {
            // Construct once; the measured loop times only the Monte-Carlo
            // execution, as the pre-registry benches did.
            let quick = RunnerConfig::with_trials(64).seeded(0x75).single_threaded();
            let simulation = Simulation::builder()
                .protocol(spec.clone())
                .truth(scenario.distribution().clone())
                .runner(quick.clone())
                .build()
                .unwrap();
            b.iter(|| simulation.run().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, entropy_scaling);
criterion_main!(benches);
