//! Bench F-ENTROPY: rounds as a function of condensed entropy.
//!
//! Sweeps the entropy ladder (point mass mixed toward uniform-over-ranges)
//! and prints the measured rounds of both §2 algorithms, the series a
//! figure of the paper's Table 1 bounds would plot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::{bench_library, BENCH_TRIALS};
use crp_protocols::{CodedSearch, SortedGuess};
use crp_sim::{measure_cd_strategy, measure_schedule, RunnerConfig};

fn entropy_scaling(c: &mut Criterion) {
    let library = bench_library();
    let config = RunnerConfig::with_trials(BENCH_TRIALS).seeded(0x75);
    let ladder = library.entropy_ladder(8);

    println!("\n=== Rounds vs condensed entropy (n = {}) ===", library.max_size());
    println!("{:>9} {:>16} {:>14}", "H(c(X))", "no-CD rounds", "CD rounds");
    for scenario in &ladder {
        let condensed = scenario.condensed();
        let sorted = SortedGuess::new(&condensed);
        let no_cd = measure_schedule(
            &sorted,
            scenario.distribution(),
            sorted.pass_length().max(1),
            &config,
        );
        let coded = CodedSearch::new(&condensed).unwrap();
        let cd = measure_cd_strategy(&coded, scenario.distribution(), coded.horizon().max(2), &config);
        println!(
            "{:>9.3} {:>16.3} {:>14.3}",
            condensed.entropy(),
            no_cd.mean_rounds_when_resolved(),
            cd.mean_rounds_when_resolved()
        );
    }

    let mut group = c.benchmark_group("entropy_scaling");
    group.sample_size(10);
    for (i, scenario) in ladder.iter().enumerate().step_by(3) {
        let condensed = scenario.condensed();
        let sorted = SortedGuess::new(&condensed);
        let budget = sorted.pass_length().max(1);
        group.bench_with_input(BenchmarkId::from_parameter(i), scenario, |b, scenario| {
            let quick = RunnerConfig::with_trials(64).seeded(0x75).single_threaded();
            b.iter(|| measure_schedule(&sorted, scenario.distribution(), budget, &quick));
        });
    }
    group.finish();
}

criterion_group!(benches, entropy_scaling);
criterion_main!(benches);
