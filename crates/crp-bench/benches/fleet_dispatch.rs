//! Bench F-FLEET: persistent fleet workers versus one-subprocess-per-job
//! process dispatch.
//!
//! The workload is the shape the long-lived worker mode exists for: a
//! grid of small shard jobs whose compute is cheap enough that process
//! lifecycle dominates.  The legacy `ProcessBackend` pays a fresh spawn
//! (binary load, allocator warm-up, pipe setup) for every one of the
//! jobs; the `FleetBackend` pays it once per pool worker and then
//! streams the same `ShardSpec` messages to the already-running
//! processes over framed stdio.
//!
//! The bench times both over a few repetitions (taking the minimum,
//! robust against scheduling noise), verifies both produce statistics
//! bit-identical to the serial reference, and asserts the persistent
//! pool is no slower than per-job spawning — the property that justifies
//! making it the default for `--backend process` runs.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use crp_protocols::ProtocolSpec;
use crp_sim::{
    FleetBackend, ProcessBackend, RunnerConfig, SerialBackend, SweepMatrix, SweepProtocol,
};

/// Grid scale: 2 columns × 1 scenario × 2048 trials = 16 shard jobs of
/// 256 trials each.
const COLUMNS: usize = 2;
const TRIALS_PER_CELL: usize = 2048;
const UNIVERSE: usize = 1 << 8;
const WORKERS: usize = 2;
const REPETITIONS: usize = 5;

/// Per-job spawning may be up to this factor faster before the assertion
/// fires; it absorbs timer jitter without masking a real regression of
/// the persistent pool.
const TOLERANCE: f64 = 1.15;

fn grid() -> SweepMatrix {
    let library = crp_predict::ScenarioLibrary::new(UNIVERSE).expect("bench universe is valid");
    let mut matrix = SweepMatrix::new()
        .scenario(library.bimodal())
        .trials(TRIALS_PER_CELL)
        .runner(RunnerConfig::with_trials(TRIALS_PER_CELL).seeded(23));
    for column in 0..COLUMNS {
        matrix = matrix.protocol(
            SweepProtocol::from_scenario(format!("decay-{column}"), |s| {
                ProtocolSpec::new("decay").universe(s.distribution().max_size())
            })
            .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
        );
    }
    matrix
}

fn time_min<T>(mut body: impl FnMut() -> T) -> Duration {
    black_box(body());
    (0..REPETITIONS)
        .map(|_| {
            let start = Instant::now();
            black_box(body());
            start.elapsed()
        })
        .min()
        .expect("at least one repetition")
}

fn dispatch_comparison() {
    // The worker binary is resolved next to the bench executable; skip
    // (rather than fail) when it has not been built — CI builds it first.
    let fleet = match FleetBackend::local(WORKERS) {
        Ok(backend) => backend,
        Err(err) => {
            println!("skipping fleet_dispatch comparison: {err}");
            return;
        }
    };
    let per_job_spawn = ProcessBackend::new(WORKERS);
    let matrix = grid();

    // Same statistics on every backend — dispatch only changes wall
    // clock.
    let reference = matrix.run_on(&SerialBackend).expect("serial reference");
    for results in [
        matrix.run_on(&per_job_spawn).expect("process backend runs"),
        matrix.run_on(&fleet).expect("fleet backend runs"),
    ] {
        assert_eq!(reference, results, "out-of-process dispatch changed stats");
    }

    let spawn_time = time_min(|| matrix.run_on(&per_job_spawn).expect("process backend runs"));
    let fleet_time = time_min(|| matrix.run_on(&fleet).expect("fleet backend runs"));
    let ratio = fleet_time.as_secs_f64() / spawn_time.as_secs_f64().max(1e-12);
    println!(
        "\n=== Fleet dispatch ({} jobs, {WORKERS} workers) ===\n\
         per-job spawn: {spawn_time:?}   persistent workers: {fleet_time:?}   \
         fleet/spawn: {ratio:.2}x",
        COLUMNS * TRIALS_PER_CELL.div_ceil(256),
    );
    assert!(
        ratio <= TOLERANCE,
        "persistent fleet workers must be no slower than per-job spawning \
         (ratio {ratio:.2}x > tolerance {TOLERANCE}x)"
    );
}

fn fleet_dispatch(c: &mut Criterion) {
    dispatch_comparison();
    let matrix = grid();
    let mut group = c.benchmark_group("fleet_dispatch");
    group.sample_size(5);
    if let Ok(fleet) = FleetBackend::local(WORKERS) {
        group.bench_with_input(
            criterion::BenchmarkId::new("per-job-spawn", WORKERS),
            &matrix,
            |b, m| b.iter(|| m.run_on(&ProcessBackend::new(WORKERS)).unwrap()),
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("persistent-workers", WORKERS),
            &matrix,
            |b, m| b.iter(|| m.run_on(&fleet).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, fleet_dispatch);
criterion_main!(benches);
