//! Bench F-CACHE: warm resubmission through the sweep service versus a
//! cold fleet computation.
//!
//! The workload is the service's reason to exist: the same 16-cell grid
//! submitted twice.  The first submission computes every `(cell, shard)`
//! job on a warm 2-worker fleet and fills the content-addressed result
//! cache; the second submission must settle 100% from the cache —
//! returning bit-identical `TrialStats` — and is asserted **≥5× faster**
//! than the cold run.  (In practice the gap is orders of magnitude: a
//! warm resubmission is a handful of cache reads and one TCP round
//! trip.)
//!
//! Everything runs in-process against a real `SweepServer` on loopback
//! TCP with real `crp_experiments worker` subprocesses, exactly like the
//! CLI `serve` / `submit` pair.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use crp_fleet::WorkerEndpoint;
use crp_protocols::ProtocolSpec;
use crp_serve::{ResultCache, ServeClient, SweepServer};
use crp_sim::service::{submit_matrix, sweep_hooks};
use crp_sim::{
    RunnerConfig, SerialBackend, SweepMatrix, SweepPopulation, SweepProtocol, SweepResults,
};

/// Grid scale: 4 scenarios × 4 protocol columns = 16 cells of 512
/// trials (2 shards each).
const TRIALS_PER_CELL: usize = 512;
const UNIVERSE: usize = 1 << 8;
const WORKERS: usize = 2;

/// The warm resubmission must be at least this much faster than the
/// cold fleet computation.
const REQUIRED_SPEEDUP: f64 = 5.0;

fn grid() -> SweepMatrix {
    let library = crp_predict::ScenarioLibrary::new(UNIVERSE).expect("bench universe is valid");
    let mut matrix = SweepMatrix::new()
        .scenarios([
            library.bimodal(),
            library.geometric(),
            library.bursty(),
            library.adversarial_drift(),
        ])
        .trials(TRIALS_PER_CELL)
        .runner(RunnerConfig::with_trials(TRIALS_PER_CELL).seeded(29));
    for column in 0..4 {
        matrix = matrix.protocol(
            SweepProtocol::from_scenario(format!("decay-{column}"), |s| {
                ProtocolSpec::new("decay").universe(s.distribution().max_size())
            })
            // A heavy fixed population makes each trial genuinely
            // expensive (many contenders, many collision rounds), so the
            // cold run measures compute, not payload shuffling.
            .population(SweepPopulation::Fixed(UNIVERSE / 2))
            .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
        );
    }
    matrix
}

struct Service {
    addr: String,
    daemon: Option<std::thread::JoinHandle<Result<(), crp_serve::ServeError>>>,
}

impl Service {
    fn start() -> Result<Self, String> {
        let cache_dir =
            std::env::temp_dir().join(format!("crp-sweep-cache-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cache = ResultCache::open(&cache_dir).map_err(|e| e.to_string())?;
        // The worker binary resolution may fail in stripped
        // environments; surface it as a skippable error like the fleet
        // bench does.
        let endpoints: Vec<WorkerEndpoint> = crp_sim::FleetBackend::local(WORKERS)
            .map_err(|e| e.to_string())?
            .endpoints()
            .to_vec();
        let server =
            SweepServer::bind("127.0.0.1:0", endpoints, Some(cache)).map_err(|e| e.to_string())?;
        let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
        let daemon = std::thread::spawn(move || server.serve(sweep_hooks()));
        Ok(Self {
            addr,
            daemon: Some(daemon),
        })
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if let Ok(client) = ServeClient::connect(self.addr.as_str()) {
            let _ = client.shutdown_server();
        }
        if let Some(daemon) = self.daemon.take() {
            let _ = daemon.join();
        }
    }
}

fn timed_submit(addr: &str, matrix: &SweepMatrix) -> (Duration, SweepResults, usize, usize) {
    let start = Instant::now();
    let (results, outcome) =
        submit_matrix(addr, matrix, |_, _, _| {}).expect("submission succeeds");
    let elapsed = start.elapsed();
    black_box(&results);
    (elapsed, results, outcome.job_hits, outcome.jobs_total)
}

fn cache_comparison() {
    let service = match Service::start() {
        Ok(service) => service,
        Err(err) => {
            println!("skipping sweep_cache comparison: {err}");
            return;
        }
    };
    let matrix = grid();
    let reference = matrix.run_on(&SerialBackend).expect("serial reference");

    let (cold_time, cold_results, cold_hits, total) = timed_submit(&service.addr, &matrix);
    assert_eq!(cold_hits, 0, "a fresh cache cannot hit");
    let (warm_time, warm_results, warm_hits, _) = timed_submit(&service.addr, &matrix);
    assert_eq!(warm_hits, total, "a resubmission must be 100% cache hits");

    // The cache changes wall-clock time, never a single bit of the
    // statistics.
    assert_eq!(reference, cold_results, "cold service run diverged");
    assert_eq!(reference, warm_results, "warm resubmission diverged");

    let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-12);
    println!(
        "\n=== Sweep cache ({} cells, {total} jobs, {WORKERS} workers) ===\n\
         cold fleet run: {cold_time:?}   warm resubmission: {warm_time:?}   \
         speedup: {speedup:.1}x",
        reference.cells().len(),
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "a fully-warm resubmission must be at least {REQUIRED_SPEEDUP}x faster than a cold \
         fleet run (got {speedup:.1}x)"
    );
}

fn sweep_cache(c: &mut Criterion) {
    cache_comparison();
    // Criterion samples of the warm path (the cold path fills the cache
    // once in cache_comparison above; a fresh service here would skew
    // samples with process spawns).
    if let Ok(service) = Service::start() {
        let matrix = grid();
        let _ = submit_matrix(&service.addr, &matrix, |_, _, _| {});
        let mut group = c.benchmark_group("sweep_cache");
        group.sample_size(10);
        group.bench_with_input(
            criterion::BenchmarkId::new("warm-resubmission", WORKERS),
            &matrix,
            |b, m| b.iter(|| submit_matrix(&service.addr, m, |_, _, _| {}).unwrap()),
        );
        group.finish();
    }
}

criterion_group!(benches, sweep_cache);
criterion_main!(benches);
