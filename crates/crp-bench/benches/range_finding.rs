//! Bench F-RF: the lower-bound machinery (RF-Construction, range-finding
//! trees, target-distance coding) and its Source-Coding-Theorem
//! inequalities, plus the condense-before-code ablation from DESIGN.md.
//!
//! This bench analyses protocol *constructions* (the reductions behind the
//! lower bounds) rather than running protocols against the channel, so it
//! instantiates the concrete `SortedGuess` / `Willard` types directly
//! instead of going through the registry's `dyn Protocol` objects.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::bench_library;
use crp_info::{huffman_code, SizeDistribution};
use crp_protocols::rangefinding::{
    rf_construction, target_distance_expected_length, RangeFindingTree,
};
use crp_protocols::{SortedGuess, Willard};
use rand::distributions::Distribution as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Micro-bench of the sampling hot path: 1M draws from a 4096-point
/// distribution through the cached alias table versus the seed
/// implementation's rebuild-the-`WeightedIndex`-per-draw path.  Asserts the
/// alias path is at least 10× faster (in practice it is orders of
/// magnitude: O(1) versus O(n) per draw).
fn sampling_hot_path() {
    const DRAWS: usize = 1_000_000;
    let truth = SizeDistribution::zipf(4096, 1.1).unwrap();

    // Warm the alias table outside the timed region.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    black_box(truth.sample(&mut rng));

    let alias_start = Instant::now();
    let mut alias_sum = 0usize;
    for _ in 0..DRAWS {
        alias_sum += truth.sample(&mut rng);
    }
    let alias_time = alias_start.elapsed();
    black_box(alias_sum);

    // The seed path, reproduced here: rebuild the cumulative table for
    // every single draw.  1M full rebuilds is prohibitively slow, so it is
    // timed over a subsample and scaled.
    const SEED_DRAWS: usize = 10_000;
    let seed_start = Instant::now();
    let mut seed_sum = 0usize;
    for _ in 0..SEED_DRAWS {
        let index = rand::distributions::WeightedIndex::new(truth.masses())
            .expect("masses form a distribution");
        seed_sum += index.sample(&mut rng) + 1;
    }
    let seed_time = seed_start
        .elapsed()
        .mul_f64(DRAWS as f64 / SEED_DRAWS as f64);
    black_box(seed_sum);

    let speedup = seed_time.as_secs_f64() / alias_time.as_secs_f64().max(1e-12);
    println!(
        "\n=== Sampling hot path (4096-point distribution, {DRAWS} draws) ===\n\
         alias table: {alias_time:?}   per-draw WeightedIndex rebuild (scaled): {seed_time:?}   \
         speedup: {speedup:.1}x"
    );
    assert!(
        speedup >= 10.0,
        "alias-table sampling must be at least 10x faster than the seed path, got {speedup:.1}x"
    );
}

fn range_finding(c: &mut Criterion) {
    sampling_hot_path();
    let library = bench_library();
    let n = library.max_size();
    let willard = Willard::new(n).unwrap();

    println!("\n=== Lower-bound machinery (n = {n}) ===");
    println!(
        "{:<16} {:>9} {:>14} {:>14} {:>14}",
        "scenario", "H(c(X))", "RF E[steps]", "E[code bits]", "tree E[depth]"
    );
    for scenario in library.all() {
        let condensed = scenario.condensed();
        let protocol = SortedGuess::new(&condensed).cycling();
        let sequence = rf_construction(&protocol, n, 4 * condensed.num_ranges());
        let steps = sequence.expected_steps(&condensed, 2, 4 * sequence.len());
        let bits = target_distance_expected_length(&sequence, &condensed, 2, 24);
        let tree = RangeFindingTree::from_strategy(&willard, n, 8);
        let depth = tree.expected_depth(&condensed, 2, 4 * tree.depth());
        println!(
            "{:<16} {:>9.3} {:>14.3} {:>14.3} {:>14.3}",
            scenario.name(),
            condensed.entropy(),
            steps,
            bits,
            depth
        );
    }

    // Ablation: expected Huffman code length for the condensed distribution
    // versus the raw size distribution — the condensation step is what keeps
    // the §2.6 schedule short.
    println!("\n--- Ablation: condensed vs raw coding ---");
    println!(
        "{:<16} {:>22} {:>16}",
        "scenario", "condensed E[bits]", "raw E[bits]"
    );
    for scenario in library.all() {
        let condensed = scenario.condensed();
        let condensed_code = huffman_code(condensed.probabilities()).unwrap();
        let condensed_bits = condensed_code.expected_length(condensed.probabilities());
        let raw = scenario.distribution();
        let raw_code = huffman_code(raw.masses()).unwrap();
        let raw_bits = raw_code.expected_length(raw.masses());
        println!(
            "{:<16} {:>22.3} {:>16.3}",
            scenario.name(),
            condensed_bits,
            raw_bits
        );
    }

    let mut group = c.benchmark_group("range_finding");
    group.sample_size(10);
    for scenario in library.all().into_iter().take(3) {
        let condensed = scenario.condensed();
        let protocol = SortedGuess::new(&condensed).cycling();
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario.name().to_string()),
            &scenario,
            |b, _| {
                b.iter(|| {
                    let sequence = rf_construction(&protocol, n, 4 * condensed.num_ranges());
                    target_distance_expected_length(&sequence, &condensed, 2, 24)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, range_finding);
criterion_main!(benches);
