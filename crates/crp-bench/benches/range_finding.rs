//! Bench F-RF: the lower-bound machinery (RF-Construction, range-finding
//! trees, target-distance coding) and its Source-Coding-Theorem
//! inequalities, plus the condense-before-code ablation from DESIGN.md.
//!
//! This bench analyses protocol *constructions* (the reductions behind the
//! lower bounds) rather than running protocols against the channel, so it
//! instantiates the concrete `SortedGuess` / `Willard` types directly
//! instead of going through the registry's `dyn Protocol` objects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::bench_library;
use crp_info::huffman_code;
use crp_protocols::rangefinding::{
    rf_construction, target_distance_expected_length, RangeFindingTree,
};
use crp_protocols::{SortedGuess, Willard};

fn range_finding(c: &mut Criterion) {
    let library = bench_library();
    let n = library.max_size();
    let willard = Willard::new(n).unwrap();

    println!("\n=== Lower-bound machinery (n = {n}) ===");
    println!(
        "{:<16} {:>9} {:>14} {:>14} {:>14}",
        "scenario", "H(c(X))", "RF E[steps]", "E[code bits]", "tree E[depth]"
    );
    for scenario in library.all() {
        let condensed = scenario.condensed();
        let protocol = SortedGuess::new(&condensed).cycling();
        let sequence = rf_construction(&protocol, n, 4 * condensed.num_ranges());
        let steps = sequence.expected_steps(&condensed, 2, 4 * sequence.len());
        let bits = target_distance_expected_length(&sequence, &condensed, 2, 24);
        let tree = RangeFindingTree::from_strategy(&willard, n, 8);
        let depth = tree.expected_depth(&condensed, 2, 4 * tree.depth());
        println!(
            "{:<16} {:>9.3} {:>14.3} {:>14.3} {:>14.3}",
            scenario.name(),
            condensed.entropy(),
            steps,
            bits,
            depth
        );
    }

    // Ablation: expected Huffman code length for the condensed distribution
    // versus the raw size distribution — the condensation step is what keeps
    // the §2.6 schedule short.
    println!("\n--- Ablation: condensed vs raw coding ---");
    println!(
        "{:<16} {:>22} {:>16}",
        "scenario", "condensed E[bits]", "raw E[bits]"
    );
    for scenario in library.all() {
        let condensed = scenario.condensed();
        let condensed_code = huffman_code(condensed.probabilities()).unwrap();
        let condensed_bits = condensed_code.expected_length(condensed.probabilities());
        let raw = scenario.distribution();
        let raw_code = huffman_code(raw.masses()).unwrap();
        let raw_bits = raw_code.expected_length(raw.masses());
        println!(
            "{:<16} {:>22.3} {:>16.3}",
            scenario.name(),
            condensed_bits,
            raw_bits
        );
    }

    let mut group = c.benchmark_group("range_finding");
    group.sample_size(10);
    for scenario in library.all().into_iter().take(3) {
        let condensed = scenario.condensed();
        let protocol = SortedGuess::new(&condensed).cycling();
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario.name().to_string()),
            &scenario,
            |b, _| {
                b.iter(|| {
                    let sequence = rf_construction(&protocol, n, 4 * condensed.num_ranges());
                    target_distance_expected_length(&sequence, &condensed, 2, 24)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, range_finding);
criterion_main!(benches);
