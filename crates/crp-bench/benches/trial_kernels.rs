//! Bench F-KERNEL: scalar trial-at-a-time executor vs the batched
//! struct-of-arrays trial kernels, recorded as `BENCH_kernels.json` at
//! the workspace root so the numbers accumulate a perf history across
//! revisions.
//!
//! The workload is the paper's hot loop — a uniform no-CD protocol
//! (`decay`) swept over a universe-size ladder — measured as *per-round
//! throughput* (simulated protocol rounds per second across all trials).
//! The batched kernel earns its speed from threshold memoization (the
//! two `powf`s per round collapse to a hash lookup), block-buffered RNG
//! draws and one policy query per shard per round; both paths produce
//! bit-identical `TrialStats`, which this bench re-asserts before
//! recording anything.
//!
//! History invariants (enforced, not just recorded): the batched kernel
//! is no slower than the scalar executor on every ladder step, and at
//! least 2x faster at the n = 2^20 headline size (the observed factor
//! is far higher; 2x keeps the assertion robust on noisy CI machines).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_protocols::ProtocolSpec;
use crp_sim::{KernelChoice, Simulation, TrialStats};

/// The universe-size ladder; the last step is the headline size.
const LADDER: [usize; 3] = [10_000, 50_000, 1 << 20];

/// Trials per measured run: enough rounds for stable timing, small
/// enough that the scalar baseline stays in milliseconds.
const TRIALS: usize = 4000;

fn simulation(universe: usize, kernel: KernelChoice) -> Simulation {
    Simulation::builder()
        .protocol(ProtocolSpec::new("decay").universe(universe))
        .participants((universe / 16).max(2))
        .max_rounds(64 * universe)
        .trials(TRIALS)
        .seed(0xBEEF)
        .kernel(kernel)
        .build()
        .expect("the bench simulation is valid")
}

/// Runs one configuration, best of three, returning the stats and the
/// fastest wall-clock seconds (best-of damps scheduler noise, which
/// matters because the history asserts a speedup ratio).
fn measure(universe: usize, kernel: KernelChoice) -> (TrialStats, f64) {
    let simulation = simulation(universe, kernel);
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..3 {
        let start = Instant::now();
        let run = simulation.run().expect("the bench simulation runs");
        best = best.min(start.elapsed().as_secs_f64());
        stats = Some(run);
    }
    (stats.expect("three runs happened"), best)
}

/// Simulated rounds per second: the throughput the kernels optimise.
fn rounds_per_sec(stats: &TrialStats, seconds: f64) -> f64 {
    stats.mean_rounds_overall() * stats.trials as f64 / seconds.max(1e-12)
}

/// Minimal hand-rolled JSON emission (the workspace has no serde).
fn write_json(fields: &[(String, String)]) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    let body: Vec<String> = fields
        .iter()
        .map(|(key, value)| format!("  \"{key}\": {value}"))
        .collect();
    std::fs::write(&path, format!("{{\n{}\n}}\n", body.join(",\n")))?;
    Ok(path)
}

fn record_history() {
    let mut fields = vec![
        ("bench".to_string(), "\"kernels\"".to_string()),
        ("trials".to_string(), TRIALS.to_string()),
    ];
    let mut headline = 1.0;
    for universe in LADDER {
        let (scalar_stats, scalar_sec) = measure(universe, KernelChoice::Scalar);
        let (batched_stats, batched_sec) = measure(universe, KernelChoice::Batched);
        assert_eq!(
            scalar_stats, batched_stats,
            "kernel diverged from the scalar executor at n = {universe}"
        );
        let scalar_rps = rounds_per_sec(&scalar_stats, scalar_sec);
        let batched_rps = rounds_per_sec(&batched_stats, batched_sec);
        let speedup = batched_rps / scalar_rps;
        assert!(
            speedup >= 1.0,
            "batched kernel slower than scalar at n = {universe}: {speedup:.2}x"
        );
        println!(
            "n = {universe}: scalar {scalar_rps:.0} rounds/s, \
             batched {batched_rps:.0} rounds/s ({speedup:.1}x)"
        );
        fields.push((format!("scalar_rps_{universe}"), format!("{scalar_rps:.0}")));
        fields.push((
            format!("batched_rps_{universe}"),
            format!("{batched_rps:.0}"),
        ));
        fields.push((format!("speedup_{universe}"), format!("{speedup:.2}")));
        headline = speedup;
    }
    assert!(
        headline >= 2.0,
        "batched kernel below the 2x floor at the headline size: {headline:.2}x"
    );
    match write_json(&fields) {
        Ok(path) => println!("history written to {}", path.display()),
        Err(err) => println!("could not write BENCH_kernels.json: {err}"),
    }
}

fn trial_kernels(c: &mut Criterion) {
    record_history();
    for universe in LADDER {
        let mut group = c.benchmark_group(format!("trial_kernels/{universe}"));
        group.sample_size(10);
        for (name, kernel) in [
            ("scalar", KernelChoice::Scalar),
            ("batched", KernelChoice::Batched),
        ] {
            let simulation = simulation(universe, kernel);
            group.bench_with_input(
                BenchmarkId::new(name, universe),
                &simulation,
                |b, simulation| b.iter(|| black_box(simulation.run().unwrap())),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, trial_kernels);
criterion_main!(benches);
