//! Bench T1-CD: regenerates the collision-detection row of Table 1.
//!
//! Measures the §2.6 coded-search protocol with accurate predictions for
//! every scenario and prints the measured round count next to the `H²`
//! theory column.  Protocols are built by name through the registry; the
//! one-shot round budget is the protocol's own horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::{bench_library, BENCH_TRIALS};
use crp_protocols::ProtocolSpec;
use crp_sim::{RunnerConfig, Simulation};

fn table1_cd(c: &mut Criterion) {
    let library = bench_library();
    let n = library.max_size();
    let config = RunnerConfig::with_trials(BENCH_TRIALS).seeded(0x72);

    println!("\n=== Table 1 / collision detection (n = {n}) ===");
    println!(
        "{:<16} {:>9} {:>8} {:>14} {:>14}",
        "scenario", "H(c(X))", "H^2", "success rate", "mean rounds"
    );

    let mut group = c.benchmark_group("table1_cd");
    group.sample_size(10);
    for scenario in library.all() {
        let condensed = scenario.condensed();
        let spec = ProtocolSpec::new("coded-search")
            .universe(n)
            .prediction(condensed.clone());
        let stats = Simulation::builder()
            .protocol(spec.clone())
            .truth(scenario.distribution().clone())
            .runner(config.clone())
            .run()
            .expect("library scenarios always yield a code");
        println!(
            "{:<16} {:>9.3} {:>8.2} {:>14.3} {:>14.3}",
            scenario.name(),
            condensed.entropy(),
            condensed.entropy() * condensed.entropy(),
            stats.success_rate(),
            stats.mean_rounds_when_resolved()
        );

        group.bench_with_input(
            BenchmarkId::from_parameter(scenario.name()),
            &scenario,
            |b, scenario| {
                // Construct once; the measured loop times only the
                // Monte-Carlo execution, as the pre-registry benches did.
                let quick = RunnerConfig::with_trials(64).seeded(0x72).single_threaded();
                let simulation = Simulation::builder()
                    .protocol(spec.clone())
                    .truth(scenario.distribution().clone())
                    .runner(quick.clone())
                    .build()
                    .unwrap();
                b.iter(|| simulation.run().unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, table1_cd);
criterion_main!(benches);
