//! Bench T1-CD: regenerates the collision-detection row of Table 1.
//!
//! Measures the §2.6 coded-search protocol with accurate predictions for
//! every scenario and prints the measured round count next to the `H²`
//! theory column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::{bench_library, BENCH_TRIALS};
use crp_protocols::CodedSearch;
use crp_sim::{measure_cd_strategy, RunnerConfig};

fn table1_cd(c: &mut Criterion) {
    let library = bench_library();
    let config = RunnerConfig::with_trials(BENCH_TRIALS).seeded(0x72);

    println!("\n=== Table 1 / collision detection (n = {}) ===", library.max_size());
    println!("{:<16} {:>9} {:>8} {:>14} {:>14}", "scenario", "H(c(X))", "H^2", "success rate", "mean rounds");

    let mut group = c.benchmark_group("table1_cd");
    group.sample_size(10);
    for scenario in library.all() {
        let condensed = scenario.condensed();
        let protocol = CodedSearch::new(&condensed).expect("library scenarios always yield a code");
        let budget = protocol.horizon().max(2);
        let stats = measure_cd_strategy(&protocol, scenario.distribution(), budget, &config);
        println!(
            "{:<16} {:>9.3} {:>8.2} {:>14.3} {:>14.3}",
            scenario.name(),
            condensed.entropy(),
            condensed.entropy() * condensed.entropy(),
            stats.success_rate(),
            stats.mean_rounds_when_resolved()
        );

        group.bench_with_input(
            BenchmarkId::from_parameter(scenario.name()),
            &scenario,
            |b, scenario| {
                let quick = RunnerConfig::with_trials(64).seeded(0x72).single_threaded();
                b.iter(|| measure_cd_strategy(&protocol, scenario.distribution(), budget, &quick));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, table1_cd);
criterion_main!(benches);
