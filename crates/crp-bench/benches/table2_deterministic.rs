//! Bench T2-DET: regenerates the deterministic rows of Table 2.
//!
//! Sweeps the advice budget `b` and, for an adversarial participant
//! placement, measures the deterministic scan (no collision detection,
//! theory `n / 2^b`) and the deterministic tree descent (collision
//! detection, theory `log n − b`).  The measurement is the table2
//! experiment module's own `det_rounds` helper, so bench and experiment
//! cannot drift apart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_sim::experiments::table2::det_rounds;

const UNIVERSE: usize = 1 << 12;

fn active_set() -> Vec<usize> {
    vec![255, 256, 900, 901, 2047, 3000, 4000]
}

fn rounds(name: &str, b: usize) -> f64 {
    det_rounds(name, UNIVERSE, &active_set(), b)
        .expect("deterministic advice protocols always resolve within their budget")
}

fn table2_deterministic(c: &mut Criterion) {
    let log_n = (UNIVERSE as f64).log2();
    println!("\n=== Table 2 / deterministic (n = {UNIVERSE}) ===");
    println!(
        "{:>2} {:>10} {:>12} {:>12} {:>12}",
        "b", "n/2^b", "scan rounds", "log n - b", "descent rnds"
    );
    for b in 0..=(log_n as usize) {
        println!(
            "{b:>2} {:>10.0} {:>12} {:>12.1} {:>12}",
            UNIVERSE as f64 / 2f64.powi(b as i32),
            rounds("det-advice-no-cd", b),
            (log_n - b as f64).max(1.0),
            rounds("det-advice-cd", b)
        );
    }

    let mut group = c.benchmark_group("table2_deterministic");
    group.sample_size(10);
    for b in [0usize, 4, 8, 12] {
        group.bench_with_input(BenchmarkId::new("scan", b), &b, |bencher, &b| {
            bencher.iter(|| rounds("det-advice-no-cd", b));
        });
        group.bench_with_input(BenchmarkId::new("descent", b), &b, |bencher, &b| {
            bencher.iter(|| rounds("det-advice-cd", b));
        });
    }
    group.finish();
}

criterion_group!(benches, table2_deterministic);
criterion_main!(benches);
