//! Bench T2-DET: regenerates the deterministic rows of Table 2.
//!
//! Sweeps the advice budget `b` and, for an adversarial participant
//! placement, measures the deterministic scan (no collision detection,
//! theory `n / 2^b`) and the deterministic tree descent (collision
//! detection, theory `log n − b`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_channel::{execute, ChannelMode, ExecutionConfig, ParticipantId};
use crp_predict::{AdviceOracle, IdPrefixOracle};
use crp_protocols::{DeterministicCdAdvice, DeterministicNoCdAdvice};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const UNIVERSE: usize = 1 << 12;

fn active_set() -> Vec<usize> {
    vec![255, 256, 900, 901, 2047, 3000, 4000]
}

fn scan_rounds(b: usize) -> usize {
    let active = active_set();
    let advice = IdPrefixOracle.advise(UNIVERSE, &active, b).unwrap();
    let mut nodes: Vec<DeterministicNoCdAdvice> = active
        .iter()
        .map(|&id| DeterministicNoCdAdvice::new(UNIVERSE, ParticipantId(id), &advice).unwrap())
        .collect();
    let budget = nodes[0].worst_case_rounds().max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    execute(
        &mut nodes,
        &ExecutionConfig::new(ChannelMode::NoCollisionDetection, budget),
        &mut rng,
    )
    .rounds
}

fn descent_rounds(b: usize) -> usize {
    let active = active_set();
    let advice = IdPrefixOracle.advise(UNIVERSE, &active, b).unwrap();
    let mut nodes: Vec<DeterministicCdAdvice> = active
        .iter()
        .map(|&id| DeterministicCdAdvice::new(UNIVERSE, ParticipantId(id), &advice).unwrap())
        .collect();
    let budget = nodes[0].worst_case_rounds().max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    execute(
        &mut nodes,
        &ExecutionConfig::new(ChannelMode::CollisionDetection, budget),
        &mut rng,
    )
    .rounds
}

fn table2_deterministic(c: &mut Criterion) {
    let log_n = (UNIVERSE as f64).log2();
    println!("\n=== Table 2 / deterministic (n = {UNIVERSE}) ===");
    println!("{:>2} {:>10} {:>12} {:>12} {:>12}", "b", "n/2^b", "scan rounds", "log n - b", "descent rnds");
    for b in 0..=(log_n as usize) {
        println!(
            "{b:>2} {:>10.0} {:>12} {:>12.1} {:>12}",
            UNIVERSE as f64 / 2f64.powi(b as i32),
            scan_rounds(b),
            (log_n - b as f64).max(1.0),
            descent_rounds(b)
        );
    }

    let mut group = c.benchmark_group("table2_deterministic");
    group.sample_size(10);
    for b in [0usize, 4, 8, 12] {
        group.bench_with_input(BenchmarkId::new("scan", b), &b, |bencher, &b| {
            bencher.iter(|| scan_rounds(b));
        });
        group.bench_with_input(BenchmarkId::new("descent", b), &b, |bencher, &b| {
            bencher.iter(|| descent_rounds(b));
        });
    }
    group.finish();
}

criterion_group!(benches, table2_deterministic);
criterion_main!(benches);
