//! Bench F-OBS: the cost of the observability layer's *disabled* path,
//! recorded as `BENCH_obs.json` at the workspace root.
//!
//! Every shard the runner executes now pays the instrumentation tax —
//! two `Instant::now` reads, a counter increment, a histogram record,
//! and one relaxed-load trace guard — whether or not a trace sink is
//! installed.  The acceptance bar for the layer is that with tracing
//! disabled this tax stays under 5% of a `trial_kernels`-scale
//! workload.  The bench pins that two ways:
//!
//! * it measures the end-to-end workload (batched kernel, the same
//!   ladder as `trial_kernels`) and counts how many instrumented shard
//!   events actually fired via the global registry;
//! * it measures the disabled-path sequence in isolation (a micro loop
//!   over the exact operations `ShardJob::run_inline` added) and
//!   asserts `per_event_cost x events_per_run <= 5%` of the measured
//!   run time on every ladder step;
//! * it measures the span-propagation probe (the trace guard plus the
//!   thread-local `current_span` read a span-aware site performs) the
//!   same way, and pins it to the same 5% bar.
//!
//! The bench never installs a trace sink, so the criterion groups below
//! time the same disabled path the history asserts on.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_protocols::ProtocolSpec;
use crp_sim::{KernelChoice, Simulation, TrialStats};

/// The universe-size ladder; the last step is the headline size.
const LADDER: [usize; 3] = [10_000, 50_000, 1 << 20];

/// Trials per measured run, matching `trial_kernels`.
const TRIALS: usize = 4000;

fn simulation(universe: usize) -> Simulation {
    Simulation::builder()
        .protocol(ProtocolSpec::new("decay").universe(universe))
        .participants((universe / 16).max(2))
        .max_rounds(64 * universe)
        .trials(TRIALS)
        .seed(0xBEEF)
        .kernel(KernelChoice::Batched)
        .build()
        .expect("the bench simulation is valid")
}

/// Runs one configuration, best of three, returning the stats, the
/// fastest wall-clock seconds, and the number of instrumented shard
/// events one run fires (read back from the global registry, so the
/// count is whatever the runner actually recorded).
fn measure(universe: usize) -> (TrialStats, f64, u64) {
    let simulation = simulation(universe);
    let counter = || crp_obs::global().snapshot().counter("sim.shard.execute");
    let mut best = f64::INFINITY;
    let mut stats = None;
    let mut events = 0;
    for _ in 0..3 {
        let before = counter();
        let start = Instant::now();
        let run = simulation.run().expect("the bench simulation runs");
        best = best.min(start.elapsed().as_secs_f64());
        events = counter() - before;
        stats = Some(run);
    }
    (stats.expect("three runs happened"), best, events)
}

/// Simulated rounds per second: the throughput the workload sustains
/// with the instrumentation compiled in and tracing disabled.
fn rounds_per_sec(stats: &TrialStats, seconds: f64) -> f64 {
    stats.mean_rounds_overall() * stats.trials as f64 / seconds.max(1e-12)
}

/// Nanoseconds per disabled-path instrumentation sequence: the exact
/// per-shard additions — timer start/stop, trace guard, counter tick,
/// histogram record — against a scratch registry.
fn disabled_path_cost_ns() -> f64 {
    let registry = crp_obs::MetricsRegistry::new();
    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for index in 0..ITERS {
        let shard_start = Instant::now();
        if crp_obs::trace_enabled() {
            crp_obs::emit(&crp_obs::TraceEvent::new("bench.noop").u64("shard", index));
        }
        let micros = shard_start.elapsed().as_micros() as u64;
        registry.inc("bench.shard.execute");
        registry.observe("bench.shard_micros", micros);
        black_box(micros);
    }
    start.elapsed().as_secs_f64() * 1e9 / ITERS as f64
}

/// Nanoseconds per span probe on the disabled path: the relaxed-load
/// trace guard plus the thread-local `current_span` read — the two
/// operations a span-aware instrumentation site performs before
/// deciding whether to stamp.  No sink is installed and no span is
/// set on the thread, so this times exactly what an uninstrumented
/// run pays for span propagation being compiled in.
fn span_disabled_path_cost_ns() -> f64 {
    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for index in 0..ITERS {
        let stamp = crp_obs::trace_enabled();
        let span = crp_obs::current_span();
        black_box((stamp, span, index));
    }
    start.elapsed().as_secs_f64() * 1e9 / ITERS as f64
}

/// Minimal hand-rolled JSON emission (the workspace has no serde).
fn write_json(fields: &[(String, String)]) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    let body: Vec<String> = fields
        .iter()
        .map(|(key, value)| format!("  \"{key}\": {value}"))
        .collect();
    std::fs::write(&path, format!("{{\n{}\n}}\n", body.join(",\n")))?;
    Ok(path)
}

fn record_history() {
    let per_event_ns = disabled_path_cost_ns();
    let span_probe_ns = span_disabled_path_cost_ns();
    let mut fields = vec![
        ("bench".to_string(), "\"obs\"".to_string()),
        ("trials".to_string(), TRIALS.to_string()),
        (
            "disabled_path_ns_per_event".to_string(),
            format!("{per_event_ns:.1}"),
        ),
        (
            "span_disabled_ns_per_event".to_string(),
            format!("{span_probe_ns:.1}"),
        ),
    ];
    for universe in LADDER {
        let (stats, seconds, events) = measure(universe);
        assert_eq!(stats.trials, TRIALS);
        assert!(events > 0, "the runner recorded no shard events");
        let rps = rounds_per_sec(&stats, seconds);
        let overhead = per_event_ns * 1e-9 * events as f64;
        let ratio = overhead / seconds.max(1e-12);
        println!(
            "n = {universe}: {rps:.0} rounds/s, {events} instrumented events, \
             disabled-path overhead {:.4}% of the run",
            ratio * 100.0
        );
        assert!(
            ratio <= 0.05,
            "disabled-path instrumentation exceeds the 5% bar at n = {universe}: \
             {per_event_ns:.0} ns x {events} events over {seconds:.4}s"
        );
        // Span propagation rides the same per-shard sites, so it is
        // pinned to the same bar: guard-plus-probe cost x events must
        // also stay under 5% of the run with tracing disabled.
        let span_ratio = span_probe_ns * 1e-9 * events as f64 / seconds.max(1e-12);
        assert!(
            span_ratio <= 0.05,
            "span-disabled probe exceeds the 5% bar at n = {universe}: \
             {span_probe_ns:.0} ns x {events} events over {seconds:.4}s"
        );
        fields.push((format!("rps_{universe}"), format!("{rps:.0}")));
        fields.push((format!("events_{universe}"), events.to_string()));
        fields.push((format!("overhead_ratio_{universe}"), format!("{ratio:.6}")));
        fields.push((
            format!("span_overhead_ratio_{universe}"),
            format!("{span_ratio:.6}"),
        ));
    }
    match write_json(&fields) {
        Ok(path) => println!("history written to {}", path.display()),
        Err(err) => println!("could not write BENCH_obs.json: {err}"),
    }
}

fn obs_overhead(c: &mut Criterion) {
    record_history();
    for universe in LADDER {
        let mut group = c.benchmark_group(format!("obs_overhead/{universe}"));
        group.sample_size(10);
        let simulation = simulation(universe);
        group.bench_with_input(
            BenchmarkId::new("disabled", universe),
            &simulation,
            |b, simulation| b.iter(|| black_box(simulation.run().unwrap())),
        );
        group.finish();
    }
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
