//! Bench F-SCALE: the multiplexed event-loop dispatcher versus the
//! legacy thread-per-endpoint scheduler as the fleet grows.
//!
//! The workload isolates *dispatch overhead*: batches of tiny echo jobs
//! over loopback TCP workers whose compute is effectively free, so the
//! drain time is dominated by what the scheduler itself costs — thread
//! spawns and poll tails for the threaded mode, readiness bookkeeping
//! for the event loop.  The threaded scheduler pays one OS thread per
//! endpoint per batch; the event loop multiplexes every endpoint from a
//! single thread, which is the property that lets a dispatcher drive a
//! 100+-worker fleet without 100+ threads.
//!
//! Both modes are timed at a small pool (4 workers, where they must be
//! comparable) and a large one (128 workers, where the event loop must
//! drain at least 3× faster), the overhead is recorded as
//! `BENCH_dispatch.json` at the workspace root, and both modes are
//! checked to produce identical answers.

use std::io::BufReader;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use crp_fleet::{
    read_frame, write_frame, DispatchMode, DispatchTuning, Dispatcher, Message, WorkerEndpoint,
    PROTOCOL_VERSION,
};

/// The small pool where the two schedulers must be comparable.
const SMALL_FLEET: usize = 4;
/// The large pool where single-thread multiplexing must win outright.
const LARGE_FLEET: usize = 128;
/// Tiny jobs per batch, per fleet size: enough that every worker sees
/// work, small enough that compute never dominates.
const JOBS_PER_WORKER: usize = 1;
/// Timed repetitions (the minimum is reported, robust to scheduler
/// noise).
const REPETITIONS: usize = 5;
/// The event loop may be up to this factor slower than the threaded
/// scheduler at the small pool before the assertion fires.
const SMALL_TOLERANCE: f64 = 1.25;
/// The threaded scheduler must be at least this factor slower at the
/// large pool.
const LARGE_FLOOR: f64 = 3.0;

/// Binds `n` in-process loopback echo workers, each served forever from
/// a detached thread.
///
/// These are deliberately *minimal* frame-level workers — hello, then
/// an inline `job` → `done` echo loop — rather than the full
/// `crp_fleet::serve` worker, which spawns a thread per job so pings
/// are answered mid-job.  A tiny echo needs no such concurrency, and
/// leaving it out keeps the measured drain time the *dispatcher's*
/// overhead instead of worker-side thread churn that both modes pay
/// identically.
fn spawn_echo_fleet(n: usize) -> Vec<WorkerEndpoint> {
    (0..n)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
            let addr = listener.local_addr().expect("bound address");
            std::thread::spawn(move || {
                for stream in listener.incoming().flatten() {
                    std::thread::spawn(move || {
                        stream.set_nodelay(true).ok();
                        let mut reader = BufReader::new(stream.try_clone().expect("sockets clone"));
                        let mut writer = stream;
                        let hello = Message::Hello {
                            version: PROTOCOL_VERSION,
                            capacity: 1,
                        };
                        if write_frame(&mut writer, &hello.encode()).is_err() {
                            return;
                        }
                        while let Ok(Some(frame)) = read_frame(&mut reader) {
                            let answer = match Message::decode(&frame) {
                                Ok(Message::Job { id, payload, .. }) => Message::Done {
                                    id,
                                    payload: format!("echo:{payload}"),
                                },
                                Ok(Message::Ping { id }) => Message::Pong { id },
                                Ok(Message::Shutdown) | Err(_) => return,
                                Ok(_) => continue,
                            };
                            if write_frame(&mut writer, &answer.encode()).is_err() {
                                return;
                            }
                        }
                    });
                }
            });
            WorkerEndpoint::tcp(addr.to_string())
        })
        .collect()
}

/// A dispatcher over `endpoints` in `mode` at the default tuning (pinned
/// explicitly so a CI `CRP_FLEET_POLL_MS` cannot skew the comparison).
/// The threaded scheduler's drain is quantized by its per-thread poll
/// interval; the event loop's idle sleep is capped at 2ms regardless of
/// the poll setting — that asymmetry at identical tuning is the win
/// being measured.
fn dispatcher(endpoints: Vec<WorkerEndpoint>, mode: DispatchMode) -> Dispatcher {
    Dispatcher::new(endpoints)
        .with_tuning(DispatchTuning::default())
        .with_mode(mode)
}

/// Best-of-N time to drain one batch of tiny jobs on a *warm* pool (the
/// untimed warm-up batch connects every worker and verifies answers).
fn drain_time(dispatcher: &Dispatcher, jobs: &[String]) -> Duration {
    let answers = dispatcher
        .dispatch(jobs, &|_| {})
        .expect("echo fleet answers");
    assert_eq!(answers.len(), jobs.len());
    for (job, answer) in jobs.iter().zip(&answers) {
        assert_eq!(answer, &format!("echo:{job}"), "echo fleet must echo");
    }
    (0..REPETITIONS)
        .map(|_| {
            let start = Instant::now();
            black_box(dispatcher.dispatch(jobs, &|_| {}).expect("warm batch"));
            start.elapsed()
        })
        .min()
        .expect("at least one repetition")
}

fn batch(workers: usize) -> Vec<String> {
    (0..workers * JOBS_PER_WORKER)
        .map(|i| format!("j{i}"))
        .collect()
}

/// Minimal hand-rolled JSON emission (the workspace has no serde).
fn write_json(fields: &[(String, String)]) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dispatch.json");
    let body: Vec<String> = fields
        .iter()
        .map(|(key, value)| format!("  \"{key}\": {value}"))
        .collect();
    std::fs::write(&path, format!("{{\n{}\n}}\n", body.join(",\n")))?;
    Ok(path)
}

fn scale_comparison() {
    let mut fields = vec![
        ("bench".to_string(), "\"dispatch\"".to_string()),
        ("jobs_per_worker".to_string(), JOBS_PER_WORKER.to_string()),
    ];
    let mut ratios = Vec::new();
    for workers in [SMALL_FLEET, LARGE_FLEET] {
        let endpoints = spawn_echo_fleet(workers);
        let jobs = batch(workers);
        let event = dispatcher(endpoints.clone(), DispatchMode::EventLoop);
        let threaded = dispatcher(endpoints, DispatchMode::Threaded);
        let event_time = drain_time(&event, &jobs);
        let threaded_time = drain_time(&threaded, &jobs);
        let ratio = threaded_time.as_secs_f64() / event_time.as_secs_f64().max(1e-12);
        println!(
            "{workers:>4} workers, {} jobs: event loop {event_time:?}   \
             threaded {threaded_time:?}   threaded/event: {ratio:.2}x",
            jobs.len(),
        );
        fields.push((
            format!("event_us_{workers}"),
            event_time.as_micros().to_string(),
        ));
        fields.push((
            format!("threaded_us_{workers}"),
            threaded_time.as_micros().to_string(),
        ));
        fields.push((format!("ratio_{workers}"), format!("{ratio:.2}")));
        ratios.push((workers, ratio));
    }
    for (workers, ratio) in ratios {
        if workers == SMALL_FLEET {
            assert!(
                ratio >= 1.0 / SMALL_TOLERANCE,
                "event loop slower than threaded at {workers} workers: \
                 threaded/event {ratio:.2}x < {:.2}x",
                1.0 / SMALL_TOLERANCE
            );
        } else {
            assert!(
                ratio >= LARGE_FLOOR,
                "event loop must drain at least {LARGE_FLOOR}x faster than \
                 thread-per-endpoint at {workers} workers, got {ratio:.2}x"
            );
        }
    }
    match write_json(&fields) {
        Ok(path) => println!("history written to {}", path.display()),
        Err(err) => println!("could not write BENCH_dispatch.json: {err}"),
    }
}

fn fleet_scale(c: &mut Criterion) {
    scale_comparison();
    let mut group = c.benchmark_group("fleet_scale");
    group.sample_size(10);
    for workers in [SMALL_FLEET, LARGE_FLEET] {
        let jobs = batch(workers);
        let event = dispatcher(spawn_echo_fleet(workers), DispatchMode::EventLoop);
        group.bench_with_input(
            criterion::BenchmarkId::new("event-loop", workers),
            &jobs,
            |b, jobs| b.iter(|| event.dispatch(jobs, &|_| {}).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, fleet_scale);
criterion_main!(benches);
