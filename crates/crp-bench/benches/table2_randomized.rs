//! Bench T2-RAND: regenerates the randomized rows of Table 2.
//!
//! Sweeps the advice budget `b` and measures the truncated-decay protocol
//! (no collision detection, theory `log n / 2^b`) and the advised Willard
//! search (collision detection, theory `log log n − b`), both built by
//! name through the registry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_protocols::ProtocolSpec;
use crp_sim::experiments::table2::jitter_truth;
use crp_sim::{RunnerConfig, Simulation};

const UNIVERSE: usize = 1 << 16;
const PARTICIPANTS: usize = 900;

fn measure(b: usize, trials: usize) -> (f64, f64) {
    let config = RunnerConfig::with_trials(trials).seeded(0x74);
    let truth = jitter_truth(PARTICIPANTS, UNIVERSE).unwrap();
    let decay_stats = Simulation::builder()
        .protocol(
            ProtocolSpec::new("advised-decay")
                .universe(UNIVERSE)
                .participants(PARTICIPANTS)
                .advice_bits(b),
        )
        .truth(truth.clone())
        .max_rounds(64 * UNIVERSE)
        .runner(config.clone())
        .run()
        .unwrap();
    let willard_stats = Simulation::builder()
        .protocol(
            ProtocolSpec::new("advised-willard")
                .universe(UNIVERSE)
                .participants(PARTICIPANTS)
                .advice_bits(b),
        )
        .truth(truth)
        .runner(config.clone())
        .run()
        .unwrap();
    (
        decay_stats.mean_rounds_overall(),
        willard_stats.mean_rounds_when_resolved(),
    )
}

fn table2_randomized(c: &mut Criterion) {
    let log_n = (UNIVERSE as f64).log2();
    let log_log_n = log_n.log2();
    println!("\n=== Table 2 / randomized (n = {UNIVERSE}, k = {PARTICIPANTS}) ===");
    println!(
        "{:>2} {:>12} {:>16} {:>14} {:>14}",
        "b", "log n / 2^b", "decay E[rounds]", "loglog n - b", "willard rounds"
    );
    for b in 0..=(log_log_n as usize) {
        let (decay_rounds, willard_rounds) = measure(b, 800);
        println!(
            "{b:>2} {:>12.2} {:>16.2} {:>14.2} {:>14.2}",
            (log_n / 2f64.powi(b as i32)).max(1.0),
            decay_rounds,
            (log_log_n - b as f64).max(1.0),
            willard_rounds
        );
    }

    let mut group = c.benchmark_group("table2_randomized");
    group.sample_size(10);
    for b in [0usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bencher, &b| {
            bencher.iter(|| measure(b, 64));
        });
    }
    group.finish();
}

criterion_group!(benches, table2_randomized);
criterion_main!(benches);
