//! Bench F-FUZZ: campaign throughput and shrink cost of the fuzzing
//! subsystem, recorded as `BENCH_fuzz.json` at the workspace root so the
//! numbers accumulate a perf history across revisions.
//!
//! Two measured workloads:
//!
//! * **campaign** — a fixed-seed 12-trace campaign over the shipped
//!   protocols (which must stay violation-free); the headline number is
//!   traces evaluated per second.
//! * **shrink** — the calibrated blind-trust bait campaign with
//!   minimisation enabled; the recorded numbers are the predicate
//!   evaluations spent and the size of the minimal reproducer.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use crp_fuzz::{run_campaign, FuzzConfig};

/// The shipped-protocol campaign: must be clean, measures throughput.
fn campaign_config() -> FuzzConfig {
    FuzzConfig {
        budget: 12,
        seed: 0xBE7C,
        universe: 64,
        steps: 8,
        trials: 80,
        protocols: vec!["decay".into(), "sorted-guess-cycling".into()],
        ..FuzzConfig::default()
    }
}

/// The blind-trust bait campaign: must fail and shrink, measures the
/// minimisation cost (mirrors `crp-fuzz/tests/oracle_and_shrink.rs`).
fn shrink_config() -> FuzzConfig {
    FuzzConfig {
        budget: 6,
        seed: 7,
        universe: 64,
        steps: 8,
        trials: 60,
        protocols: vec!["blind-trust".into()],
        shrink: true,
        max_shrink_evals: 200,
        ..FuzzConfig::default()
    }
}

/// Minimal hand-rolled JSON emission (the workspace has no serde).
fn write_json(fields: &[(&str, String)]) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fuzz.json");
    let body: Vec<String> = fields
        .iter()
        .map(|(key, value)| format!("  \"{key}\": {value}"))
        .collect();
    std::fs::write(&path, format!("{{\n{}\n}}\n", body.join(",\n")))?;
    Ok(path)
}

fn record_history() {
    let campaign = campaign_config();
    let start = Instant::now();
    let report = run_campaign(&campaign).expect("campaign config is valid");
    let elapsed = start.elapsed();
    assert!(
        report.clean(),
        "the shipped protocols must stay violation-free: {:?}",
        report.failures
    );
    let traces_per_sec = report.traces_run as f64 / elapsed.as_secs_f64().max(1e-12);

    let bait = shrink_config();
    let shrink_start = Instant::now();
    let bait_report = run_campaign(&bait).expect("bait config is valid");
    let shrink_elapsed = shrink_start.elapsed();
    assert!(
        !bait_report.failures.is_empty(),
        "the bait protocol must fail so the shrinker has work"
    );
    let shrink_evals: usize = bait_report.failures.iter().map(|f| f.shrink_evals).sum();
    let minimal_events: usize = bait_report
        .failures
        .iter()
        .filter_map(|f| f.minimal.as_ref())
        .map(crp_fuzz::Trace::len)
        .max()
        .expect("shrinking was enabled");

    let fields = [
        ("bench", "\"fuzz\"".to_string()),
        ("traces_run", report.traces_run.to_string()),
        ("campaign_sec", format!("{:.6}", elapsed.as_secs_f64())),
        ("traces_per_sec", format!("{traces_per_sec:.1}")),
        ("shrink_failures", bait_report.failures.len().to_string()),
        ("shrink_evals", shrink_evals.to_string()),
        ("minimal_events", minimal_events.to_string()),
        ("shrink_sec", format!("{:.6}", shrink_elapsed.as_secs_f64())),
    ];
    match write_json(&fields) {
        Ok(path) => println!(
            "\n=== Fuzz campaign ===\n{} traces in {elapsed:?} ({traces_per_sec:.1}/s); \
             bait shrunk to {minimal_events} events in {shrink_evals} evaluations \
             ({shrink_elapsed:?})\nhistory written to {}",
            report.traces_run,
            path.display()
        ),
        Err(err) => println!("could not write BENCH_fuzz.json: {err}"),
    }
}

fn fuzz_campaign(c: &mut Criterion) {
    record_history();
    let config = campaign_config();
    let mut group = c.benchmark_group("fuzz_campaign");
    group.sample_size(10);
    group.bench_with_input(
        criterion::BenchmarkId::new("campaign", config.budget),
        &config,
        |b, config| b.iter(|| black_box(run_campaign(config).unwrap())),
    );
    group.finish();
}

criterion_group!(benches, fuzz_campaign);
criterion_main!(benches);
