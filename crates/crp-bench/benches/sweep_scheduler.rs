//! Bench F-SCHED: the work-stealing sweep scheduler versus sequential
//! cell execution.
//!
//! The workload is the shape the scheduler exists for: a 16-cell grid of
//! *small* cells (4 scenarios × 4 decay columns, two 256-trial shards
//! each) on a multi-threaded runner.  Sequentially, each cell spins up a
//! thread scope for its own two shards and tears it down again — at most
//! two workers are ever busy, sixteen times over.  The work-stealing
//! scheduler feeds all 32 `(cell, shard)` jobs into one global queue
//! under a single thread scope, so every worker stays busy until the
//! grid is done.
//!
//! The bench times both strategies over a few repetitions (taking the
//! minimum, which is robust against scheduling noise) and asserts the
//! work-stealing scheduler is no slower than sequential cells, modulo a
//! small tolerance for timer jitter on single-core machines where the two
//! strategies are equivalent.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use crp_protocols::ProtocolSpec;
use crp_sim::{RunnerConfig, SweepMatrix, SweepProtocol, SweepResults};

/// Grid scale: 4 × 4 = 16 cells, each two 256-trial shards (32 jobs).
const SCENARIOS: usize = 4;
const COLUMNS: usize = 4;
const TRIALS_PER_CELL: usize = 512;
const UNIVERSE: usize = 1 << 10;
const REPETITIONS: usize = 7;

/// Sequential execution may be up to this factor faster before the
/// assertion fires; it absorbs timer jitter without masking a real
/// scheduler regression.
const TOLERANCE: f64 = 1.15;

fn grid() -> SweepMatrix {
    let library = crp_predict::ScenarioLibrary::new(UNIVERSE).expect("bench universe is valid");
    let scenarios = [
        library.bimodal(),
        library.geometric(),
        library.bursty(),
        library.adversarial_drift(),
    ];
    assert_eq!(scenarios.len(), SCENARIOS);
    let mut matrix = SweepMatrix::new()
        .scenarios(scenarios)
        .trials(TRIALS_PER_CELL)
        .runner(RunnerConfig::with_trials(TRIALS_PER_CELL).seeded(17));
    for column in 0..COLUMNS {
        matrix = matrix.protocol(
            SweepProtocol::from_scenario(format!("decay-{column}"), |s| {
                ProtocolSpec::new("decay").universe(s.distribution().max_size())
            })
            .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
        );
    }
    matrix
}

/// The pre-refactor strategy: run each compiled cell's simulation to
/// completion before starting the next (each cell internally parallel).
fn run_sequential_cells(matrix: &SweepMatrix) -> Vec<crp_sim::TrialStats> {
    matrix
        .compile()
        .expect("bench grid compiles")
        .iter()
        .map(|cell| cell.simulation.run().expect("bench cell runs"))
        .collect()
}

/// The work-stealing scheduler: all (cell, shard) jobs in one queue.
fn run_work_stealing(matrix: &SweepMatrix) -> SweepResults {
    matrix.run().expect("bench grid runs")
}

fn time_min<T>(mut body: impl FnMut() -> T) -> Duration {
    // One warm-up, then the minimum over the repetitions.
    black_box(body());
    (0..REPETITIONS)
        .map(|_| {
            let start = Instant::now();
            black_box(body());
            start.elapsed()
        })
        .min()
        .expect("at least one repetition")
}

fn scheduler_comparison() {
    let matrix = grid();
    assert_eq!(matrix.len(), SCENARIOS * COLUMNS);

    // Same statistics either way — the scheduler only changes wall clock.
    let sequential_stats = run_sequential_cells(&matrix);
    let scheduled = run_work_stealing(&matrix);
    for (alone, cell) in sequential_stats.iter().zip(scheduled.cells()) {
        assert_eq!(
            alone, &cell.stats,
            "work stealing changed {}/{}",
            cell.scenario, cell.protocol
        );
    }

    let sequential = time_min(|| run_sequential_cells(&matrix));
    let stealing = time_min(|| run_work_stealing(&matrix));
    let ratio = stealing.as_secs_f64() / sequential.as_secs_f64().max(1e-12);
    println!(
        "\n=== Sweep scheduler ({} cells of {} trials) ===\n\
         sequential cells: {sequential:?}   work stealing: {stealing:?}   \
         stealing/sequential: {ratio:.2}x",
        SCENARIOS * COLUMNS,
        TRIALS_PER_CELL
    );
    assert!(
        ratio <= TOLERANCE,
        "the work-stealing scheduler must be no slower than sequential cells \
         (ratio {ratio:.2}x > tolerance {TOLERANCE}x)"
    );
}

fn sweep_scheduler(c: &mut Criterion) {
    scheduler_comparison();
    let matrix = grid();
    let mut group = c.benchmark_group("sweep_scheduler");
    group.sample_size(5);
    group.bench_with_input(
        criterion::BenchmarkId::new("sequential-cells", matrix.len()),
        &matrix,
        |b, m| b.iter(|| run_sequential_cells(m)),
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("work-stealing", matrix.len()),
        &matrix,
        |b, m| b.iter(|| run_work_stealing(m)),
    );
    group.finish();
}

criterion_group!(benches, sweep_scheduler);
criterion_main!(benches);
