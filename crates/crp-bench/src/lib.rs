//! Benchmark-only crate.
//!
//! The actual benchmark definitions live in `benches/`; this library only
//! exposes small shared helpers so every bench builds its workloads the
//! same way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crp_info::SizeDistribution;
use crp_predict::ScenarioLibrary;

/// The default universe size used by the benches (`2^14`).
pub const BENCH_UNIVERSE: usize = 1 << 14;

/// The default number of Monte-Carlo trials per measured point.
pub const BENCH_TRIALS: usize = 400;

/// The scenario library at the default bench scale.
///
/// # Panics
///
/// Never panics in practice: the bench universe is far above the library's
/// minimum size.
pub fn bench_library() -> ScenarioLibrary {
    ScenarioLibrary::new(BENCH_UNIVERSE).expect("bench universe is large enough")
}

/// A moderately informative ground truth used by several benches.
///
/// # Panics
///
/// Never panics in practice: the parameters are valid for the bench
/// universe.
pub fn bench_truth() -> SizeDistribution {
    SizeDistribution::bimodal(
        BENCH_UNIVERSE,
        BENCH_UNIVERSE / 32,
        BENCH_UNIVERSE / 2,
        0.85,
    )
    .expect("bench distribution parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_valid_workloads() {
        assert_eq!(bench_library().max_size(), BENCH_UNIVERSE);
        let total: f64 = bench_truth().masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
