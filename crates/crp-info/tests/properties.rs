//! Property-style tests for the information-theory substrate, driven by
//! deterministic seeded sweeps (the environment has no `proptest`, so cases
//! are generated from a seeded RNG instead of shrunk strategies).

use crp_info::{
    entropy, huffman_code, kl_divergence, range_index_for_size, range_interval, shannon_fano_code,
    total_variation, CondensedDistribution, SizeDistribution,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A vector of positive weights usable as an unnormalised distribution over
/// sizes `1..=len`, with `len` in `[2, max_len)`.
fn weight_vector(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(2..max_len);
    (0..len).map(|_| rng.gen_range(0.01f64..10.0)).collect()
}

#[test]
fn entropy_is_nonnegative_and_bounded_by_log_support() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for _ in 0..100 {
        let dist = SizeDistribution::from_weights(weight_vector(&mut rng, 64)).unwrap();
        let h = dist.entropy();
        assert!(h >= -1e-12);
        assert!(h <= (dist.max_size() as f64).log2() + 1e-9);
    }
}

#[test]
fn kl_divergence_is_nonnegative() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    for q_seed in 1u64..100 {
        let p_weights = weight_vector(&mut rng, 32);
        let p = SizeDistribution::from_weights(p_weights.clone()).unwrap();
        // Build q on the same support by rotating the weights deterministically.
        let rotation = (q_seed as usize) % p_weights.len();
        let mut q_weights = p_weights.clone();
        q_weights.rotate_left(rotation);
        let q = SizeDistribution::from_weights(q_weights).unwrap();
        let d = kl_divergence(p.masses(), q.masses());
        assert!(d >= -1e-12, "KL divergence {d} negative");
    }
}

#[test]
fn total_variation_is_within_unit_interval() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    for _ in 0..100 {
        let p_weights = weight_vector(&mut rng, 32);
        let q_weights = weight_vector(&mut rng, 32);
        // Pad to a common support length.
        let len = p_weights.len().max(q_weights.len());
        let pad = |mut v: Vec<f64>| {
            v.resize(len, 0.0001);
            v
        };
        let p = SizeDistribution::from_weights(pad(p_weights)).unwrap();
        let q = SizeDistribution::from_weights(pad(q_weights)).unwrap();
        let tv = total_variation(p.masses(), q.masses());
        assert!((0.0..=1.0 + 1e-9).contains(&tv));
    }
}

#[test]
fn condensing_conserves_mass_and_never_raises_entropy() {
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    for _ in 0..100 {
        let dist = SizeDistribution::from_weights(weight_vector(&mut rng, 256)).unwrap();
        let condensed = CondensedDistribution::from_sizes(&dist);
        let total: f64 = condensed.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(condensed.entropy() <= dist.entropy() + 1e-9);
        assert!(condensed.entropy() <= condensed.max_entropy() + 1e-9);
    }
}

#[test]
fn range_index_is_consistent_with_interval() {
    let mut rng = ChaCha8Rng::seed_from_u64(15);
    for _ in 0..500 {
        let size = rng.gen_range(2usize..100_000);
        let index = range_index_for_size(size);
        let (lo, hi) = range_interval(index);
        assert!(
            size >= lo && size <= hi,
            "size {size} not in range {index} = [{lo}, {hi}]"
        );
    }
}

#[test]
fn huffman_satisfies_source_coding_sandwich() {
    let mut rng = ChaCha8Rng::seed_from_u64(16);
    for _ in 0..100 {
        let weights = weight_vector(&mut rng, 24);
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let code = huffman_code(&probs).unwrap();
        let h = entropy(&probs);
        let e = code.expected_length(&probs);
        assert!(e + 1e-9 >= h, "E[len]={e} < H={h}");
        assert!(e <= h + 1.0 + 1e-9, "E[len]={e} > H+1");
        assert!(code.kraft_sum() <= 1.0 + 1e-9);
    }
}

#[test]
fn shannon_fano_never_beats_huffman_and_respects_kraft() {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    for _ in 0..100 {
        let weights = weight_vector(&mut rng, 20);
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let sf = shannon_fano_code(&probs).unwrap();
        let hf = huffman_code(&probs).unwrap();
        assert!(sf.expected_length(&probs) + 1e-9 >= hf.expected_length(&probs));
        assert!(sf.kraft_sum() <= 1.0 + 1e-9);
    }
}

#[test]
fn huffman_codeword_count_matches_alphabet() {
    let mut rng = ChaCha8Rng::seed_from_u64(18);
    for _ in 0..100 {
        let weights = weight_vector(&mut rng, 24);
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let code = huffman_code(&probs).unwrap();
        assert_eq!(code.num_symbols(), probs.len());
        // Every symbol decodes back to itself.
        for s in 0..probs.len() {
            assert_eq!(code.decode_exact(code.codeword(s)), Some(s));
        }
    }
}

#[test]
fn mixing_moves_entropy_monotonically_toward_uniform() {
    let mut rng = ChaCha8Rng::seed_from_u64(19);
    for _ in 0..100 {
        let size_exp = rng.gen_range(3u32..9);
        let lambda = rng.gen_range(0.0f64..1.0);
        let n = 1usize << size_exp;
        let point = SizeDistribution::point_mass(n, 2).unwrap();
        let uniform = SizeDistribution::uniform_sizes(n).unwrap();
        let mixed = point.mix(&uniform, lambda).unwrap();
        assert!(mixed.entropy() <= uniform.entropy() + 1e-9);
        // Mixture entropy is at least the entropy contributed by the uniform part.
        assert!(mixed.entropy() + 1e-9 >= (1.0 - lambda) * uniform.entropy() - 1.0);
    }
}
