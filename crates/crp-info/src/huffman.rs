//! Huffman coding: optimal prefix codes for a known symbol distribution.
//!
//! The §2.6 algorithm "first constructs an optimal code `f` with respect to
//! source `c(Y)`".  Huffman codes are exactly such optimal codes, and their
//! expected length satisfies the Source Coding Theorem sandwich
//! `H(X) ≤ E[len] ≤ H(X) + 1` (and the cross-distribution version with the
//! KL divergence, Theorem 2.3 in the paper).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::coding::{Codeword, PrefixCode};
use crate::error::InfoError;

/// A node in the Huffman merge heap.
#[derive(Debug, Clone)]
struct HeapNode {
    /// Total probability mass of this subtree.
    weight: f64,
    /// Tie-break counter so the heap ordering is total and deterministic.
    order: usize,
    /// Index into the arena.
    node: usize,
}

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.order == other.order
    }
}
impl Eq for HeapNode {}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest weight pops first.
        other
            .weight
            .partial_cmp(&self.weight)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.order.cmp(&self.order))
    }
}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Arena node of the Huffman tree.
#[derive(Debug, Clone)]
enum TreeNode {
    Leaf(usize),
    Internal(usize, usize),
}

/// Builds an optimal (Huffman) prefix code for the given symbol
/// probabilities.
///
/// Zero-probability symbols still receive codewords (they are merged last,
/// so they get the longest words) because the paper's algorithms must be
/// able to handle a target range that the prediction considered impossible.
///
/// # Errors
///
/// Returns [`InfoError::EmptySupport`] if `probabilities` is empty and
/// [`InfoError::InvalidMass`] if any probability is negative or not finite.
///
/// # Example
///
/// ```
/// let code = crp_info::huffman_code(&[0.5, 0.25, 0.125, 0.125]).unwrap();
/// assert_eq!(code.length(0), 1);
/// assert_eq!(code.length(3), 3);
/// ```
pub fn huffman_code(probabilities: &[f64]) -> Result<PrefixCode, InfoError> {
    if probabilities.is_empty() {
        return Err(InfoError::EmptySupport);
    }
    if probabilities.iter().any(|&p| p < 0.0 || !p.is_finite()) {
        return Err(InfoError::InvalidMass {
            sum: probabilities.iter().sum(),
        });
    }
    if probabilities.len() == 1 {
        // A single symbol needs one bit to be a usable (non-empty) codeword
        // in downstream protocols.
        return PrefixCode::new(vec![Codeword::from_str_bits("0")]);
    }

    let mut arena: Vec<TreeNode> = (0..probabilities.len()).map(TreeNode::Leaf).collect();
    let mut heap = BinaryHeap::new();
    for (i, &p) in probabilities.iter().enumerate() {
        heap.push(HeapNode {
            weight: p,
            order: i,
            node: i,
        });
    }
    let mut order = probabilities.len();
    while heap.len() > 1 {
        let a = heap.pop().expect("heap has at least two entries");
        let b = heap.pop().expect("heap has at least two entries");
        arena.push(TreeNode::Internal(a.node, b.node));
        heap.push(HeapNode {
            weight: a.weight + b.weight,
            order,
            node: arena.len() - 1,
        });
        order += 1;
    }
    let root = heap.pop().expect("exactly one root remains").node;

    let mut codewords = vec![Codeword::new(vec![]); probabilities.len()];
    let mut stack = vec![(root, Vec::new())];
    while let Some((node, prefix)) = stack.pop() {
        match &arena[node] {
            TreeNode::Leaf(symbol) => {
                codewords[*symbol] = Codeword::new(prefix);
            }
            TreeNode::Internal(left, right) => {
                let mut left_prefix = prefix.clone();
                left_prefix.push(false);
                let mut right_prefix = prefix;
                right_prefix.push(true);
                stack.push((*left, left_prefix));
                stack.push((*right, right_prefix));
            }
        }
    }
    PrefixCode::new(codewords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy;

    #[test]
    fn dyadic_distribution_gets_exact_lengths() {
        let code = huffman_code(&[0.5, 0.25, 0.125, 0.125]).unwrap();
        assert_eq!(code.length(0), 1);
        assert_eq!(code.length(1), 2);
        assert_eq!(code.length(2), 3);
        assert_eq!(code.length(3), 3);
        let h = entropy(&[0.5, 0.25, 0.125, 0.125]);
        assert!((code.expected_length(&[0.5, 0.25, 0.125, 0.125]) - h).abs() < 1e-12);
    }

    #[test]
    fn expected_length_within_one_bit_of_entropy() {
        let cases: Vec<Vec<f64>> = vec![
            vec![0.9, 0.05, 0.03, 0.02],
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
            vec![0.4, 0.3, 0.2, 0.05, 0.05],
            vec![0.25; 4],
        ];
        for p in cases {
            let code = huffman_code(&p).unwrap();
            let h = entropy(&p);
            let e = code.expected_length(&p);
            assert!(e + 1e-12 >= h, "E[len]={e} < H={h}");
            assert!(e <= h + 1.0 + 1e-12, "E[len]={e} > H+1={}", h + 1.0);
        }
    }

    #[test]
    fn kraft_sum_is_one_for_positive_masses() {
        let code = huffman_code(&[0.2, 0.2, 0.2, 0.2, 0.2]).unwrap();
        assert!((code.kraft_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn handles_zero_probability_symbols() {
        let p = [0.5, 0.5, 0.0, 0.0];
        let code = huffman_code(&p).unwrap();
        assert_eq!(code.num_symbols(), 4);
        // Zero-mass symbols get the longest codewords.
        assert!(code.length(2) >= code.length(0));
        assert!(code.length(3) >= code.length(1));
    }

    #[test]
    fn single_symbol_code_is_usable() {
        let code = huffman_code(&[1.0]).unwrap();
        assert_eq!(code.num_symbols(), 1);
        assert_eq!(code.length(0), 1);
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let code = huffman_code(&[0.9, 0.1]).unwrap();
        assert_eq!(code.length(0), 1);
        assert_eq!(code.length(1), 1);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(huffman_code(&[]).is_err());
        assert!(huffman_code(&[-0.1, 1.1]).is_err());
        assert!(huffman_code(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn deterministic_output_for_same_input() {
        let p = [0.3, 0.3, 0.2, 0.1, 0.1];
        let a = huffman_code(&p).unwrap();
        let b = huffman_code(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_likely_symbols_never_get_longer_codes() {
        let p = [0.45, 0.25, 0.15, 0.1, 0.05];
        let code = huffman_code(&p).unwrap();
        for i in 0..p.len() {
            for j in 0..p.len() {
                if p[i] > p[j] {
                    assert!(
                        code.length(i) <= code.length(j),
                        "symbol {i} (p={}) got a longer code than {j} (p={})",
                        p[i],
                        p[j]
                    );
                }
            }
        }
    }
}
