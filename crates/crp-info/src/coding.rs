//! Prefix codes over a finite alphabet of symbols.
//!
//! The paper's lower bounds convert contention-resolution algorithms into
//! codes for the condensed size distribution and invoke Shannon's Source
//! Coding Theorem; its §2.6 upper bound *uses* an optimal code to schedule
//! the collision-detection search.  [`PrefixCode`] is the shared
//! representation: a mapping from symbol index (a range in `L(n)`) to a
//! binary codeword.

use crate::error::InfoError;

/// A single binary codeword, stored as an explicit bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Codeword {
    bits: Vec<bool>,
}

impl Codeword {
    /// Builds a codeword from explicit bits (most significant first).
    pub fn new(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Builds a codeword from an ASCII string of `'0'`/`'1'` characters.
    ///
    /// # Panics
    ///
    /// Panics if the string contains characters other than `'0'` and `'1'`.
    pub fn from_str_bits(s: &str) -> Self {
        let bits = s
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("codeword strings may only contain 0 and 1, found {other:?}"),
            })
            .collect();
        Self { bits }
    }

    /// Length of the codeword in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if the codeword is empty (length zero).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The individual bits, most significant first.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Codeword) -> bool {
        self.bits.len() <= other.bits.len() && other.bits[..self.bits.len()] == self.bits[..]
    }

    /// Renders the codeword as a `0`/`1` string.
    pub fn to_bit_string(&self) -> String {
        self.bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }
}

impl std::fmt::Display for Codeword {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_bit_string())
    }
}

/// A uniquely decodable prefix code over symbols `0..len()`.
///
/// In this repository the symbols are the geometric ranges of a condensed
/// distribution (symbol `i` is range `i + 1`), but the type is agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixCode {
    codewords: Vec<Codeword>,
}

impl PrefixCode {
    /// Builds a code from one codeword per symbol.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::EmptySupport`] if no codewords are supplied and
    /// [`InfoError::InvalidSize`] if the prefix property is violated (some
    /// codeword is a prefix of another) or any codeword is empty while more
    /// than one symbol exists.
    pub fn new(codewords: Vec<Codeword>) -> Result<Self, InfoError> {
        if codewords.is_empty() {
            return Err(InfoError::EmptySupport);
        }
        if codewords.len() > 1 {
            for (i, a) in codewords.iter().enumerate() {
                if a.is_empty() {
                    return Err(InfoError::InvalidSize {
                        what: format!("codeword for symbol {i} is empty"),
                    });
                }
                for (j, b) in codewords.iter().enumerate() {
                    if i != j && a.is_prefix_of(b) {
                        return Err(InfoError::InvalidSize {
                            what: format!("codeword {i} is a prefix of codeword {j}"),
                        });
                    }
                }
            }
        }
        Ok(Self { codewords })
    }

    /// Number of symbols in the code's alphabet.
    pub fn num_symbols(&self) -> usize {
        self.codewords.len()
    }

    /// The codeword assigned to `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the alphabet.
    pub fn codeword(&self, symbol: usize) -> &Codeword {
        &self.codewords[symbol]
    }

    /// Length in bits of the codeword assigned to `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the alphabet.
    pub fn length(&self, symbol: usize) -> usize {
        self.codewords[symbol].len()
    }

    /// All codeword lengths, indexed by symbol.
    pub fn lengths(&self) -> Vec<usize> {
        self.codewords.iter().map(Codeword::len).collect()
    }

    /// The longest codeword length in the code.
    pub fn max_length(&self) -> usize {
        self.codewords.iter().map(Codeword::len).max().unwrap_or(0)
    }

    /// Expected codeword length under the given symbol probabilities.
    ///
    /// This is the quantity `E(S)` in the paper's Theorems 2.2 and 2.3.
    ///
    /// # Panics
    ///
    /// Panics if `probabilities.len()` differs from the alphabet size.
    pub fn expected_length(&self, probabilities: &[f64]) -> f64 {
        assert_eq!(
            probabilities.len(),
            self.codewords.len(),
            "probability vector must match the code alphabet"
        );
        probabilities
            .iter()
            .zip(self.codewords.iter())
            .map(|(&p, cw)| p * cw.len() as f64)
            .sum()
    }

    /// The Kraft sum `Σ 2^{-len(symbol)}`.
    ///
    /// Any uniquely decodable code satisfies the Kraft inequality
    /// (sum ≤ 1); a complete prefix code has sum exactly 1.
    pub fn kraft_sum(&self) -> f64 {
        self.codewords
            .iter()
            .map(|cw| 2f64.powi(-(cw.len() as i32)))
            .sum()
    }

    /// Symbols grouped by codeword length: element `i` of the result holds
    /// all symbols whose codeword has length `i + 1`, each group sorted
    /// ascending.
    ///
    /// This grouping is exactly the phase structure of the §2.6
    /// collision-detection algorithm ("consider all symbols mapped to codes
    /// of this length, ordered smallest to largest").
    pub fn symbols_by_length(&self) -> Vec<Vec<usize>> {
        let max_len = self.max_length();
        let mut groups = vec![Vec::new(); max_len];
        for (symbol, cw) in self.codewords.iter().enumerate() {
            if cw.is_empty() {
                // A single-symbol code may use the empty word; treat it as
                // length 1 for phase purposes.
                if groups.is_empty() {
                    groups.push(Vec::new());
                }
                groups[0].push(symbol);
            } else {
                groups[cw.len() - 1].push(symbol);
            }
        }
        for g in &mut groups {
            g.sort_unstable();
        }
        groups
    }

    /// Decodes a full bit string into the symbol it encodes, if the bits are
    /// exactly one codeword.
    pub fn decode_exact(&self, bits: &Codeword) -> Option<usize> {
        self.codewords.iter().position(|cw| cw == bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_code() -> PrefixCode {
        PrefixCode::new(vec![
            Codeword::from_str_bits("0"),
            Codeword::from_str_bits("10"),
            Codeword::from_str_bits("11"),
        ])
        .unwrap()
    }

    #[test]
    fn codeword_prefix_relation() {
        let a = Codeword::from_str_bits("10");
        let b = Codeword::from_str_bits("101");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
    }

    #[test]
    fn codeword_display_round_trips() {
        let a = Codeword::from_str_bits("0110");
        assert_eq!(a.to_string(), "0110");
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "only contain 0 and 1")]
    fn codeword_rejects_non_binary() {
        let _ = Codeword::from_str_bits("012");
    }

    #[test]
    fn prefix_code_rejects_prefix_violations() {
        let bad = PrefixCode::new(vec![
            Codeword::from_str_bits("0"),
            Codeword::from_str_bits("01"),
        ]);
        assert!(bad.is_err());
    }

    #[test]
    fn prefix_code_rejects_empty_codeword_in_multi_symbol_code() {
        let bad = PrefixCode::new(vec![Codeword::new(vec![]), Codeword::from_str_bits("1")]);
        assert!(bad.is_err());
    }

    #[test]
    fn single_symbol_code_may_be_empty() {
        let code = PrefixCode::new(vec![Codeword::new(vec![])]).unwrap();
        assert_eq!(code.num_symbols(), 1);
        assert_eq!(code.max_length(), 0);
    }

    #[test]
    fn expected_length_weighted_correctly() {
        let code = simple_code();
        let e = code.expected_length(&[0.5, 0.25, 0.25]);
        assert!((e - 1.5).abs() < 1e-12);
    }

    #[test]
    fn kraft_sum_of_complete_code_is_one() {
        let code = simple_code();
        assert!((code.kraft_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symbols_by_length_groups_correctly() {
        let code = simple_code();
        let groups = code.symbols_by_length();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0]);
        assert_eq!(groups[1], vec![1, 2]);
    }

    #[test]
    fn decode_exact_finds_symbols() {
        let code = simple_code();
        assert_eq!(code.decode_exact(&Codeword::from_str_bits("10")), Some(1));
        assert_eq!(code.decode_exact(&Codeword::from_str_bits("111")), None);
    }

    #[test]
    fn empty_code_rejected() {
        assert!(PrefixCode::new(vec![]).is_err());
    }
}
