//! Small numeric helpers shared across the substrate.

/// `x · log2(x)` with the convention that the value is `0` at `x = 0`.
///
/// Used when summing entropy terms so that zero-probability outcomes do not
/// poison the sum with NaNs.
pub fn xlog2x(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.log2()
    }
}

/// `⌈log2(v)⌉` for a positive integer, with `log2_ceil(1) = 0`.
///
/// # Panics
///
/// Panics if `v == 0`, for which the logarithm is undefined.
pub fn log2_ceil(v: u64) -> u32 {
    assert!(v > 0, "log2_ceil is undefined for zero");
    if v == 1 {
        0
    } else {
        64 - (v - 1).leading_zeros()
    }
}

/// `⌊log2(v)⌋` for a positive integer.
///
/// # Panics
///
/// Panics if `v == 0`, for which the logarithm is undefined.
pub fn log2_floor(v: u64) -> u32 {
    assert!(v > 0, "log2_floor is undefined for zero");
    63 - v.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xlog2x_is_zero_at_zero() {
        assert_eq!(xlog2x(0.0), 0.0);
        assert_eq!(xlog2x(-1.0), 0.0);
    }

    #[test]
    fn xlog2x_matches_direct_computation() {
        let x = 0.3_f64;
        assert!((xlog2x(x) - x * x.log2()).abs() < 1e-15);
    }

    #[test]
    fn log2_ceil_small_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn log2_floor_small_values() {
        assert_eq!(log2_floor(1), 0);
        assert_eq!(log2_floor(2), 1);
        assert_eq!(log2_floor(3), 1);
        assert_eq!(log2_floor(4), 2);
        assert_eq!(log2_floor(1023), 9);
        assert_eq!(log2_floor(1024), 10);
    }

    #[test]
    fn ceil_and_floor_agree_on_powers_of_two() {
        for exp in 0..32u32 {
            let v = 1u64 << exp;
            assert_eq!(log2_ceil(v), exp);
            assert_eq!(log2_floor(v), exp);
        }
    }

    #[test]
    #[should_panic(expected = "undefined for zero")]
    fn log2_ceil_panics_on_zero() {
        let _ = log2_ceil(0);
    }
}
