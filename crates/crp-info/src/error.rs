//! Error type shared by the information-theory substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing distributions or codes.
#[derive(Debug, Clone, PartialEq)]
pub enum InfoError {
    /// A distribution was requested over an empty or degenerate support.
    EmptySupport,
    /// The provided probability masses do not form a distribution
    /// (negative entries or a sum too far from one).
    InvalidMass {
        /// Sum of the provided masses.
        sum: f64,
    },
    /// A network size parameter was outside the valid range for the request.
    InvalidSize {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// A mixture weight or probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for InfoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfoError::EmptySupport => write!(f, "distribution support is empty"),
            InfoError::InvalidMass { sum } => {
                write!(f, "probability masses do not sum to one (sum = {sum})")
            }
            InfoError::InvalidSize { what } => write!(f, "invalid size parameter: {what}"),
            InfoError::InvalidProbability { value } => {
                write!(f, "probability parameter {value} is outside [0, 1]")
            }
        }
    }
}

impl Error for InfoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            InfoError::EmptySupport,
            InfoError::InvalidMass { sum: 0.5 },
            InfoError::InvalidSize {
                what: "n must be at least 2".to_string(),
            },
            InfoError::InvalidProbability { value: 1.5 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_trait_object_is_usable() {
        let err: Box<dyn Error> = Box::new(InfoError::EmptySupport);
        assert!(err.to_string().contains("empty"));
    }
}
