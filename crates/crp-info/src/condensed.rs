//! The paper's condensed distribution `c(X)`.
//!
//! Contention resolution does not need the exact network size — an estimate
//! within a constant factor is enough.  The paper therefore aggregates the
//! probability mass of the size distribution `X` over `⌈log n⌉` geometric
//! ranges: range `i ∈ L(n) = {1, …, ⌈log n⌉}` covers the sizes in
//! `(2^{i-1}, 2^i]`.  All of the paper's bounds are stated in terms of the
//! entropy of this condensed variable `c(X)` and the KL divergence between
//! condensed truth and condensed prediction.

use crate::distribution::SizeDistribution;
use crate::error::InfoError;
use crate::math::log2_ceil;
use crate::{entropy, kl_divergence};

/// Returns the range index `i ∈ L(n)` such that `size ∈ (2^{i-1}, 2^i]`.
///
/// Range indices are 1-based to match the paper: range 1 is `{2}`, range 2
/// is `{3, 4}`, range 3 is `{5..8}`, and so on.  Size 1 is mapped to range 1
/// as well (the paper assumes sizes are at least 2; an early all-transmit
/// round removes the size-1 case, see footnote 4).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn range_index_for_size(size: usize) -> usize {
    assert!(size > 0, "network sizes are positive");
    if size <= 2 {
        1
    } else {
        log2_ceil(size as u64) as usize
    }
}

/// The inclusive size interval `(2^{i-1}, 2^i]` covered by range `i`,
/// returned as `(low, high)` with both endpoints inclusive.
///
/// # Panics
///
/// Panics if `index == 0`; ranges are 1-based.
pub fn range_interval(index: usize) -> (usize, usize) {
    assert!(index >= 1, "range indices are 1-based");
    let low = (1usize << (index - 1)) + 1;
    let high = 1usize << index;
    if index == 1 {
        (2, 2)
    } else {
        (low, high)
    }
}

/// The condensed distribution `c(X)` over the geometric ranges `L(n)`.
///
/// Constructed from a [`SizeDistribution`] (or directly from range masses)
/// and queried by the prediction-augmented protocols and by the experiment
/// harness.
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedDistribution {
    /// `masses[i]` is `Pr(c(X) = i + 1)`, i.e. the mass of range `i + 1`.
    masses: Vec<f64>,
    /// The maximum network size `n` the ranges were derived from.
    max_size: usize,
}

impl CondensedDistribution {
    /// Condenses a size distribution into its `⌈log n⌉` geometric ranges.
    ///
    /// Any mass placed on size 1 by the input is folded into range 1,
    /// mirroring the paper's assumption that the size-1 case is eliminated
    /// by one extra round.
    pub fn from_sizes(dist: &SizeDistribution) -> Self {
        let n = dist.max_size();
        let num_ranges = (log2_ceil(n.max(2) as u64) as usize).max(1);
        let mut masses = vec![0.0; num_ranges];
        for size in 1..=n {
            let p = dist.probability_of(size);
            if p > 0.0 {
                let idx = range_index_for_size(size).min(num_ranges);
                masses[idx - 1] += p;
            }
        }
        Self {
            masses,
            max_size: n,
        }
    }

    /// Builds a condensed distribution directly from per-range masses
    /// (`masses[i]` is the probability of range `i + 1`) for a network of
    /// maximum size `max_size`.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::EmptySupport`] if the vector is empty,
    /// [`InfoError::InvalidSize`] if the number of ranges does not equal
    /// `⌈log max_size⌉`, and [`InfoError::InvalidMass`] if the masses are
    /// negative or do not sum to one.
    pub fn from_range_masses(masses: Vec<f64>, max_size: usize) -> Result<Self, InfoError> {
        let exact = Self::from_range_masses_exact(masses, max_size)?;
        let sum: f64 = exact.masses.iter().sum();
        Ok(Self {
            masses: exact.masses.into_iter().map(|m| m / sum).collect(),
            max_size,
        })
    }

    /// Builds a condensed distribution from an *already-normalised* range
    /// mass vector without re-normalising, so `d.probabilities()`
    /// round-trips bit-exactly through this constructor (the requirement of
    /// serialisation layers such as the multi-process shard backend in
    /// `crp-sim`).
    ///
    /// # Errors
    ///
    /// As [`CondensedDistribution::from_range_masses`].
    pub fn from_range_masses_exact(masses: Vec<f64>, max_size: usize) -> Result<Self, InfoError> {
        if masses.is_empty() {
            return Err(InfoError::EmptySupport);
        }
        let expected = (log2_ceil(max_size.max(2) as u64) as usize).max(1);
        if masses.len() != expected {
            return Err(InfoError::InvalidSize {
                what: format!(
                    "expected {expected} ranges for n={max_size}, got {}",
                    masses.len()
                ),
            });
        }
        if masses.iter().any(|&m| m < 0.0 || !m.is_finite()) {
            return Err(InfoError::InvalidMass {
                sum: masses.iter().sum(),
            });
        }
        let sum: f64 = masses.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(InfoError::InvalidMass { sum });
        }
        Ok(Self { masses, max_size })
    }

    /// Number of ranges `⌈log n⌉` in the support.
    pub fn num_ranges(&self) -> usize {
        self.masses.len()
    }

    /// The maximum network size `n` this condensation was derived from.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Probability of range `index` (1-based).  Out-of-range indices have
    /// probability zero.
    pub fn probability_of_range(&self, index: usize) -> f64 {
        if index == 0 || index > self.masses.len() {
            0.0
        } else {
            self.masses[index - 1]
        }
    }

    /// The per-range probability vector (`probabilities()[i]` is the mass of
    /// range `i + 1`).
    pub fn probabilities(&self) -> &[f64] {
        &self.masses
    }

    /// Shannon entropy `H(c(X))` in bits — the central quantity in all of
    /// the paper's Table 1 bounds.
    pub fn entropy(&self) -> f64 {
        entropy(&self.masses)
    }

    /// Kullback–Leibler divergence `D_KL(c(self) ‖ c(other))` in bits.
    ///
    /// # Panics
    ///
    /// Panics if the two condensed distributions have different numbers of
    /// ranges.
    pub fn kl_divergence(&self, other: &CondensedDistribution) -> f64 {
        kl_divergence(&self.masses, &other.masses)
    }

    /// The maximum achievable condensed entropy for this support,
    /// `log(⌈log n⌉)` bits (uniform over ranges).
    pub fn max_entropy(&self) -> f64 {
        (self.masses.len() as f64).log2()
    }

    /// Range indices sorted by decreasing probability, ties broken toward
    /// smaller ranges.  This is the visit order `π` used by the §2.5
    /// no-collision-detection algorithm.
    pub fn ranges_by_likelihood(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (1..=self.masses.len()).collect();
        order.sort_by(|&a, &b| {
            self.masses[b - 1]
                .partial_cmp(&self.masses[a - 1])
                .expect("probability masses are never NaN")
                .then(a.cmp(&b))
        });
        order
    }

    /// Ranges with non-zero mass, ascending.
    pub fn support(&self) -> Vec<usize> {
        self.masses
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > 0.0)
            .map(|(i, _)| i + 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_index_matches_paper_examples() {
        // Paper: i=1 is {2}, i=2 is {3,4}, i=3 is {5..8}.
        assert_eq!(range_index_for_size(2), 1);
        assert_eq!(range_index_for_size(3), 2);
        assert_eq!(range_index_for_size(4), 2);
        assert_eq!(range_index_for_size(5), 3);
        assert_eq!(range_index_for_size(8), 3);
        assert_eq!(range_index_for_size(9), 4);
        assert_eq!(range_index_for_size(1024), 10);
        assert_eq!(range_index_for_size(1025), 11);
    }

    #[test]
    fn from_range_masses_exact_round_trips_bit_exactly() {
        let sizes =
            SizeDistribution::from_weights(vec![0.3, 1.0, 2.0, 4.0, 1.7, 0.2, 0.9]).unwrap();
        let condensed = CondensedDistribution::from_sizes(&sizes);
        let round_tripped = CondensedDistribution::from_range_masses_exact(
            condensed.probabilities().to_vec(),
            condensed.max_size(),
        )
        .unwrap();
        let bits: Vec<u64> = condensed
            .probabilities()
            .iter()
            .map(|m| m.to_bits())
            .collect();
        let rt_bits: Vec<u64> = round_tripped
            .probabilities()
            .iter()
            .map(|m| m.to_bits())
            .collect();
        assert_eq!(bits, rt_bits, "every range mass must survive bit-for-bit");
        assert_eq!(round_tripped.max_size(), condensed.max_size());
        // Validation still applies: wrong range count and bad masses fail.
        assert!(CondensedDistribution::from_range_masses_exact(vec![1.0], 1024).is_err());
        assert!(CondensedDistribution::from_range_masses_exact(vec![0.5, 0.4], 4).is_err());
        assert!(CondensedDistribution::from_range_masses_exact(vec![], 4).is_err());
    }

    #[test]
    fn range_interval_round_trips_with_index() {
        for index in 1..=16 {
            let (lo, hi) = range_interval(index);
            assert!(lo <= hi);
            for size in [lo, hi] {
                assert_eq!(range_index_for_size(size), index, "size={size}");
            }
        }
    }

    #[test]
    fn condensing_preserves_total_mass() {
        for n in [4usize, 16, 100, 1024, 4096] {
            let d = SizeDistribution::uniform_sizes(n).unwrap();
            let c = CondensedDistribution::from_sizes(&d);
            let total: f64 = c.probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}");
            assert_eq!(c.num_ranges(), log2_ceil(n as u64) as usize);
        }
    }

    #[test]
    fn point_mass_condenses_to_zero_entropy() {
        let d = SizeDistribution::point_mass(4096, 700).unwrap();
        let c = CondensedDistribution::from_sizes(&d);
        assert_eq!(c.entropy(), 0.0);
        assert_eq!(c.support(), vec![range_index_for_size(700)]);
    }

    #[test]
    fn uniform_ranges_condenses_to_near_uniform() {
        let d = SizeDistribution::uniform_ranges(1024).unwrap();
        let c = CondensedDistribution::from_sizes(&d);
        // 10 ranges, each with mass ~1/10.
        assert_eq!(c.num_ranges(), 10);
        for i in 1..=10 {
            assert!(
                (c.probability_of_range(i) - 0.1).abs() < 1e-9,
                "range {i} mass {}",
                c.probability_of_range(i)
            );
        }
        assert!((c.entropy() - c.max_entropy()).abs() < 1e-9);
    }

    #[test]
    fn condensed_entropy_never_exceeds_raw_entropy() {
        for dist in [
            SizeDistribution::uniform_sizes(512).unwrap(),
            SizeDistribution::geometric(512, 0.1).unwrap(),
            SizeDistribution::zipf(512, 1.3).unwrap(),
            SizeDistribution::bimodal(512, 16, 300, 0.7).unwrap(),
        ] {
            let c = CondensedDistribution::from_sizes(&dist);
            assert!(c.entropy() <= dist.entropy() + 1e-9);
        }
    }

    #[test]
    fn ranges_by_likelihood_is_sorted() {
        let d = SizeDistribution::bimodal(1024, 8, 600, 0.8).unwrap();
        let c = CondensedDistribution::from_sizes(&d);
        let order = c.ranges_by_likelihood();
        assert_eq!(order.len(), c.num_ranges());
        for pair in order.windows(2) {
            assert!(
                c.probability_of_range(pair[0]) >= c.probability_of_range(pair[1]),
                "order not non-increasing at {pair:?}"
            );
        }
        // The most likely range is the one containing the primary mode (8).
        assert_eq!(order[0], range_index_for_size(8));
    }

    #[test]
    fn from_range_masses_validates() {
        assert!(CondensedDistribution::from_range_masses(vec![0.5, 0.5], 4).is_ok());
        assert!(CondensedDistribution::from_range_masses(vec![0.5, 0.5], 16).is_err());
        assert!(CondensedDistribution::from_range_masses(vec![0.7, 0.7], 4).is_err());
        assert!(CondensedDistribution::from_range_masses(vec![], 4).is_err());
    }

    #[test]
    fn kl_between_condensed_distributions() {
        let truth =
            CondensedDistribution::from_sizes(&SizeDistribution::geometric(256, 0.2).unwrap());
        let pred =
            CondensedDistribution::from_sizes(&SizeDistribution::uniform_ranges(256).unwrap());
        assert!(truth.kl_divergence(&pred) > 0.0);
        assert_eq!(truth.kl_divergence(&truth), 0.0);
    }

    #[test]
    fn probability_of_range_out_of_bounds_is_zero() {
        let c = CondensedDistribution::from_sizes(&SizeDistribution::uniform_sizes(64).unwrap());
        assert_eq!(c.probability_of_range(0), 0.0);
        assert_eq!(c.probability_of_range(100), 0.0);
    }
}
