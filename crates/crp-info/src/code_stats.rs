//! Statistics about code-length random variables.
//!
//! The paper's Theorems 2.2 and 2.3 bound the *expected codeword length*
//! when symbols from a source `X` are encoded with a code built for a
//! (possibly different) source `Y`.  The helpers here compute and
//! empirically sample that random variable so the experiment harness and the
//! property tests can verify both theorems numerically.

use rand::Rng;

use crate::coding::PrefixCode;
use crate::condensed::CondensedDistribution;

/// Summary statistics of the code-length random variable `S = len(f(X))`.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeLengthStats {
    /// Exact expected length `E[S]` under the source distribution.
    pub expected: f64,
    /// Shortest codeword length that has positive source probability.
    pub min: usize,
    /// Longest codeword length that has positive source probability.
    pub max: usize,
    /// Second moment `E[S²]`, useful for the `O(H²)` collision-detection
    /// bound.
    pub second_moment: f64,
}

/// Computes the exact distribution of code lengths when symbols are drawn
/// from `source` (a condensed distribution over ranges) and encoded with
/// `code` (whose symbol `i` corresponds to range `i + 1`).
///
/// Returns a vector where index `len` holds `Pr(S = len)`.
///
/// # Panics
///
/// Panics if the code's alphabet is smaller than the source's support.
pub fn code_length_distribution(source: &CondensedDistribution, code: &PrefixCode) -> Vec<f64> {
    assert!(
        code.num_symbols() >= source.num_ranges(),
        "code alphabet ({}) smaller than source support ({})",
        code.num_symbols(),
        source.num_ranges()
    );
    let mut dist = vec![0.0; code.max_length() + 1];
    for range in 1..=source.num_ranges() {
        let p = source.probability_of_range(range);
        if p > 0.0 {
            dist[code.length(range - 1)] += p;
        }
    }
    dist
}

/// Computes [`CodeLengthStats`] for `source` encoded with `code`.
///
/// # Panics
///
/// Panics if the code's alphabet is smaller than the source's support.
pub fn code_length_stats(source: &CondensedDistribution, code: &PrefixCode) -> CodeLengthStats {
    let dist = code_length_distribution(source, code);
    let mut expected = 0.0;
    let mut second_moment = 0.0;
    let mut min = usize::MAX;
    let mut max = 0;
    for (len, &p) in dist.iter().enumerate() {
        if p > 0.0 {
            expected += p * len as f64;
            second_moment += p * (len as f64) * (len as f64);
            min = min.min(len);
            max = max.max(len);
        }
    }
    if min == usize::MAX {
        min = 0;
    }
    CodeLengthStats {
        expected,
        min,
        max,
        second_moment,
    }
}

/// Estimates the expected code length by Monte-Carlo sampling `trials`
/// ranges from `source` and encoding each with `code`.
///
/// Used by integration tests to cross-check the exact computation and by
/// the experiment harness when the source is only available as a sampler.
///
/// # Panics
///
/// Panics if `trials == 0` or if the code's alphabet is smaller than the
/// source's support.
pub fn empirical_expected_length<R: Rng + ?Sized>(
    source: &CondensedDistribution,
    code: &PrefixCode,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "at least one trial is required");
    assert!(
        code.num_symbols() >= source.num_ranges(),
        "code alphabet smaller than source support"
    );
    let probs = source.probabilities();
    let cumulative: Vec<f64> = probs
        .iter()
        .scan(0.0, |acc, &p| {
            *acc += p;
            Some(*acc)
        })
        .collect();
    let mut total = 0usize;
    for _ in 0..trials {
        let u: f64 = rng.gen();
        let range = cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(probs.len() - 1);
        total += code.length(range);
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::SizeDistribution;
    use crate::{huffman_code, kl_divergence};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn condensed(dist: &SizeDistribution) -> CondensedDistribution {
        CondensedDistribution::from_sizes(dist)
    }

    #[test]
    fn length_distribution_sums_to_one() {
        let c = condensed(&SizeDistribution::geometric(1024, 0.15).unwrap());
        let code = huffman_code(c.probabilities()).unwrap();
        let dist = code_length_distribution(&c, &code);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn source_coding_theorem_lower_bound_holds() {
        // Theorem 2.2: H(X) <= E(S) for the optimal code built for X.
        for dist in [
            SizeDistribution::uniform_ranges(4096).unwrap(),
            SizeDistribution::geometric(4096, 0.05).unwrap(),
            SizeDistribution::zipf(4096, 1.1).unwrap(),
            SizeDistribution::bimodal(4096, 10, 3000, 0.6).unwrap(),
        ] {
            let c = condensed(&dist);
            let code = huffman_code(c.probabilities()).unwrap();
            let stats = code_length_stats(&c, &code);
            assert!(
                stats.expected + 1e-9 >= c.entropy(),
                "E[S]={} < H={}",
                stats.expected,
                c.entropy()
            );
            assert!(stats.expected <= c.entropy() + 1.0 + 1e-9);
        }
    }

    #[test]
    fn cross_coding_theorem_bounds_hold() {
        // Theorem 2.3: H(X) + D_KL(X||Y) <= E(S) <= H(X) + D_KL(X||Y) + 1
        // when the optimal code for Y encodes symbols from X.
        let truth = condensed(&SizeDistribution::geometric(2048, 0.1).unwrap());
        let prediction = condensed(&SizeDistribution::zipf(2048, 1.4).unwrap());
        let code_for_prediction = huffman_code(prediction.probabilities()).unwrap();
        let stats = code_length_stats(&truth, &code_for_prediction);
        let h = truth.entropy();
        let d = kl_divergence(truth.probabilities(), prediction.probabilities());
        assert!(d.is_finite());
        // Huffman built for Y is optimal for Y, so the upper sandwich holds
        // with the +1 slack; the lower bound holds for any uniquely
        // decodable code.
        assert!(
            stats.expected <= h + d + 1.0 + 1e-9,
            "E[S]={} > H+D+1={}",
            stats.expected,
            h + d + 1.0
        );
        assert!(
            stats.expected + 1e-9 >= h,
            "E[S]={} < H={h}",
            stats.expected
        );
    }

    #[test]
    fn stats_min_max_reflect_support() {
        let c = condensed(&SizeDistribution::point_mass(1024, 100).unwrap());
        let code = huffman_code(c.probabilities()).unwrap();
        let stats = code_length_stats(&c, &code);
        assert_eq!(stats.min, stats.max);
        assert!((stats.expected - stats.min as f64).abs() < 1e-12);
        assert!((stats.second_moment - (stats.min * stats.min) as f64).abs() < 1e-12);
    }

    #[test]
    fn empirical_estimate_matches_exact_value() {
        let c = condensed(&SizeDistribution::bimodal(2048, 20, 900, 0.75).unwrap());
        let code = huffman_code(c.probabilities()).unwrap();
        let exact = code_length_stats(&c, &code).expected;
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sampled = empirical_expected_length(&c, &code, 20_000, &mut rng);
        assert!(
            (sampled - exact).abs() < 0.1,
            "sampled={sampled}, exact={exact}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empirical_estimate_requires_trials() {
        let c = condensed(&SizeDistribution::uniform_sizes(64).unwrap());
        let code = huffman_code(c.probabilities()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = empirical_expected_length(&c, &code, 0, &mut rng);
    }
}
