//! Information-theory substrate for the *Contention Resolution with
//! Predictions* reproduction.
//!
//! The paper (Gilbert, Newport, Vaidya, Weaver — PODC 2021) builds its lower
//! and upper bounds on a connection between contention resolution and coding
//! on noiseless channels.  Everything that connection needs lives here:
//!
//! * [`SizeDistribution`] — a discrete probability distribution over network
//!   sizes `1..=n`, the random variable the paper calls `X` (or `Y` when it
//!   is a prediction).  Provides Shannon entropy, Kullback–Leibler
//!   divergence, total-variation distance and sampling.
//! * [`CondensedDistribution`] — the paper's `c(X)`: probability mass
//!   aggregated over the `⌈log n⌉` geometric size ranges `(2^{i-1}, 2^i]`.
//! * [`PrefixCode`], [`huffman_code`], [`shannon_fano_code`] — uniquely
//!   decodable prefix codes over an alphabet of ranges, used by the §2.6
//!   collision-detection algorithm and by the empirical verification of the
//!   Source Coding Theorem bounds (Theorems 2.2 and 2.3 in the paper).
//!
//! # Example
//!
//! ```
//! use crp_info::{SizeDistribution, CondensedDistribution, huffman_code};
//!
//! # fn main() -> Result<(), crp_info::InfoError> {
//! // A network whose size is usually ~64 devices but occasionally ~1024.
//! let dist = SizeDistribution::bimodal(2048, 64, 1024, 0.9)?;
//! let condensed = CondensedDistribution::from_sizes(&dist);
//! let code = huffman_code(condensed.probabilities())?;
//! assert!(code.expected_length(condensed.probabilities()) < condensed.entropy() + 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code_stats;
mod coding;
mod condensed;
mod distribution;
mod error;
mod huffman;
mod math;
mod shannon_fano;

pub use code_stats::{
    code_length_distribution, code_length_stats, empirical_expected_length, CodeLengthStats,
};
pub use coding::{Codeword, PrefixCode};
pub use condensed::{range_index_for_size, range_interval, CondensedDistribution};
pub use distribution::SizeDistribution;
pub use error::InfoError;
pub use huffman::huffman_code;
pub use math::{log2_ceil, log2_floor, xlog2x};
pub use shannon_fano::shannon_fano_code;

/// Shannon entropy (base 2) of an arbitrary probability vector.
///
/// Zero-probability entries contribute nothing (the usual `0 · log 0 = 0`
/// convention).  The input does not have to be normalised exactly; small
/// floating-point drift is tolerated because entropy is computed directly
/// from the provided masses.
///
/// # Example
///
/// ```
/// let h = crp_info::entropy(&[0.5, 0.5]);
/// assert!((h - 1.0).abs() < 1e-12);
/// ```
pub fn entropy(probabilities: &[f64]) -> f64 {
    probabilities.iter().map(|&p| -math::xlog2x(p)).sum()
}

/// Kullback–Leibler divergence `D_KL(p ‖ q)` in bits.
///
/// This is the quantity the paper uses to price miscalibrated predictions
/// (Theorems 2.3, 2.12 and 2.16).  Entries where `p[i] = 0` contribute
/// nothing.  If some `p[i] > 0` while `q[i] = 0` the divergence is infinite,
/// represented as `f64::INFINITY`.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(
        p.len(),
        q.len(),
        "kl_divergence requires equal-length distributions"
    );
    let mut total = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        total += pi * (pi / qi).log2();
    }
    total.max(0.0)
}

/// Total-variation distance `½ Σ |p_i − q_i|`.
///
/// Not used by the paper's theorems directly but handy for characterising
/// the noise models in the experiment harness.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(
        p.len(),
        q.len(),
        "total_variation requires equal-length distributions"
    );
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| (pi - qi).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_pair_is_one_bit() {
        assert!((entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_over_eight_is_three_bits() {
        let p = vec![0.125; 8];
        assert!((entropy(&p) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_of_identical_distributions_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
    }

    #[test]
    fn kl_divergence_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_divergence_infinite_when_support_not_covered() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!(kl_divergence(&p, &q).is_infinite());
    }

    #[test]
    fn kl_divergence_is_asymmetric_in_general() {
        let p = [0.8, 0.2];
        let q = [0.3, 0.7];
        let forward = kl_divergence(&p, &q);
        let backward = kl_divergence(&q, &p);
        assert!((forward - backward).abs() > 1e-6);
    }

    #[test]
    fn total_variation_bounds() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn kl_divergence_panics_on_length_mismatch() {
        let _ = kl_divergence(&[1.0], &[0.5, 0.5]);
    }
}
