//! Discrete probability distributions over network sizes.
//!
//! The paper models the number of participants as a random variable `X`
//! taking values in `1..=n`.  [`SizeDistribution`] stores the full
//! probability vector and provides the information-theoretic quantities the
//! paper's theorems are expressed with, plus sampling for the experiment
//! harness.

use std::sync::OnceLock;

use rand::Rng;

use crate::error::InfoError;
use crate::{entropy, kl_divergence, total_variation};

/// Tolerance accepted when validating that probability masses sum to one.
const MASS_TOLERANCE: f64 = 1e-6;

/// A Vose alias table: O(1) sampling from a discrete distribution.
///
/// Construction is O(n); each draw consumes a single uniform variate, which
/// is split into a column index and an in-column coin.  This replaces the
/// seed implementation's per-call `WeightedIndex` rebuild (O(n) *per
/// sample*) on the Monte-Carlo hot path.
#[derive(Debug, Clone)]
struct AliasTable {
    /// Acceptance threshold of each column, scaled to `[0, 1]`.
    prob: Vec<f64>,
    /// Donor index sampled when the in-column coin rejects.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from a normalised probability vector.
    fn new(masses: &[f64]) -> Self {
        let n = masses.len();
        let scale = n as f64;
        let mut residual: Vec<f64> = masses.iter().map(|&m| m * scale).collect();
        let mut prob = vec![0.0; n];
        let mut alias: Vec<usize> = (0..n).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (index, &r) in residual.iter().enumerate() {
            if r < 1.0 {
                small.push(index);
            } else {
                large.push(index);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = residual[s];
            alias[s] = l;
            residual[l] = (residual[l] + residual[s]) - 1.0;
            if residual[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains has residual 1 up to floating-point error (the
        // residuals always sum to the number of unassigned columns).
        for l in large {
            prob[l] = 1.0;
        }
        for s in small {
            prob[s] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draws one index, consuming exactly one uniform variate.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let scaled = u * self.prob.len() as f64;
        let column = (scaled as usize).min(self.prob.len() - 1);
        let coin = scaled - column as f64;
        if coin < self.prob[column] {
            column
        } else {
            self.alias[column]
        }
    }
}

/// A discrete probability distribution over network sizes `1..=n`.
///
/// Index `i` of the internal vector holds `Pr(X = i + 1)`, i.e. the mass of
/// network size `i + 1`.  The distribution is validated and re-normalised on
/// construction so that downstream entropy / divergence computations are
/// numerically stable.
///
/// The paper assumes the network size is at least 2 ("there is no contention
/// to resolve in a network of size less than 2"); the convenience
/// constructors in this type therefore place no mass on size 1, although
/// arbitrary vectors that include size-1 mass are still accepted via
/// [`SizeDistribution::from_masses`].
#[derive(Debug, Clone)]
pub struct SizeDistribution {
    /// `masses[i]` is the probability of network size `i + 1`.
    masses: Vec<f64>,
    /// Alias table for O(1) sampling, built lazily on the first draw so
    /// distributions that are only analysed (entropy, divergence) pay
    /// nothing.
    alias: OnceLock<AliasTable>,
}

/// Equality is defined by the probability masses alone; whether the sampling
/// table has been materialised yet is an implementation detail.
impl PartialEq for SizeDistribution {
    fn eq(&self, other: &Self) -> bool {
        self.masses == other.masses
    }
}

impl SizeDistribution {
    /// Wraps an already-normalised mass vector.
    fn from_normalised(masses: Vec<f64>) -> Self {
        Self {
            masses,
            alias: OnceLock::new(),
        }
    }
    /// Builds a distribution from raw probability masses over sizes
    /// `1..=masses.len()`.
    ///
    /// The masses are re-normalised to sum exactly to one.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::EmptySupport`] for an empty vector,
    /// [`InfoError::InvalidMass`] if any entry is negative, not finite, or
    /// the total mass differs from one by more than `1e-6` before
    /// re-normalisation.
    pub fn from_masses(masses: Vec<f64>) -> Result<Self, InfoError> {
        let exact = Self::from_masses_exact(masses)?;
        let sum: f64 = exact.masses.iter().sum();
        let masses = exact.masses.into_iter().map(|m| m / sum).collect();
        Ok(Self::from_normalised(masses))
    }

    /// Builds a distribution from an *already-normalised* mass vector
    /// without re-normalising, so `d.masses()` round-trips bit-exactly
    /// through this constructor.
    ///
    /// This is the constructor serialisation layers (e.g. the multi-process
    /// shard backend in `crp-sim`) must use: [`SizeDistribution::from_masses`]
    /// divides every entry by the observed sum, which can perturb the last
    /// bits of each mass and would make deserialised distributions sample
    /// differently from the originals.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::EmptySupport`] for an empty vector and
    /// [`InfoError::InvalidMass`] if any entry is negative, not finite, or
    /// the total mass differs from one by more than `1e-6`.
    pub fn from_masses_exact(masses: Vec<f64>) -> Result<Self, InfoError> {
        if masses.is_empty() {
            return Err(InfoError::EmptySupport);
        }
        if masses.iter().any(|&m| m < 0.0 || !m.is_finite()) {
            return Err(InfoError::InvalidMass {
                sum: masses.iter().sum(),
            });
        }
        let sum: f64 = masses.iter().sum();
        if (sum - 1.0).abs() > MASS_TOLERANCE {
            return Err(InfoError::InvalidMass { sum });
        }
        Ok(Self::from_normalised(masses))
    }

    /// Builds a distribution from *unnormalised* non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::EmptySupport`] for an empty vector and
    /// [`InfoError::InvalidMass`] if any weight is negative, not finite, or
    /// all weights are zero.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, InfoError> {
        if weights.is_empty() {
            return Err(InfoError::EmptySupport);
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(InfoError::InvalidMass {
                sum: weights.iter().sum(),
            });
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err(InfoError::InvalidMass { sum });
        }
        let masses = weights.into_iter().map(|w| w / sum).collect();
        Ok(Self::from_normalised(masses))
    }

    /// A point mass: the network size is always exactly `size`.
    ///
    /// This is the "perfect prediction" extreme the paper mentions: the
    /// condensed entropy is zero and contention can be resolved in `O(1)`
    /// expected rounds.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidSize`] unless `2 ≤ size ≤ n`.
    pub fn point_mass(n: usize, size: usize) -> Result<Self, InfoError> {
        if n < 2 || size < 2 || size > n {
            return Err(InfoError::InvalidSize {
                what: format!("point mass requires 2 <= size <= n, got size={size}, n={n}"),
            });
        }
        let mut masses = vec![0.0; n];
        masses[size - 1] = 1.0;
        Ok(Self::from_normalised(masses))
    }

    /// Uniform distribution over all sizes `2..=n`.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidSize`] if `n < 2`.
    pub fn uniform_sizes(n: usize) -> Result<Self, InfoError> {
        if n < 2 {
            return Err(InfoError::InvalidSize {
                what: format!("uniform_sizes requires n >= 2, got {n}"),
            });
        }
        let mut masses = vec![0.0; n];
        let p = 1.0 / (n - 1) as f64;
        for m in masses.iter_mut().skip(1) {
            *m = p;
        }
        Ok(Self::from_normalised(masses))
    }

    /// Uniform distribution over the `⌈log n⌉` *geometric ranges*, with the
    /// mass of range `i` spread uniformly over the sizes in `(2^{i-1}, 2^i]`.
    ///
    /// This is the maximum-condensed-entropy distribution: its condensed
    /// version `c(X)` is uniform over `L(n)`, so `H(c(X)) ≈ log log n`, the
    /// regime where the paper's bounds match the classical worst-case
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidSize`] if `n < 2`.
    pub fn uniform_ranges(n: usize) -> Result<Self, InfoError> {
        if n < 2 {
            return Err(InfoError::InvalidSize {
                what: format!("uniform_ranges requires n >= 2, got {n}"),
            });
        }
        let num_ranges = crate::math::log2_ceil(n as u64).max(1) as usize;
        let per_range = 1.0 / num_ranges as f64;
        let mut masses = vec![0.0; n];
        for range in 1..=num_ranges {
            let lo = (1usize << (range - 1)) + 1;
            let hi = (1usize << range).min(n);
            if lo > hi {
                // Last range may be clipped empty if n is not a power of two
                // minus one; fold its mass into the previous range instead.
                continue;
            }
            let count = hi - lo + 1;
            let per_size = per_range / count as f64;
            for size in lo..=hi {
                masses[size - 1] += per_size;
            }
        }
        Self::from_weights(masses)
    }

    /// A truncated geometric distribution over sizes `2..=n`:
    /// `Pr(X = k) ∝ (1 − ratio)^{k − 2}`.
    ///
    /// Models networks that are usually small but occasionally large.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidSize`] if `n < 2` and
    /// [`InfoError::InvalidProbability`] unless `0 < ratio < 1`.
    pub fn geometric(n: usize, ratio: f64) -> Result<Self, InfoError> {
        if n < 2 {
            return Err(InfoError::InvalidSize {
                what: format!("geometric requires n >= 2, got {n}"),
            });
        }
        if !(0.0..1.0).contains(&ratio) || ratio <= 0.0 {
            return Err(InfoError::InvalidProbability { value: ratio });
        }
        let mut weights = vec![0.0; n];
        let mut w = 1.0;
        for size in 2..=n {
            weights[size - 1] = w;
            w *= 1.0 - ratio;
        }
        Self::from_weights(weights)
    }

    /// A Zipf-like distribution over sizes `2..=n`:
    /// `Pr(X = k) ∝ k^{-exponent}`.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidSize`] if `n < 2` and
    /// [`InfoError::InvalidProbability`] if the exponent is not positive and
    /// finite.
    pub fn zipf(n: usize, exponent: f64) -> Result<Self, InfoError> {
        if n < 2 {
            return Err(InfoError::InvalidSize {
                what: format!("zipf requires n >= 2, got {n}"),
            });
        }
        if exponent <= 0.0 || !exponent.is_finite() {
            return Err(InfoError::InvalidProbability { value: exponent });
        }
        let mut weights = vec![0.0; n];
        for size in 2..=n {
            weights[size - 1] = (size as f64).powf(-exponent);
        }
        Self::from_weights(weights)
    }

    /// A two-mode distribution putting mass `weight_primary` near
    /// `primary` and the remainder near `secondary` (each mode is a small
    /// geometric bump over a handful of adjacent sizes).
    ///
    /// Models, e.g., a sensor network whose active population is usually one
    /// cluster but occasionally two.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidSize`] unless `2 ≤ primary, secondary ≤ n`
    /// and [`InfoError::InvalidProbability`] unless
    /// `0 ≤ weight_primary ≤ 1`.
    pub fn bimodal(
        n: usize,
        primary: usize,
        secondary: usize,
        weight_primary: f64,
    ) -> Result<Self, InfoError> {
        if n < 2 || primary < 2 || primary > n || secondary < 2 || secondary > n {
            return Err(InfoError::InvalidSize {
                what: format!(
                    "bimodal requires 2 <= primary, secondary <= n, got primary={primary}, secondary={secondary}, n={n}"
                ),
            });
        }
        if !(0.0..=1.0).contains(&weight_primary) {
            return Err(InfoError::InvalidProbability {
                value: weight_primary,
            });
        }
        let mut weights = vec![0.0; n];
        let spread = |weights: &mut Vec<f64>, center: usize, total: f64| {
            // Spread each mode over center-1..=center+1 with 25/50/25 split,
            // clipped to the valid size range.
            let parts = [
                (center.saturating_sub(1).max(2), 0.25),
                (center, 0.5),
                ((center + 1).min(n), 0.25),
            ];
            let norm: f64 = parts.iter().map(|&(_, w)| w).sum();
            for (size, w) in parts {
                weights[size - 1] += total * w / norm;
            }
        };
        spread(&mut weights, primary, weight_primary);
        spread(&mut weights, secondary, 1.0 - weight_primary);
        Self::from_weights(weights)
    }

    /// A mixture of point masses: the network size is exactly `size` with
    /// probability proportional to `weight`, for each `(size, weight)`
    /// component.
    ///
    /// Models bursty arrival workloads where the active population jumps
    /// between a handful of discrete levels (idle cluster, regular load,
    /// synchronized burst) with nothing in between.
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::EmptySupport`] for an empty component list,
    /// [`InfoError::InvalidSize`] unless every component size is in
    /// `[2, n]`, and [`InfoError::InvalidMass`] if any weight is negative,
    /// not finite, or all weights are zero.
    pub fn mixture_of_point_masses(
        n: usize,
        components: &[(usize, f64)],
    ) -> Result<Self, InfoError> {
        if components.is_empty() {
            return Err(InfoError::EmptySupport);
        }
        let mut weights = vec![0.0; n.max(2)];
        for &(size, weight) in components {
            if size < 2 || size > n {
                return Err(InfoError::InvalidSize {
                    what: format!(
                        "mixture component requires 2 <= size <= n, got size={size}, n={n}"
                    ),
                });
            }
            if weight < 0.0 || !weight.is_finite() {
                return Err(InfoError::InvalidMass { sum: weight });
            }
            weights[size - 1] += weight;
        }
        Self::from_weights(weights)
    }

    /// Maximum representable network size `n` (the length of the mass
    /// vector).
    pub fn max_size(&self) -> usize {
        self.masses.len()
    }

    /// Probability that the network size equals `size`.
    ///
    /// Sizes outside `1..=n` have probability zero.
    pub fn probability_of(&self, size: usize) -> f64 {
        if size == 0 || size > self.masses.len() {
            0.0
        } else {
            self.masses[size - 1]
        }
    }

    /// The full probability vector over sizes `1..=n` (index `i` is size
    /// `i + 1`).
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Shannon entropy of the raw (uncondensed) distribution, in bits.
    pub fn entropy(&self) -> f64 {
        entropy(&self.masses)
    }

    /// Kullback–Leibler divergence `D_KL(self ‖ other)` in bits.
    ///
    /// # Panics
    ///
    /// Panics if the two distributions have different maximum sizes.
    pub fn kl_divergence(&self, other: &SizeDistribution) -> f64 {
        kl_divergence(&self.masses, &other.masses)
    }

    /// Total-variation distance between the two distributions.
    ///
    /// # Panics
    ///
    /// Panics if the two distributions have different maximum sizes.
    pub fn total_variation(&self, other: &SizeDistribution) -> f64 {
        total_variation(&self.masses, &other.masses)
    }

    /// Draws a network size from the distribution in O(1).
    ///
    /// The first draw builds a Vose alias table (O(n)); every subsequent
    /// draw is constant-time and consumes exactly one uniform variate.
    /// (The seed implementation rebuilt a `WeightedIndex` cumulative table
    /// on every call, making each draw O(n).)
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.alias_table().sample(rng) + 1
    }

    /// The cached alias table, built on first use.
    fn alias_table(&self) -> &AliasTable {
        self.alias.get_or_init(|| AliasTable::new(&self.masses))
    }

    /// Support of the distribution: all sizes with non-zero mass, ascending.
    pub fn support(&self) -> Vec<usize> {
        self.masses
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > 0.0)
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// Mixes two distributions: `lambda · self + (1 − lambda) · other`.
    ///
    /// Useful for sweeping entropy between a point mass and the uniform
    /// distribution (experiment `F-ENTROPY`).
    ///
    /// # Errors
    ///
    /// Returns [`InfoError::InvalidProbability`] unless `0 ≤ lambda ≤ 1` and
    /// [`InfoError::InvalidSize`] if the supports have different lengths.
    pub fn mix(&self, other: &SizeDistribution, lambda: f64) -> Result<Self, InfoError> {
        if !(0.0..=1.0).contains(&lambda) {
            return Err(InfoError::InvalidProbability { value: lambda });
        }
        if self.masses.len() != other.masses.len() {
            return Err(InfoError::InvalidSize {
                what: format!(
                    "mix requires equal supports, got {} and {}",
                    self.masses.len(),
                    other.masses.len()
                ),
            });
        }
        let masses = self
            .masses
            .iter()
            .zip(other.masses.iter())
            .map(|(&a, &b)| lambda * a + (1.0 - lambda) * b)
            .collect();
        Self::from_weights(masses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn from_masses_validates_sum() {
        assert!(SizeDistribution::from_masses(vec![0.5, 0.4]).is_err());
        assert!(SizeDistribution::from_masses(vec![0.5, 0.5]).is_ok());
        assert!(SizeDistribution::from_masses(vec![]).is_err());
        assert!(SizeDistribution::from_masses(vec![-0.5, 1.5]).is_err());
    }

    #[test]
    fn from_masses_exact_round_trips_bit_exactly() {
        // from_weights produces masses whose sum is not exactly 1.0 in
        // general; from_masses would re-normalise (and perturb) them,
        // from_masses_exact must not.
        let d = SizeDistribution::from_weights(vec![1.0, 2.0, 4.0, 0.1, 7.3]).unwrap();
        let round_tripped = SizeDistribution::from_masses_exact(d.masses().to_vec()).unwrap();
        assert_eq!(d.masses(), round_tripped.masses());
        let bits: Vec<u64> = d.masses().iter().map(|m| m.to_bits()).collect();
        let rt_bits: Vec<u64> = round_tripped.masses().iter().map(|m| m.to_bits()).collect();
        assert_eq!(bits, rt_bits, "every mass must survive bit-for-bit");
        // Same masses -> same samples from the same stream.
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), round_tripped.sample(&mut b));
        }
        // Validation still applies.
        assert!(SizeDistribution::from_masses_exact(vec![]).is_err());
        assert!(SizeDistribution::from_masses_exact(vec![0.5, 0.4]).is_err());
        assert!(SizeDistribution::from_masses_exact(vec![-0.5, 1.5]).is_err());
    }

    #[test]
    fn from_weights_normalises() {
        let d = SizeDistribution::from_weights(vec![2.0, 2.0]).unwrap();
        assert!((d.probability_of(1) - 0.5).abs() < 1e-12);
        assert!((d.probability_of(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rejects_all_zero() {
        assert!(SizeDistribution::from_weights(vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn point_mass_has_zero_entropy() {
        let d = SizeDistribution::point_mass(1024, 37).unwrap();
        assert_eq!(d.entropy(), 0.0);
        assert_eq!(d.probability_of(37), 1.0);
        assert_eq!(d.support(), vec![37]);
    }

    #[test]
    fn point_mass_rejects_out_of_range_sizes() {
        assert!(SizeDistribution::point_mass(16, 1).is_err());
        assert!(SizeDistribution::point_mass(16, 17).is_err());
        assert!(SizeDistribution::point_mass(1, 2).is_err());
    }

    #[test]
    fn uniform_sizes_excludes_size_one() {
        let d = SizeDistribution::uniform_sizes(16).unwrap();
        assert_eq!(d.probability_of(1), 0.0);
        assert!((d.probability_of(2) - 1.0 / 15.0).abs() < 1e-12);
        let total: f64 = d.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_ranges_masses_sum_to_one() {
        for n in [2usize, 3, 7, 8, 16, 100, 1024, 1000] {
            let d = SizeDistribution::uniform_ranges(n).unwrap();
            let total: f64 = d.masses().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} total={total}");
        }
    }

    #[test]
    fn geometric_is_decreasing_in_size() {
        let d = SizeDistribution::geometric(64, 0.3).unwrap();
        for size in 2..63 {
            assert!(d.probability_of(size) >= d.probability_of(size + 1));
        }
    }

    #[test]
    fn geometric_rejects_bad_ratio() {
        assert!(SizeDistribution::geometric(64, 0.0).is_err());
        assert!(SizeDistribution::geometric(64, 1.0).is_err());
        assert!(SizeDistribution::geometric(64, -0.5).is_err());
    }

    #[test]
    fn zipf_prefers_small_sizes() {
        let d = SizeDistribution::zipf(128, 1.2).unwrap();
        assert!(d.probability_of(2) > d.probability_of(100));
    }

    #[test]
    fn bimodal_places_mass_near_both_modes() {
        let d = SizeDistribution::bimodal(2048, 64, 1024, 0.9).unwrap();
        let near_primary: f64 = (63..=65).map(|s| d.probability_of(s)).sum();
        let near_secondary: f64 = (1023..=1025).map(|s| d.probability_of(s)).sum();
        assert!((near_primary - 0.9).abs() < 1e-9);
        assert!((near_secondary - 0.1).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_support() {
        let d = SizeDistribution::bimodal(256, 16, 128, 0.5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            assert!(d.probability_of(s) > 0.0, "sampled size {s} has zero mass");
        }
    }

    #[test]
    fn sampling_point_mass_is_deterministic() {
        let d = SizeDistribution::point_mass(64, 9).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            assert_eq!(d.sample(&mut rng), 9);
        }
    }

    #[test]
    fn mix_interpolates_entropy() {
        let low = SizeDistribution::point_mass(256, 17).unwrap();
        let high = SizeDistribution::uniform_sizes(256).unwrap();
        let mid = low.mix(&high, 0.5).unwrap();
        assert!(mid.entropy() > low.entropy());
        assert!(mid.entropy() < high.entropy() + 1.0);
        assert!(low.mix(&high, 1.5).is_err());
    }

    #[test]
    fn uniform_entropy_matches_formula() {
        let d = SizeDistribution::uniform_sizes(1025).unwrap();
        // 1024 equally likely sizes -> exactly 10 bits.
        assert!((d.entropy() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn kl_divergence_zero_on_self() {
        let d = SizeDistribution::zipf(64, 1.0).unwrap();
        assert_eq!(d.kl_divergence(&d), 0.0);
    }

    #[test]
    fn mixture_of_point_masses_places_exact_mass() {
        let d = SizeDistribution::mixture_of_point_masses(1024, &[(8, 0.6), (64, 0.3), (512, 0.1)])
            .unwrap();
        assert!((d.probability_of(8) - 0.6).abs() < 1e-12);
        assert!((d.probability_of(64) - 0.3).abs() < 1e-12);
        assert!((d.probability_of(512) - 0.1).abs() < 1e-12);
        assert_eq!(d.support(), vec![8, 64, 512]);
        assert!(SizeDistribution::mixture_of_point_masses(1024, &[]).is_err());
        assert!(SizeDistribution::mixture_of_point_masses(16, &[(32, 1.0)]).is_err());
        assert!(SizeDistribution::mixture_of_point_masses(16, &[(4, -1.0)]).is_err());
        assert!(SizeDistribution::mixture_of_point_masses(16, &[(4, 0.0)]).is_err());
    }

    #[test]
    fn alias_sampling_matches_masses_in_frequency() {
        let d = SizeDistribution::from_masses(vec![0.0, 0.5, 0.25, 0.25]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        let draws = 40_000;
        for _ in 0..draws {
            counts[d.sample(&mut rng) - 1] += 1;
        }
        assert_eq!(counts[0], 0, "zero-mass size was sampled");
        for (index, &count) in counts.iter().enumerate().skip(1) {
            let expected = d.probability_of(index + 1);
            let observed = count as f64 / draws as f64;
            assert!(
                (observed - expected).abs() < 0.02,
                "size {}: observed {observed}, expected {expected}",
                index + 1
            );
        }
    }

    #[test]
    fn equality_ignores_sampling_cache() {
        let a = SizeDistribution::geometric(64, 0.3).unwrap();
        let b = a.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = a.sample(&mut rng); // builds a's alias table only
        assert_eq!(a, b);
    }

    #[test]
    fn clone_round_trip_preserves_masses() {
        let d = SizeDistribution::geometric(32, 0.25).unwrap();
        let back = d.clone();
        assert_eq!(d.max_size(), back.max_size());
        for size in 1..=d.max_size() {
            assert!(
                (d.probability_of(size) - back.probability_of(size)).abs() < 1e-12,
                "size {size} mass drifted through the clone round trip"
            );
        }
    }
}
