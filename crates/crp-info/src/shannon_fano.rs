//! Shannon–Fano coding.
//!
//! The §2.6 algorithm only needs *an* optimal-enough code; Huffman is the
//! default, but Shannon–Fano (codeword length `⌈-log p⌉` realised through a
//! top-down probability split) is implemented as well so the bench harness
//! can ablate the choice of code (DESIGN.md §4).  Shannon–Fano codes also
//! satisfy `E[len] ≤ H + 1`.

use crate::coding::{Codeword, PrefixCode};
use crate::error::InfoError;

/// Builds a Shannon–Fano prefix code by recursive probability splitting.
///
/// Symbols are sorted by decreasing probability and the list is recursively
/// split into two halves of (approximately) equal mass; the left half gets a
/// `0` appended, the right half a `1`.
///
/// # Errors
///
/// Returns [`InfoError::EmptySupport`] if `probabilities` is empty and
/// [`InfoError::InvalidMass`] if any probability is negative or not finite.
pub fn shannon_fano_code(probabilities: &[f64]) -> Result<PrefixCode, InfoError> {
    if probabilities.is_empty() {
        return Err(InfoError::EmptySupport);
    }
    if probabilities.iter().any(|&p| p < 0.0 || !p.is_finite()) {
        return Err(InfoError::InvalidMass {
            sum: probabilities.iter().sum(),
        });
    }
    if probabilities.len() == 1 {
        return PrefixCode::new(vec![Codeword::from_str_bits("0")]);
    }

    let mut order: Vec<usize> = (0..probabilities.len()).collect();
    order.sort_by(|&a, &b| {
        probabilities[b]
            .partial_cmp(&probabilities[a])
            .expect("probabilities are finite")
            .then(a.cmp(&b))
    });

    let mut bits: Vec<Vec<bool>> = vec![Vec::new(); probabilities.len()];
    split(&order, probabilities, &mut bits);

    let codewords = bits.into_iter().map(Codeword::new).collect();
    PrefixCode::new(codewords)
}

/// Recursively splits `symbols` (sorted by decreasing probability) into two
/// groups of near-equal total mass, appending a bit to every symbol's
/// codeword at each level.
fn split(symbols: &[usize], probabilities: &[f64], bits: &mut [Vec<bool>]) {
    if symbols.len() <= 1 {
        return;
    }
    let total: f64 = symbols.iter().map(|&s| probabilities[s]).sum();
    let mut best_split = 1;
    let mut best_diff = f64::INFINITY;
    let mut running = 0.0;
    for (i, &s) in symbols.iter().enumerate().take(symbols.len() - 1) {
        running += probabilities[s];
        let diff = (2.0 * running - total).abs();
        if diff < best_diff {
            best_diff = diff;
            best_split = i + 1;
        }
    }
    let (left, right) = symbols.split_at(best_split);
    for &s in left {
        bits[s].push(false);
    }
    for &s in right {
        bits[s].push(true);
    }
    split(left, probabilities, bits);
    split(right, probabilities, bits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{entropy, huffman_code};

    #[test]
    fn dyadic_distribution_matches_entropy() {
        let p = [0.5, 0.25, 0.125, 0.125];
        let code = shannon_fano_code(&p).unwrap();
        let e = code.expected_length(&p);
        assert!((e - entropy(&p)).abs() < 1e-12);
    }

    #[test]
    fn expected_length_within_one_bit_of_entropy() {
        let cases: Vec<Vec<f64>> = vec![
            vec![0.4, 0.3, 0.2, 0.05, 0.05],
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
            vec![0.7, 0.1, 0.1, 0.05, 0.05],
            vec![0.125; 8],
        ];
        for p in cases {
            let code = shannon_fano_code(&p).unwrap();
            let h = entropy(&p);
            let e = code.expected_length(&p);
            assert!(e + 1e-12 >= h);
            assert!(e <= h + 1.0 + 1e-9, "E[len]={e}, H+1={}", h + 1.0);
        }
    }

    #[test]
    fn never_beats_huffman() {
        let cases: Vec<Vec<f64>> = vec![
            vec![0.9, 0.05, 0.03, 0.02],
            vec![0.3, 0.3, 0.2, 0.1, 0.1],
            vec![0.25; 4],
        ];
        for p in cases {
            let sf = shannon_fano_code(&p).unwrap().expected_length(&p);
            let hf = huffman_code(&p).unwrap().expected_length(&p);
            assert!(sf + 1e-12 >= hf, "Shannon-Fano {sf} beat Huffman {hf}");
        }
    }

    #[test]
    fn produces_valid_prefix_code() {
        let p = [0.35, 0.17, 0.17, 0.16, 0.15];
        // Construction succeeding implies the prefix property was validated.
        let code = shannon_fano_code(&p).unwrap();
        assert_eq!(code.num_symbols(), 5);
        assert!(code.kraft_sum() <= 1.0 + 1e-12);
    }

    #[test]
    fn single_symbol_and_errors() {
        assert_eq!(shannon_fano_code(&[1.0]).unwrap().num_symbols(), 1);
        assert!(shannon_fano_code(&[]).is_err());
        assert!(shannon_fano_code(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn uniform_distribution_gets_balanced_lengths() {
        let p = vec![0.25; 4];
        let code = shannon_fano_code(&p).unwrap();
        for s in 0..4 {
            assert_eq!(code.length(s), 2);
        }
    }
}
