//! Property-style tests over the protocol layer, driven by deterministic
//! seeded sweeps (the environment has no `proptest`).

use crp_channel::CollisionHistory;
use crp_info::{range_index_for_size, CondensedDistribution, SizeDistribution};
use crp_predict::{Advice, AdviceOracle, IdPrefixOracle, RangeOracle};
use crp_protocols::rangefinding::rf_construction;
use crp_protocols::{
    AdvisedDecay, AdvisedWillard, CdStrategy, CodedSearch, Decay, NoCdSchedule, SortedGuess,
    Willard,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An arbitrary normalised condensed distribution for a network of size
/// `2^exp` with `exp` in `[3, 12)`.
fn condensed_distribution(rng: &mut ChaCha8Rng) -> CondensedDistribution {
    let exp = rng.gen_range(3u32..12);
    let len = rng.gen_range(1usize..12);
    let mut weights: Vec<f64> = (0..len).map(|_| rng.gen_range(0.01f64..10.0)).collect();
    let n = 1usize << exp;
    let num_ranges = range_index_for_size(n);
    weights.resize(num_ranges, 0.05);
    let total: f64 = weights.iter().sum();
    let masses: Vec<f64> = weights.iter().map(|w| w / total).collect();
    CondensedDistribution::from_range_masses(masses, n)
        .expect("normalised masses over the correct number of ranges")
}

fn random_bits(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<bool> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_bool(0.5)).collect()
}

#[test]
fn decay_probabilities_are_always_valid_and_periodic() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    for _ in 0..200 {
        let exp = rng.gen_range(1u32..20);
        let round = rng.gen_range(1usize..10_000);
        let n = 1usize << exp;
        let decay = Decay::new(n.max(2)).unwrap();
        let p = decay.probability(round).unwrap();
        assert!(p > 0.0 && p <= 0.5);
        let period = decay.sweep_length();
        assert_eq!(decay.probability(round), decay.probability(round + period));
    }
}

#[test]
fn sorted_guess_visits_every_range_exactly_once() {
    let mut rng = ChaCha8Rng::seed_from_u64(32);
    for _ in 0..100 {
        let condensed = condensed_distribution(&mut rng);
        let protocol = SortedGuess::new(&condensed);
        let mut seen = protocol.visit_order().to_vec();
        seen.sort_unstable();
        let expected: Vec<usize> = (1..=condensed.num_ranges()).collect();
        assert_eq!(seen, expected);
        // Every scheduled probability is the power of two of its range.
        for round in 1..=protocol.pass_length() {
            let p = protocol.probability(round).unwrap();
            let range = protocol.visit_order()[round - 1];
            assert!((p - 2f64.powi(-(range as i32))).abs() < 1e-15);
        }
        assert_eq!(protocol.probability(protocol.pass_length() + 1), None);
    }
}

#[test]
fn sorted_guess_orders_ranges_by_predicted_mass() {
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    for _ in 0..100 {
        let condensed = condensed_distribution(&mut rng);
        let protocol = SortedGuess::new(&condensed);
        let order = protocol.visit_order();
        for pair in order.windows(2) {
            assert!(
                condensed.probability_of_range(pair[0]) >= condensed.probability_of_range(pair[1])
            );
        }
    }
}

#[test]
fn coded_search_covers_every_range_within_its_horizon() {
    let mut rng = ChaCha8Rng::seed_from_u64(34);
    for _ in 0..100 {
        let condensed = condensed_distribution(&mut rng);
        let protocol = CodedSearch::new(&condensed).unwrap();
        for range in 1..=condensed.num_ranges() {
            let rounds = protocol.rounds_until_range_phase(range);
            assert!(rounds.is_some(), "range {range} unreachable");
            assert!(rounds.unwrap() <= protocol.horizon());
        }
    }
}

#[test]
fn coded_search_probabilities_are_valid_along_any_history() {
    let mut rng = ChaCha8Rng::seed_from_u64(35);
    for _ in 0..100 {
        let condensed = condensed_distribution(&mut rng);
        let bits = random_bits(&mut rng, 24);
        let protocol = CodedSearch::new(&condensed).unwrap();
        let mut history = CollisionHistory::new();
        for &bit in bits.iter().take(protocol.horizon()) {
            match protocol.probability(&history) {
                Some(p) => assert!((0.0..=1.0).contains(&p)),
                None => break,
            }
            history.push(bit);
        }
    }
}

#[test]
fn willard_probability_is_a_valid_power_of_two_for_any_history() {
    let mut rng = ChaCha8Rng::seed_from_u64(36);
    for _ in 0..200 {
        let exp = rng.gen_range(2u32..20);
        let bits = random_bits(&mut rng, 10);
        let n = 1usize << exp;
        let willard = Willard::new(n).unwrap();
        let history = CollisionHistory::from_bits(bits);
        if let Some(p) = willard.probability(&history) {
            assert!(p > 0.0 && p <= 0.5 + 1e-12);
            let range = (1.0 / p).log2().round() as usize;
            assert!(range >= 1 && range <= range_index_for_size(n));
        }
    }
}

#[test]
fn advice_oracles_never_exceed_their_budget_and_never_lose_the_target() {
    let mut rng = ChaCha8Rng::seed_from_u64(37);
    for _ in 0..150 {
        let exp = rng.gen_range(4u32..16);
        let k = rng.gen_range(2usize..2000);
        let budget = rng.gen_range(0usize..20);
        let n = 1usize << exp;
        let k = k.min(n);
        let participants: Vec<usize> = (0..k).collect();

        let id_advice = IdPrefixOracle.advise(n, &participants, budget).unwrap();
        assert!(id_advice.len() <= budget);
        let (lo, hi) = IdPrefixOracle::candidate_interval(n, &id_advice);
        assert!(lo <= participants[0] && participants[0] < hi);

        let range_advice = RangeOracle.advise(n, &participants, budget).unwrap();
        assert!(range_advice.len() <= budget);
        let (rlo, rhi) = RangeOracle::candidate_ranges(n, &range_advice);
        let true_range = range_index_for_size(k);
        assert!(rlo <= true_range && true_range <= rhi);
    }
}

#[test]
fn advised_protocols_shrink_monotonically_with_budget() {
    let mut rng = ChaCha8Rng::seed_from_u64(38);
    for _ in 0..60 {
        let exp = rng.gen_range(6u32..16);
        let k = rng.gen_range(2usize..2000);
        let n = 1usize << exp;
        let k = k.min(n);
        let participants: Vec<usize> = (0..k).collect();
        let mut last_sweep = usize::MAX;
        let mut last_search = usize::MAX;
        for budget in 0..=6usize {
            let advice = RangeOracle.advise(n, &participants, budget).unwrap();
            let decay = AdvisedDecay::new(n, &advice).unwrap();
            assert!(decay.covers_size(k));
            assert!(decay.sweep_length() <= last_sweep);
            last_sweep = decay.sweep_length();

            let willard = AdvisedWillard::new(n, &advice).unwrap();
            assert!(willard.worst_case_rounds() <= last_search);
            last_search = willard.worst_case_rounds();
        }
    }
}

#[test]
fn rf_construction_sequence_solves_every_range_within_two_sweeps() {
    let mut rng = ChaCha8Rng::seed_from_u64(39);
    for _ in 0..60 {
        // The cycling sorted-guess schedule contains every range within one
        // pass, so the interleaved RF sequence solves every target exactly
        // (tolerance 0) within 2 passes.
        let condensed = condensed_distribution(&mut rng);
        let n = condensed.max_size();
        let protocol = SortedGuess::new(&condensed).cycling();
        let sequence = rf_construction(&protocol, n, 2 * condensed.num_ranges());
        for range in 1..=condensed.num_ranges() {
            let step = sequence.solves_at(range, 0);
            assert!(step.is_some(), "range {range} unsolved");
            assert!(step.unwrap() <= 4 * condensed.num_ranges());
        }
    }
}

#[test]
fn empty_advice_reduces_to_the_classical_protocols() {
    for exp in 4u32..16 {
        let n = 1usize << exp;
        let decay = Decay::new(n).unwrap();
        let advised = AdvisedDecay::new(n, &Advice::empty()).unwrap();
        assert_eq!(advised.sweep_length(), decay.sweep_length());
        for round in 1..=decay.sweep_length() {
            assert_eq!(advised.probability(round), decay.probability(round));
        }
        let willard = Willard::new(n).unwrap();
        let advised = AdvisedWillard::new(n, &Advice::empty()).unwrap();
        assert_eq!(advised.worst_case_rounds(), willard.worst_case_rounds());
    }
}

#[test]
fn condensing_then_sorting_is_stable_under_size_noise() {
    let mut rng = ChaCha8Rng::seed_from_u64(40);
    for _ in 0..60 {
        // Perturbing which exact size carries the mass inside one geometric
        // range never changes the sorted-guess visit order.
        let exp = rng.gen_range(6u32..12);
        let center = rng.gen_range(0.05f64..0.95);
        let n = 1usize << exp;
        let range = (range_index_for_size(n) as f64 * center).ceil().max(1.0) as usize;
        let (lo, hi) = crp_info::range_interval(range);
        let hi = hi.min(n);
        let a = SizeDistribution::point_mass(n, lo.max(2)).unwrap();
        let b = SizeDistribution::point_mass(n, hi.max(2)).unwrap();
        let order_a = SortedGuess::from_sizes(&a).visit_order().to_vec();
        let order_b = SortedGuess::from_sizes(&b).visit_order().to_vec();
        assert_eq!(order_a, order_b);
    }
}
