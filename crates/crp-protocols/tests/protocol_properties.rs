//! Property-based tests over the protocol layer.

use crp_channel::CollisionHistory;
use crp_info::{range_index_for_size, CondensedDistribution, SizeDistribution};
use crp_predict::{Advice, AdviceOracle, IdPrefixOracle, RangeOracle};
use crp_protocols::rangefinding::rf_construction;
use crp_protocols::{
    AdvisedDecay, AdvisedWillard, CdStrategy, CodedSearch, Decay, NoCdSchedule, SortedGuess,
    Willard,
};
use proptest::prelude::*;

/// Strategy: an arbitrary normalised condensed distribution for a network
/// of size `2^exp`.
fn condensed_distribution() -> impl Strategy<Value = CondensedDistribution> {
    (3u32..12, prop::collection::vec(0.01f64..10.0, 1..12)).prop_map(|(exp, mut weights)| {
        let n = 1usize << exp;
        let num_ranges = range_index_for_size(n);
        weights.resize(num_ranges, 0.05);
        let total: f64 = weights.iter().sum();
        let masses: Vec<f64> = weights.iter().map(|w| w / total).collect();
        CondensedDistribution::from_range_masses(masses, n)
            .expect("normalised masses over the correct number of ranges")
    })
}

proptest! {
    #[test]
    fn decay_probabilities_are_always_valid_and_periodic(
        exp in 1u32..20,
        round in 1usize..10_000,
    ) {
        let n = 1usize << exp;
        let decay = Decay::new(n.max(2)).unwrap();
        let p = decay.probability(round).unwrap();
        prop_assert!(p > 0.0 && p <= 0.5);
        let period = decay.sweep_length();
        prop_assert_eq!(decay.probability(round), decay.probability(round + period));
    }

    #[test]
    fn sorted_guess_visits_every_range_exactly_once(condensed in condensed_distribution()) {
        let protocol = SortedGuess::new(&condensed);
        let mut seen = protocol.visit_order().to_vec();
        seen.sort_unstable();
        let expected: Vec<usize> = (1..=condensed.num_ranges()).collect();
        prop_assert_eq!(seen, expected);
        // Every scheduled probability is the power of two of its range.
        for round in 1..=protocol.pass_length() {
            let p = protocol.probability(round).unwrap();
            let range = protocol.visit_order()[round - 1];
            prop_assert!((p - 2f64.powi(-(range as i32))).abs() < 1e-15);
        }
        prop_assert_eq!(protocol.probability(protocol.pass_length() + 1), None);
    }

    #[test]
    fn sorted_guess_orders_ranges_by_predicted_mass(condensed in condensed_distribution()) {
        let protocol = SortedGuess::new(&condensed);
        let order = protocol.visit_order();
        for pair in order.windows(2) {
            prop_assert!(
                condensed.probability_of_range(pair[0]) >= condensed.probability_of_range(pair[1])
            );
        }
    }

    #[test]
    fn coded_search_covers_every_range_within_its_horizon(condensed in condensed_distribution()) {
        let protocol = CodedSearch::new(&condensed).unwrap();
        for range in 1..=condensed.num_ranges() {
            let rounds = protocol.rounds_until_range_phase(range);
            prop_assert!(rounds.is_some(), "range {range} unreachable");
            prop_assert!(rounds.unwrap() <= protocol.horizon());
        }
    }

    #[test]
    fn coded_search_probabilities_are_valid_along_any_history(
        condensed in condensed_distribution(),
        bits in prop::collection::vec(any::<bool>(), 0..24),
    ) {
        let protocol = CodedSearch::new(&condensed).unwrap();
        let mut history = CollisionHistory::new();
        for &bit in bits.iter().take(protocol.horizon()) {
            match protocol.probability(&history) {
                Some(p) => prop_assert!((0.0..=1.0).contains(&p)),
                None => break,
            }
            history.push(bit);
        }
    }

    #[test]
    fn willard_probability_is_a_valid_power_of_two_for_any_history(
        exp in 2u32..20,
        bits in prop::collection::vec(any::<bool>(), 0..10),
    ) {
        let n = 1usize << exp;
        let willard = Willard::new(n).unwrap();
        let history = CollisionHistory::from_bits(bits);
        if let Some(p) = willard.probability(&history) {
            prop_assert!(p > 0.0 && p <= 0.5 + 1e-12);
            let range = (1.0 / p).log2().round() as usize;
            prop_assert!(range >= 1 && range <= range_index_for_size(n));
        }
    }

    #[test]
    fn advice_oracles_never_exceed_their_budget_and_never_lose_the_target(
        exp in 4u32..16,
        k in 2usize..2000,
        budget in 0usize..20,
    ) {
        let n = 1usize << exp;
        let k = k.min(n);
        let participants: Vec<usize> = (0..k).collect();

        let id_advice = IdPrefixOracle.advise(n, &participants, budget).unwrap();
        prop_assert!(id_advice.len() <= budget);
        let (lo, hi) = IdPrefixOracle::candidate_interval(n, &id_advice);
        prop_assert!(lo <= participants[0] && participants[0] < hi);

        let range_advice = RangeOracle.advise(n, &participants, budget).unwrap();
        prop_assert!(range_advice.len() <= budget);
        let (rlo, rhi) = RangeOracle::candidate_ranges(n, &range_advice);
        let true_range = range_index_for_size(k);
        prop_assert!(rlo <= true_range && true_range <= rhi);
    }

    #[test]
    fn advised_protocols_shrink_monotonically_with_budget(
        exp in 6u32..16,
        k in 2usize..2000,
    ) {
        let n = 1usize << exp;
        let k = k.min(n);
        let participants: Vec<usize> = (0..k).collect();
        let mut last_sweep = usize::MAX;
        let mut last_search = usize::MAX;
        for budget in 0..=6usize {
            let advice = RangeOracle.advise(n, &participants, budget).unwrap();
            let decay = AdvisedDecay::new(n, &advice).unwrap();
            prop_assert!(decay.covers_size(k));
            prop_assert!(decay.sweep_length() <= last_sweep);
            last_sweep = decay.sweep_length();

            let willard = AdvisedWillard::new(n, &advice).unwrap();
            prop_assert!(willard.worst_case_rounds() <= last_search);
            last_search = willard.worst_case_rounds();
        }
    }

    #[test]
    fn rf_construction_sequence_solves_every_range_within_two_sweeps(
        condensed in condensed_distribution(),
    ) {
        // The cycling sorted-guess schedule contains every range within one
        // pass, so the interleaved RF sequence solves every target exactly
        // (tolerance 0) within 2 passes.
        let n = condensed.max_size();
        let protocol = SortedGuess::new(&condensed).cycling();
        let sequence = rf_construction(&protocol, n, 2 * condensed.num_ranges());
        for range in 1..=condensed.num_ranges() {
            let step = sequence.solves_at(range, 0);
            prop_assert!(step.is_some(), "range {range} unsolved");
            prop_assert!(step.unwrap() <= 4 * condensed.num_ranges());
        }
    }

    #[test]
    fn empty_advice_reduces_to_the_classical_protocols(exp in 4u32..16) {
        let n = 1usize << exp;
        let decay = Decay::new(n).unwrap();
        let advised = AdvisedDecay::new(n, &Advice::empty()).unwrap();
        prop_assert_eq!(advised.sweep_length(), decay.sweep_length());
        for round in 1..=decay.sweep_length() {
            prop_assert_eq!(advised.probability(round), decay.probability(round));
        }
        let willard = Willard::new(n).unwrap();
        let advised = AdvisedWillard::new(n, &Advice::empty()).unwrap();
        prop_assert_eq!(advised.worst_case_rounds(), willard.worst_case_rounds());
    }

    #[test]
    fn condensing_then_sorting_is_stable_under_size_noise(
        exp in 6u32..12,
        center in 0.05f64..0.95,
    ) {
        // Perturbing which exact size carries the mass inside one geometric
        // range never changes the sorted-guess visit order.
        let n = 1usize << exp;
        let range = (range_index_for_size(n) as f64 * center).ceil().max(1.0) as usize;
        let (lo, hi) = crp_info::range_interval(range);
        let hi = hi.min(n);
        let a = SizeDistribution::point_mass(n, lo.max(2)).unwrap();
        let b = SizeDistribution::point_mass(n, hi.max(2)).unwrap();
        let order_a = SortedGuess::from_sizes(&a).visit_order().to_vec();
        let order_b = SortedGuess::from_sizes(&b).visit_order().to_vec();
        prop_assert_eq!(order_a, order_b);
    }
}
