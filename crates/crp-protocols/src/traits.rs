//! Protocol traits and runners.
//!
//! The paper analyses *uniform* algorithms (§2.1): without collision
//! detection a uniform algorithm is a fixed sequence of probabilities
//! `p₁, p₂, …`; with collision detection it is a function from collision
//! histories to probabilities.  [`NoCdSchedule`] and [`CdStrategy`] are
//! those two classes.  The per-node (non-uniform) protocols of §3 implement
//! `crp_channel::NodeProtocol` directly instead.

use crp_channel::{
    try_execute_uniform_schedule, ChannelMode, CollisionHistory, Execution, ExecutionConfig,
};
use rand::Rng;

use crate::error::ProtocolError;

/// Which channel assumption a protocol is designed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Designed for channels without collision detection.
    NoCollisionDetection,
    /// Requires collision detection.
    CollisionDetection,
}

impl ProtocolKind {
    /// The matching channel mode.
    pub fn channel_mode(self) -> ChannelMode {
        match self {
            ProtocolKind::NoCollisionDetection => ChannelMode::NoCollisionDetection,
            ProtocolKind::CollisionDetection => ChannelMode::CollisionDetection,
        }
    }
}

/// A uniform algorithm for the no-collision-detection setting: a
/// predetermined sequence of transmission probabilities.
pub trait NoCdSchedule {
    /// The probability every participant uses in (1-based) round `round`,
    /// or `None` if the schedule is exhausted (one-shot protocols).
    fn probability(&self, round: usize) -> Option<f64>;

    /// Human-readable protocol name (used in experiment tables).
    fn name(&self) -> &str;

    /// Length of the schedule if it is finite (one-shot protocols return
    /// the number of rounds after which [`NoCdSchedule::probability`] is
    /// `None`); `None` means the schedule is unbounded.
    fn horizon(&self) -> Option<usize> {
        None
    }

    /// The single probability this schedule emits in *every* round, when
    /// it has one (constant-rate protocols such as the known-size
    /// baseline).  Batched trial kernels use this to skip the per-round
    /// dynamic dispatch entirely; the returned value must be bit-identical
    /// to what [`NoCdSchedule::probability`] returns for every round.
    /// Defaults to `None` (not constant).
    fn constant_probability(&self) -> Option<f64> {
        None
    }
}

/// A uniform algorithm for the collision-detection setting: a function from
/// the collision history observed so far to the next probability.
pub trait CdStrategy {
    /// The probability every participant uses in the round following
    /// `history`, or `None` if the strategy has given up (one-shot
    /// protocols).
    fn probability(&self, history: &CollisionHistory) -> Option<f64>;

    /// Human-readable protocol name (used in experiment tables).
    fn name(&self) -> &str;
}

/// Runs a [`NoCdSchedule`] with `k` participants for at most `max_rounds`
/// rounds on a channel without collision detection.
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidParameter`] if `k == 0`,
/// `max_rounds == 0`, or the schedule emits a probability outside `[0, 1]`.
pub fn try_run_schedule<S: NoCdSchedule + ?Sized, R: Rng>(
    schedule: &S,
    k: usize,
    max_rounds: usize,
    rng: &mut R,
) -> Result<Execution, ProtocolError> {
    let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, max_rounds);
    try_execute_uniform_schedule(k, |round, _| schedule.probability(round), &config, rng).map_err(
        |err| ProtocolError::InvalidParameter {
            what: err.to_string(),
        },
    )
}

/// Runs a [`CdStrategy`] with `k` participants for at most `max_rounds`
/// rounds on a channel with collision detection.
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidParameter`] if `k == 0`,
/// `max_rounds == 0`, or the strategy emits a probability outside `[0, 1]`.
pub fn try_run_cd_strategy<S: CdStrategy + ?Sized, R: Rng>(
    strategy: &S,
    k: usize,
    max_rounds: usize,
    rng: &mut R,
) -> Result<Execution, ProtocolError> {
    let config = ExecutionConfig::new(ChannelMode::CollisionDetection, max_rounds);
    try_execute_uniform_schedule(k, |_, history| strategy.probability(history), &config, rng)
        .map_err(|err| ProtocolError::InvalidParameter {
            what: err.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct ConstantSchedule(f64);
    impl NoCdSchedule for ConstantSchedule {
        fn probability(&self, _round: usize) -> Option<f64> {
            Some(self.0)
        }
        fn name(&self) -> &str {
            "constant"
        }
    }

    struct HalvingStrategy;
    impl CdStrategy for HalvingStrategy {
        fn probability(&self, history: &CollisionHistory) -> Option<f64> {
            // Halve the probability after every collision, reset on silence.
            let collisions = history.bits().iter().rev().take_while(|&&b| b).count();
            Some(0.5f64.powi(collisions as i32 + 1))
        }
        fn name(&self) -> &str {
            "halving"
        }
    }

    #[test]
    fn protocol_kind_maps_to_channel_mode() {
        assert_eq!(
            ProtocolKind::CollisionDetection.channel_mode(),
            ChannelMode::CollisionDetection
        );
        assert_eq!(
            ProtocolKind::NoCollisionDetection.channel_mode(),
            ChannelMode::NoCollisionDetection
        );
    }

    #[test]
    fn run_schedule_resolves_single_participant() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let exec = try_run_schedule(&ConstantSchedule(0.8), 1, 100, &mut rng).unwrap();
        assert!(exec.resolved);
    }

    #[test]
    fn run_cd_strategy_adapts_to_collisions() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // 8 participants starting at p=1/2: collisions push the probability
        // down until a lone transmitter emerges.
        let exec = try_run_cd_strategy(&HalvingStrategy, 8, 500, &mut rng).unwrap();
        assert!(exec.resolved);
    }

    #[test]
    fn degenerate_configurations_yield_typed_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(try_run_schedule(&ConstantSchedule(0.5), 0, 100, &mut rng).is_err());
        assert!(try_run_schedule(&ConstantSchedule(0.5), 4, 0, &mut rng).is_err());
        assert!(try_run_cd_strategy(&HalvingStrategy, 0, 100, &mut rng).is_err());
        assert!(try_run_cd_strategy(&HalvingStrategy, 4, 0, &mut rng).is_err());
    }

    #[test]
    fn default_horizon_is_unbounded() {
        assert_eq!(ConstantSchedule(0.5).horizon(), None);
        assert_eq!(ConstantSchedule(0.5).name(), "constant");
        assert_eq!(HalvingStrategy.name(), "halving");
    }
}
