//! Error type for protocol construction.

use std::error::Error;
use std::fmt;

use crp_info::InfoError;
use crp_predict::PredictError;

/// Errors produced while constructing a protocol instance.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A parameter was outside the protocol's valid range.
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// The underlying information-theoretic construction failed (e.g. an
    /// optimal code could not be built for the supplied prediction).
    Info(InfoError),
    /// The advice substrate failed to produce usable advice.
    Predict(PredictError),
    /// A protocol name was not found in the registry.
    UnknownProtocol {
        /// The unrecognised name.
        name: String,
        /// Comma-separated list of the names the registry does know.
        known: String,
    },
    /// A registry constructor was invoked without a parameter the protocol
    /// needs.
    MissingParameter {
        /// The protocol being constructed.
        protocol: String,
        /// Which parameter is missing.
        what: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            ProtocolError::Info(err) => write!(f, "information-theory error: {err}"),
            ProtocolError::Predict(err) => write!(f, "prediction error: {err}"),
            ProtocolError::UnknownProtocol { name, known } => {
                write!(
                    f,
                    "unknown protocol {name:?}; registered protocols: {known}"
                )
            }
            ProtocolError::MissingParameter { protocol, what } => {
                write!(f, "protocol {protocol:?} requires {what}")
            }
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Info(err) => Some(err),
            ProtocolError::Predict(err) => Some(err),
            ProtocolError::InvalidParameter { .. }
            | ProtocolError::UnknownProtocol { .. }
            | ProtocolError::MissingParameter { .. } => None,
        }
    }
}

impl From<InfoError> for ProtocolError {
    fn from(err: InfoError) -> Self {
        ProtocolError::Info(err)
    }
}

impl From<PredictError> for ProtocolError {
    fn from(err: PredictError) -> Self {
        ProtocolError::Predict(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ProtocolError::InvalidParameter {
            what: "b too large".into(),
        };
        assert!(e.to_string().contains("b too large"));
        assert!(e.source().is_none());

        let e = ProtocolError::from(InfoError::EmptySupport);
        assert!(e.source().is_some());

        let e = ProtocolError::from(PredictError::InvalidParameter { what: "x".into() });
        assert!(e.to_string().contains("prediction"));
    }
}
