//! The unified, object-safe protocol API.
//!
//! The paper analyses one family of contention-resolution algorithms under
//! two feedback models (with and without collision detection) and two
//! execution styles (*uniform* — every participant runs the same
//! probability schedule — and *per-node* — behaviour depends on the
//! participant's identity, as in the §3 advice algorithms).  Historically
//! this reproduction exposed those styles through three disjoint traits
//! ([`NoCdSchedule`], [`CdStrategy`], [`crp_channel::NodeProtocol`]) and
//! three hand-wired run functions, so every caller duplicated construction
//! and dispatch logic.
//!
//! [`Protocol`] unifies them: one object-safe trait that names the
//! protocol, declares which channel feedback model it needs
//! ([`ProtocolKind`]), optionally bounds its round budget, and exposes its
//! execution style through [`Protocol::behavior`].  Existing trait impls
//! slot in through the [`ScheduleProtocol`] and [`StrategyProtocol`]
//! adapters (uniform) and [`NodeFactory`] implementations (per-node);
//! [`try_run_protocol`] drives any of them against the channel.

use crp_channel::{
    try_execute, try_execute_uniform_schedule, ChannelMode, CollisionHistory, Execution,
    ExecutionConfig, NodeProtocol, ParticipantId,
};
use rand::Rng;

use crate::error::ProtocolError;
use crate::traits::{CdStrategy, NoCdSchedule, ProtocolKind};

/// A contention-resolution protocol, unified across feedback models and
/// execution styles.
///
/// The trait is object-safe: registries, simulations and experiment tables
/// handle protocols as `Box<dyn Protocol>` without knowing the concrete
/// algorithm.
pub trait Protocol: Send + Sync {
    /// Which channel feedback model the protocol is designed for.
    fn kind(&self) -> ProtocolKind;

    /// Human-readable protocol name (used in experiment tables and by the
    /// registry).
    fn name(&self) -> &str;

    /// The protocol's natural round budget: the number of rounds after
    /// which a one-shot protocol has given up, or `None` for unbounded
    /// (cycling) protocols.
    fn horizon(&self) -> Option<usize> {
        None
    }

    /// How the protocol is executed against the channel.
    fn behavior(&self) -> Behavior<'_>;
}

/// The two execution styles a [`Protocol`] can expose.
pub enum Behavior<'a> {
    /// A uniform protocol: every participant transmits with the same
    /// per-round probability.
    Uniform(&'a dyn UniformPolicy),
    /// A per-node protocol: each participant runs its own state machine,
    /// built by the factory for a concrete participant set.
    PerNode(&'a dyn NodeFactory),
}

/// The probability schedule of a uniform protocol.
///
/// For [`ProtocolKind::NoCollisionDetection`] protocols the executor always
/// passes an empty history (listeners learn nothing on such channels).
pub trait UniformPolicy: Send + Sync {
    /// The transmission probability for (1-based) round `round` given the
    /// collision history observed so far, or `None` once the protocol has
    /// given up.
    ///
    /// Implementations must be pure functions of `(round, history)`: the
    /// scalar executor queries once per trial per round, while batched
    /// kernels may query once per *shard* per round (no-CD policies see
    /// the same empty history in every trial) and rely on getting the
    /// same answer.
    fn probability(&self, round: usize, history: &CollisionHistory) -> Option<f64>;

    /// The single probability the policy emits in every round, when it is
    /// constant (e.g. the known-size baseline).  Must be bit-identical to
    /// [`UniformPolicy::probability`]'s answer for every round; batched
    /// kernels use it to skip per-round dynamic dispatch.  Defaults to
    /// `None`.
    fn constant_probability(&self) -> Option<f64> {
        None
    }
}

/// Builds per-node protocol instances for a concrete participant set.
pub trait NodeFactory: Send + Sync {
    /// Creates one [`NodeProtocol`] instance per participant.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if the participant set is invalid for this
    /// protocol (e.g. an id outside the universe).
    fn build_nodes(
        &self,
        participants: &[ParticipantId],
    ) -> Result<Vec<Box<dyn NodeProtocol>>, ProtocolError>;

    /// The worst-case round budget for the given participant set, if the
    /// protocol guarantees one.
    fn round_budget(&self, participants: &[ParticipantId]) -> Option<usize> {
        let _ = participants;
        None
    }

    /// Whether the nodes this factory builds are *deterministic*: their
    /// [`NodeProtocol::decide`] never reads the RNG, so an execution's
    /// outcome is a pure function of the participant set (the §3 advice
    /// schedules are the canonical case).  Batched kernels use this to
    /// execute once per distinct participant set and replicate the
    /// outcome; a factory must only return `true` when that replication
    /// is exact.  Defaults to `false`.
    fn deterministic(&self) -> bool {
        false
    }
}

/// Adapter: exposes any [`NoCdSchedule`] as a no-collision-detection
/// [`Protocol`].
pub struct ScheduleProtocol<S>(pub S);

impl<S: NoCdSchedule + Send + Sync> Protocol for ScheduleProtocol<S> {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::NoCollisionDetection
    }

    fn name(&self) -> &str {
        self.0.name()
    }

    fn horizon(&self) -> Option<usize> {
        self.0.horizon()
    }

    fn behavior(&self) -> Behavior<'_> {
        Behavior::Uniform(self)
    }
}

impl<S: NoCdSchedule + Send + Sync> UniformPolicy for ScheduleProtocol<S> {
    fn probability(&self, round: usize, _history: &CollisionHistory) -> Option<f64> {
        self.0.probability(round)
    }

    fn constant_probability(&self) -> Option<f64> {
        self.0.constant_probability()
    }
}

/// Adapter: exposes any [`CdStrategy`] as a collision-detection
/// [`Protocol`].
pub struct StrategyProtocol<S> {
    strategy: S,
    horizon: Option<usize>,
}

impl<S: CdStrategy + Send + Sync> StrategyProtocol<S> {
    /// Wraps a strategy with no declared round budget.
    pub fn new(strategy: S) -> Self {
        Self {
            strategy,
            horizon: None,
        }
    }

    /// Wraps a strategy with a declared worst-case round budget (e.g.
    /// Willard's `⌈log log n⌉ + 1` probes).
    pub fn with_horizon(strategy: S, horizon: usize) -> Self {
        Self {
            strategy,
            horizon: Some(horizon),
        }
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.strategy
    }
}

impl<S: CdStrategy + Send + Sync> Protocol for StrategyProtocol<S> {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::CollisionDetection
    }

    fn name(&self) -> &str {
        self.strategy.name()
    }

    fn horizon(&self) -> Option<usize> {
        self.horizon
    }

    fn behavior(&self) -> Behavior<'_> {
        Behavior::Uniform(self)
    }
}

impl<S: CdStrategy + Send + Sync> UniformPolicy for StrategyProtocol<S> {
    fn probability(&self, _round: usize, history: &CollisionHistory) -> Option<f64> {
        self.strategy.probability(history)
    }
}

/// Drives a [`Protocol`] with `k` participants for at most `max_rounds`
/// rounds on the channel mode matching its [`ProtocolKind`].
///
/// Uniform protocols ignore participant identities; per-node protocols are
/// instantiated for the ids `0, …, k−1` (callers needing adversarial
/// placements should build nodes through [`Protocol::behavior`] and drive
/// [`crp_channel::try_execute`] themselves, or use the `crp-sim`
/// `Simulation` builder's participant placement options).
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidParameter`] if `k == 0`,
/// `max_rounds == 0`, the protocol emits an invalid probability, or the
/// per-node factory rejects the participant set.
pub fn try_run_protocol<R: Rng>(
    protocol: &dyn Protocol,
    k: usize,
    max_rounds: usize,
    rng: &mut R,
) -> Result<Execution, ProtocolError> {
    let participants: Vec<ParticipantId> = (0..k).map(ParticipantId).collect();
    try_run_protocol_with(protocol, &participants, max_rounds, rng)
}

/// Like [`try_run_protocol`], but with an explicit participant set (needed
/// for per-node protocols under adversarial placements).
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidParameter`] on an empty participant
/// set, a zero round cap, an invalid emitted probability, or a factory
/// rejection.
pub fn try_run_protocol_with<R: Rng>(
    protocol: &dyn Protocol,
    participants: &[ParticipantId],
    max_rounds: usize,
    rng: &mut R,
) -> Result<Execution, ProtocolError> {
    let config = ExecutionConfig::new(protocol.kind().channel_mode(), max_rounds);
    match protocol.behavior() {
        Behavior::Uniform(policy) => try_execute_uniform_schedule(
            participants.len(),
            |round, history| policy.probability(round, history),
            &config,
            rng,
        )
        .map_err(|err| ProtocolError::InvalidParameter {
            what: err.to_string(),
        }),
        Behavior::PerNode(factory) => {
            let mut nodes = factory.build_nodes(participants)?;
            try_execute(&mut nodes, &config, rng).map_err(|err| ProtocolError::InvalidParameter {
                what: err.to_string(),
            })
        }
    }
}

/// The channel mode a protocol must run on.
///
/// Convenience mirror of `protocol.kind().channel_mode()` for call sites
/// that only hold a `dyn Protocol`.
pub fn required_channel_mode(protocol: &dyn Protocol) -> ChannelMode {
    protocol.kind().channel_mode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{Decay, Willard};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn schedule_adapter_reports_no_cd_kind_and_name() {
        let protocol = ScheduleProtocol(Decay::new(1024).unwrap());
        assert_eq!(protocol.kind(), ProtocolKind::NoCollisionDetection);
        assert_eq!(protocol.name(), "decay");
        assert_eq!(protocol.horizon(), None);
        assert!(matches!(protocol.behavior(), Behavior::Uniform(_)));
    }

    #[test]
    fn strategy_adapter_reports_cd_kind_and_horizon() {
        let willard = Willard::new(1 << 16).unwrap();
        let budget = willard.worst_case_rounds();
        let protocol = StrategyProtocol::with_horizon(willard, budget);
        assert_eq!(protocol.kind(), ProtocolKind::CollisionDetection);
        assert_eq!(protocol.name(), "willard");
        assert_eq!(protocol.horizon(), Some(5));
        assert_eq!(protocol.inner().worst_case_rounds(), 5);
    }

    #[test]
    fn try_run_protocol_resolves_with_decay() {
        let protocol = ScheduleProtocol(Decay::new(4096).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let exec = try_run_protocol(&protocol, 100, 10_000, &mut rng).unwrap();
        assert!(exec.resolved);
    }

    #[test]
    fn try_run_protocol_rejects_degenerate_configurations() {
        let protocol = ScheduleProtocol(Decay::new(64).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(try_run_protocol(&protocol, 0, 100, &mut rng).is_err());
        assert!(try_run_protocol(&protocol, 4, 0, &mut rng).is_err());
    }

    #[test]
    fn required_mode_matches_kind() {
        let no_cd = ScheduleProtocol(Decay::new(64).unwrap());
        assert_eq!(
            required_channel_mode(&no_cd),
            ChannelMode::NoCollisionDetection
        );
        let cd = StrategyProtocol::new(Willard::new(64).unwrap());
        assert_eq!(required_channel_mode(&cd), ChannelMode::CollisionDetection);
    }

    #[test]
    fn boxed_protocols_are_object_safe() {
        let protocols: Vec<Box<dyn Protocol>> = vec![
            Box::new(ScheduleProtocol(Decay::new(256).unwrap())),
            Box::new(StrategyProtocol::new(Willard::new(256).unwrap())),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for protocol in &protocols {
            let exec = try_run_protocol(protocol.as_ref(), 8, 5_000, &mut rng).unwrap();
            assert!(exec.resolved, "{} failed to resolve", protocol.name());
        }
    }
}
