//! Name-based protocol construction: [`ProtocolSpec`] and
//! [`ProtocolRegistry`].
//!
//! The registry is the single catalogue of every protocol this
//! reproduction implements — the classical baselines, the §2
//! prediction-augmented algorithms, and the §3 perfect-advice algorithms —
//! keyed by a stable name.  Benches, experiments, examples and the
//! `crp_experiments list` subcommand all construct protocols through it,
//! so adding a protocol in one place makes it available everywhere.

use std::collections::BTreeMap;
use std::fmt;

use crp_channel::{NodeProtocol, ParticipantId};
use crp_info::CondensedDistribution;
use crp_predict::{Advice, AdviceOracle, IdPrefixOracle, RangeOracle};

use crate::advice::{AdvisedDecay, AdvisedWillard, DeterministicCdAdvice, DeterministicNoCdAdvice};
use crate::baselines::{BlindTrust, Decay, FixedProbability, Willard};
use crate::error::ProtocolError;
use crate::predicted::{CodeChoice, CodedSearch, SortedGuess};
use crate::protocol::{Behavior, NodeFactory, Protocol, ScheduleProtocol, StrategyProtocol};
use crate::traits::ProtocolKind;

/// Parameters available to registry constructors.
///
/// Not every protocol consumes every field; each constructor validates the
/// fields it needs and returns [`ProtocolError::MissingParameter`] when a
/// required one is absent.
#[derive(Debug, Clone, Default)]
pub struct ProtocolParams {
    /// Universe size `n` (required by every protocol).
    pub universe: usize,
    /// Predicted condensed network-size distribution (required by the §2
    /// prediction-augmented protocols).
    pub prediction: Option<CondensedDistribution>,
    /// Perfect-advice budget `b` in bits (used by the §3 protocols;
    /// defaults to 0 = no advice).
    pub advice_bits: usize,
    /// Expected participant count, used by the advice oracles of the
    /// uniform §3 protocols and by `fixed-probability` as its estimate.
    pub participants: Option<usize>,
    /// Size estimate `k̂` for `fixed-probability` (falls back to
    /// `participants` when unset).
    pub estimate: Option<usize>,
}

impl ProtocolParams {
    /// Parameters for a universe of size `universe` with everything else
    /// unset.
    pub fn for_universe(universe: usize) -> Self {
        Self {
            universe,
            ..Self::default()
        }
    }

    fn require_universe(&self, protocol: &str) -> Result<usize, ProtocolError> {
        if self.universe < 2 {
            return Err(ProtocolError::MissingParameter {
                protocol: protocol.to_string(),
                what: format!("a universe size >= 2 (got {})", self.universe),
            });
        }
        Ok(self.universe)
    }

    fn require_prediction(&self, protocol: &str) -> Result<&CondensedDistribution, ProtocolError> {
        self.prediction
            .as_ref()
            .ok_or_else(|| ProtocolError::MissingParameter {
                protocol: protocol.to_string(),
                what: "a predicted condensed distribution".to_string(),
            })
    }

    fn require_participants(&self, protocol: &str) -> Result<usize, ProtocolError> {
        self.participants
            .filter(|&k| k > 0)
            .ok_or_else(|| ProtocolError::MissingParameter {
                protocol: protocol.to_string(),
                what: "a positive expected participant count".to_string(),
            })
    }

    /// Range-oracle advice for the expected participant count.
    fn range_advice(&self, protocol: &str) -> Result<Advice, ProtocolError> {
        let universe = self.require_universe(protocol)?;
        let k = self.require_participants(protocol)?;
        let participants: Vec<usize> = vec![0; k];
        Ok(RangeOracle.advise(universe, &participants, self.advice_bits)?)
    }
}

/// A named protocol plus the parameters to construct it — the value the
/// `Simulation` builder accepts.
///
/// ```
/// use crp_protocols::ProtocolSpec;
///
/// let protocol = ProtocolSpec::new("decay").universe(1024).build()?;
/// assert_eq!(protocol.name(), "decay");
/// # Ok::<(), crp_protocols::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProtocolSpec {
    name: String,
    params: ProtocolParams,
}

impl ProtocolSpec {
    /// Starts a spec for the registry entry `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: ProtocolParams::default(),
        }
    }

    /// Sets the universe size `n`.
    pub fn universe(mut self, universe: usize) -> Self {
        self.params.universe = universe;
        self
    }

    /// Sets the predicted condensed distribution (for `sorted-guess` /
    /// `coded-search`).
    pub fn prediction(mut self, prediction: CondensedDistribution) -> Self {
        self.params.prediction = Some(prediction);
        self
    }

    /// Sets the perfect-advice budget in bits (for the §3 protocols).
    pub fn advice_bits(mut self, bits: usize) -> Self {
        self.params.advice_bits = bits;
        self
    }

    /// Sets the expected participant count (for the advice oracles and as
    /// the default `fixed-probability` estimate).
    pub fn participants(mut self, count: usize) -> Self {
        self.params.participants = Some(count);
        self
    }

    /// Sets an explicit size estimate `k̂` for `fixed-probability`.
    pub fn estimate(mut self, estimate: usize) -> Self {
        self.params.estimate = Some(estimate);
        self
    }

    /// The registry name this spec refers to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The accumulated construction parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// Builds the protocol through the standard registry.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownProtocol`] for an unregistered name
    /// and constructor-specific errors for missing or invalid parameters.
    pub fn build(&self) -> Result<Box<dyn Protocol>, ProtocolError> {
        ProtocolRegistry::standard().build_spec(self)
    }
}

type Constructor = fn(&ProtocolParams) -> Result<Box<dyn Protocol>, ProtocolError>;

/// One catalogue entry of the registry.
#[derive(Clone)]
pub struct ProtocolEntry {
    /// Stable registry name.
    pub name: &'static str,
    /// The feedback model the protocol requires.
    pub kind: ProtocolKind,
    /// One-line description shown by `crp_experiments list`.
    pub summary: &'static str,
    constructor: Constructor,
}

impl fmt::Debug for ProtocolEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolEntry")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("summary", &self.summary)
            .finish()
    }
}

impl ProtocolEntry {
    /// Constructs the protocol from the given parameters.
    ///
    /// # Errors
    ///
    /// Propagates the constructor's [`ProtocolError`].
    pub fn construct(&self, params: &ProtocolParams) -> Result<Box<dyn Protocol>, ProtocolError> {
        (self.constructor)(params)
    }
}

/// The catalogue of named protocols.
#[derive(Debug, Clone)]
pub struct ProtocolRegistry {
    entries: BTreeMap<&'static str, ProtocolEntry>,
}

impl ProtocolRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }

    /// The standard registry holding every protocol of the reproduction.
    pub fn standard() -> Self {
        let mut registry = Self::empty();
        registry.register(ProtocolEntry {
            name: "decay",
            kind: ProtocolKind::NoCollisionDetection,
            summary: "Bar-Yehuda–Goldreich–Itai decay: cycle through geometric probabilities, Θ(log n) expected rounds",
            constructor: |params| {
                let n = params.require_universe("decay")?;
                Ok(Box::new(ScheduleProtocol(Decay::new(n)?)))
            },
        });
        registry.register(ProtocolEntry {
            name: "fixed-probability",
            kind: ProtocolKind::NoCollisionDetection,
            summary: "known-size baseline: transmit with probability 1/k̂ forever, O(1) rounds when k̂ = Θ(k)",
            constructor: |params| {
                let estimate = params
                    .estimate
                    .or(params.participants)
                    .ok_or_else(|| ProtocolError::MissingParameter {
                        protocol: "fixed-probability".to_string(),
                        what: "a size estimate (estimate or participants)".to_string(),
                    })?;
                Ok(Box::new(ScheduleProtocol(FixedProbability::new(estimate)?)))
            },
        });
        registry.register(ProtocolEntry {
            name: "blind-trust",
            kind: ProtocolKind::NoCollisionDetection,
            summary: "oracle-bait baseline: trust the prediction's modal range unconditionally, transmitting at 1/k̂ forever — collapses when the advice diverges",
            constructor: |params| {
                let prediction = params.require_prediction("blind-trust")?;
                Ok(Box::new(ScheduleProtocol(BlindTrust::from_prediction(
                    prediction,
                )?)))
            },
        });
        registry.register(ProtocolEntry {
            name: "willard",
            kind: ProtocolKind::CollisionDetection,
            summary: "Willard's binary search over geometric size guesses, Θ(log log n) rounds",
            constructor: |params| {
                let n = params.require_universe("willard")?;
                let willard = Willard::new(n)?;
                let horizon = willard.worst_case_rounds();
                Ok(Box::new(StrategyProtocol::with_horizon(willard, horizon)))
            },
        });
        registry.register(ProtocolEntry {
            name: "sorted-guess",
            kind: ProtocolKind::NoCollisionDetection,
            summary: "§2.5 one-shot pass over ranges in decreasing predicted likelihood, O(2^{2H}) rounds w.c.p.",
            constructor: |params| {
                let prediction = params.require_prediction("sorted-guess")?;
                Ok(Box::new(ScheduleProtocol(SortedGuess::new(prediction))))
            },
        });
        registry.register(ProtocolEntry {
            name: "sorted-guess-cycling",
            kind: ProtocolKind::NoCollisionDetection,
            summary: "§2.5 pass repeated forever, for expected-time measurements",
            constructor: |params| {
                let prediction = params.require_prediction("sorted-guess-cycling")?;
                Ok(Box::new(ScheduleProtocol(
                    SortedGuess::new(prediction).cycling(),
                )))
            },
        });
        registry.register(ProtocolEntry {
            name: "coded-search",
            kind: ProtocolKind::CollisionDetection,
            summary: "§2.6 Huffman-phase binary search, O((H + D_KL)²) rounds w.c.p.",
            constructor: |params| {
                let prediction = params.require_prediction("coded-search")?;
                let search = CodedSearch::new(prediction)?;
                let horizon = search.horizon();
                Ok(Box::new(StrategyProtocol::with_horizon(search, horizon)))
            },
        });
        registry.register(ProtocolEntry {
            name: "coded-search-shannon-fano",
            kind: ProtocolKind::CollisionDetection,
            summary: "§2.6 search with a Shannon–Fano code instead of Huffman (ablation)",
            constructor: |params| {
                let prediction = params.require_prediction("coded-search-shannon-fano")?;
                let search = CodedSearch::with_code_choice(prediction, CodeChoice::ShannonFano)?;
                let horizon = search.horizon();
                Ok(Box::new(StrategyProtocol::with_horizon(search, horizon)))
            },
        });
        registry.register(ProtocolEntry {
            name: "advised-decay",
            kind: ProtocolKind::NoCollisionDetection,
            summary: "§3 randomized no-CD: decay truncated to the advised range block, Θ(log n / 2^b) expected",
            constructor: |params| {
                let n = params.require_universe("advised-decay")?;
                let advice = params.range_advice("advised-decay")?;
                Ok(Box::new(ScheduleProtocol(AdvisedDecay::new(n, &advice)?)))
            },
        });
        registry.register(ProtocolEntry {
            name: "advised-willard",
            kind: ProtocolKind::CollisionDetection,
            summary: "§3 randomized CD: Willard restricted to the advised ranges, Θ(log log n − b) expected",
            constructor: |params| {
                let n = params.require_universe("advised-willard")?;
                let advice = params.range_advice("advised-willard")?;
                let willard = AdvisedWillard::new(n, &advice)?;
                let horizon = willard.worst_case_rounds();
                Ok(Box::new(StrategyProtocol::with_horizon(willard, horizon)))
            },
        });
        registry.register(ProtocolEntry {
            name: "det-advice-no-cd",
            kind: ProtocolKind::NoCollisionDetection,
            summary: "§3 deterministic no-CD: scan the advised id interval, Θ(n / 2^b) rounds worst case",
            constructor: |params| {
                let n = params.require_universe("det-advice-no-cd")?;
                Ok(Box::new(DeterministicAdviceProtocol::new(
                    n,
                    params.advice_bits,
                    ProtocolKind::NoCollisionDetection,
                )))
            },
        });
        registry.register(ProtocolEntry {
            name: "det-advice-cd",
            kind: ProtocolKind::CollisionDetection,
            summary:
                "§3 deterministic CD: advised binary tree descent, Θ(log n − b) rounds worst case",
            constructor: |params| {
                let n = params.require_universe("det-advice-cd")?;
                Ok(Box::new(DeterministicAdviceProtocol::new(
                    n,
                    params.advice_bits,
                    ProtocolKind::CollisionDetection,
                )))
            },
        });
        registry
    }

    /// Adds (or replaces) an entry.
    pub fn register(&mut self, entry: ProtocolEntry) {
        self.entries.insert(entry.name, entry);
    }

    /// All registered names in lexicographic order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.keys().copied().collect()
    }

    /// Iterates over the entries in name order.
    pub fn entries(&self) -> impl Iterator<Item = &ProtocolEntry> {
        self.entries.values()
    }

    /// Looks up one entry by name.
    pub fn entry(&self, name: &str) -> Option<&ProtocolEntry> {
        self.entries.get(name)
    }

    /// Number of registered protocols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no protocols are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Constructs the protocol registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownProtocol`] if the name is not
    /// registered, plus constructor-specific errors.
    pub fn build(
        &self,
        name: &str,
        params: &ProtocolParams,
    ) -> Result<Box<dyn Protocol>, ProtocolError> {
        let entry = self
            .entry(name)
            .ok_or_else(|| ProtocolError::UnknownProtocol {
                name: name.to_string(),
                known: self.names().join(", "),
            })?;
        let protocol = entry.construct(params)?;
        debug_assert_eq!(
            protocol.kind(),
            entry.kind,
            "registry entry {name} constructed a protocol of the wrong kind"
        );
        Ok(protocol)
    }

    /// Constructs the protocol described by `spec`.
    ///
    /// # Errors
    ///
    /// See [`ProtocolRegistry::build`].
    pub fn build_spec(&self, spec: &ProtocolSpec) -> Result<Box<dyn Protocol>, ProtocolError> {
        self.build(spec.name(), spec.params())
    }
}

impl Default for ProtocolRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

/// The §3 deterministic advice algorithms as a per-node [`Protocol`].
///
/// The id-prefix advice is perfect — computed from the *actual* participant
/// set at node-construction time, exactly as the paper's model grants every
/// participant the same `b`-bit hint about the designated transmitter.
pub struct DeterministicAdviceProtocol {
    universe: usize,
    advice_bits: usize,
    kind: ProtocolKind,
    name: &'static str,
}

impl DeterministicAdviceProtocol {
    /// Creates the protocol for a universe of size `universe` and an advice
    /// budget of `advice_bits` bits, in the given feedback model.
    pub fn new(universe: usize, advice_bits: usize, kind: ProtocolKind) -> Self {
        let name = match kind {
            ProtocolKind::NoCollisionDetection => "det-advice-no-cd",
            ProtocolKind::CollisionDetection => "det-advice-cd",
        };
        Self {
            universe,
            advice_bits,
            kind,
            name,
        }
    }

    /// The advice budget in bits.
    pub fn advice_bits(&self) -> usize {
        self.advice_bits
    }

    /// The universe size `n`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    fn advice_for(&self, participants: &[ParticipantId]) -> Result<Advice, ProtocolError> {
        let ids: Vec<usize> = participants.iter().map(|p| p.index()).collect();
        Ok(IdPrefixOracle.advise(self.universe, &ids, self.advice_bits)?)
    }
}

impl Protocol for DeterministicAdviceProtocol {
    fn kind(&self) -> ProtocolKind {
        self.kind
    }

    fn name(&self) -> &str {
        self.name
    }

    fn behavior(&self) -> Behavior<'_> {
        Behavior::PerNode(self)
    }
}

impl NodeFactory for DeterministicAdviceProtocol {
    fn build_nodes(
        &self,
        participants: &[ParticipantId],
    ) -> Result<Vec<Box<dyn NodeProtocol>>, ProtocolError> {
        if participants.is_empty() {
            return Err(ProtocolError::InvalidParameter {
                what: "deterministic advice protocols require at least one participant".into(),
            });
        }
        let advice = self.advice_for(participants)?;
        participants
            .iter()
            .map(|&id| -> Result<Box<dyn NodeProtocol>, ProtocolError> {
                match self.kind {
                    ProtocolKind::NoCollisionDetection => Ok(Box::new(
                        DeterministicNoCdAdvice::new(self.universe, id, &advice)?,
                    )),
                    ProtocolKind::CollisionDetection => Ok(Box::new(DeterministicCdAdvice::new(
                        self.universe,
                        id,
                        &advice,
                    )?)),
                }
            })
            .collect()
    }

    fn round_budget(&self, participants: &[ParticipantId]) -> Option<usize> {
        let advice = self.advice_for(participants).ok()?;
        let first = *participants.first()?;
        let budget = match self.kind {
            ProtocolKind::NoCollisionDetection => {
                DeterministicNoCdAdvice::new(self.universe, first, &advice)
                    .ok()?
                    .worst_case_rounds()
            }
            ProtocolKind::CollisionDetection => {
                DeterministicCdAdvice::new(self.universe, first, &advice)
                    .ok()?
                    .worst_case_rounds()
            }
        };
        Some(budget.max(1))
    }

    fn deterministic(&self) -> bool {
        // The §3 advice schedules are precomputed transmission schedules:
        // `decide` is a pure function of (id, advice, round) and never
        // touches the RNG, so outcomes depend only on the participant set.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::try_run_protocol;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn standard_registry_has_the_full_catalogue() {
        let registry = ProtocolRegistry::standard();
        assert!(registry.len() >= 8, "only {} protocols", registry.len());
        assert!(!registry.is_empty());
        for name in [
            "decay",
            "fixed-probability",
            "blind-trust",
            "willard",
            "sorted-guess",
            "sorted-guess-cycling",
            "coded-search",
            "coded-search-shannon-fano",
            "advised-decay",
            "advised-willard",
            "det-advice-no-cd",
            "det-advice-cd",
        ] {
            assert!(registry.entry(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn unknown_names_produce_a_typed_error() {
        let registry = ProtocolRegistry::standard();
        let err = registry
            .build("no-such-protocol", &ProtocolParams::for_universe(64))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownProtocol { .. }));
        assert!(err.to_string().contains("no-such-protocol"));
        // The error lists the known names to help the caller.
        assert!(err.to_string().contains("decay"));
    }

    #[test]
    fn prediction_protocols_require_a_prediction() {
        let registry = ProtocolRegistry::standard();
        let err = registry
            .build("sorted-guess", &ProtocolParams::for_universe(256))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ProtocolError::MissingParameter { .. }));
    }

    #[test]
    fn spec_builder_round_trips_through_the_registry() {
        let prediction = crp_info::SizeDistribution::point_mass(1024, 60).unwrap();
        let condensed = CondensedDistribution::from_sizes(&prediction);
        let protocol = ProtocolSpec::new("coded-search")
            .universe(1024)
            .prediction(condensed)
            .build()
            .unwrap();
        assert_eq!(protocol.kind(), ProtocolKind::CollisionDetection);
        assert!(protocol.horizon().is_some());
    }

    #[test]
    fn per_node_advice_protocol_resolves_deterministically() {
        let protocol = DeterministicAdviceProtocol::new(256, 3, ProtocolKind::CollisionDetection);
        assert_eq!(protocol.advice_bits(), 3);
        assert_eq!(protocol.universe(), 256);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let exec = try_run_protocol(&protocol, 5, 16, &mut rng).unwrap();
        assert!(exec.resolved);
    }

    #[test]
    fn per_node_budget_shrinks_with_advice() {
        let participants: Vec<ParticipantId> = (0..4).map(ParticipantId).collect();
        let mut last = usize::MAX;
        for bits in [0usize, 2, 4, 6] {
            let protocol =
                DeterministicAdviceProtocol::new(256, bits, ProtocolKind::NoCollisionDetection);
            let budget = protocol.round_budget(&participants).unwrap();
            assert!(budget <= last, "budget grew with advice");
            last = budget;
        }
    }

    #[test]
    fn entry_metadata_matches_construction() {
        let registry = ProtocolRegistry::standard();
        let entry = registry.entry("willard").unwrap();
        assert_eq!(entry.kind, ProtocolKind::CollisionDetection);
        assert!(!entry.summary.is_empty());
        let built = entry
            .construct(&ProtocolParams::for_universe(1 << 12))
            .unwrap();
        assert_eq!(built.kind(), entry.kind);
        assert_eq!(built.name(), "willard");
        assert!(format!("{entry:?}").contains("willard"));
    }
}
