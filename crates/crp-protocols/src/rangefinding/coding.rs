//! Target-distance coding (paper Lemma 2.5).
//!
//! Given a range-finding sequence `S`, the paper encodes a target
//! `x ∈ L(n)` as the pair `(r, d)` where `r` is the first step at which `S`
//! comes within the tolerance of `x` and `d = x − S[r]` is the residual
//! distance.  The code length is about `log r + log(tolerance) + 1` bits,
//! so a fast range-finding sequence yields a short code — and the Source
//! Coding Theorem then lower-bounds the expected solving step by
//! `2^{H} / Θ(tolerance)`.  These helpers compute the code lengths so the
//! inequality can be checked numerically (experiment `F-RF`).

use crp_info::CondensedDistribution;

use super::sequence::RangeFindingSequence;

/// The target-distance code length (in bits) for one target, following the
/// accounting of Lemma 2.5: `⌈log₂(r + 1)⌉` bits for the step index plus
/// `⌈log₂(tolerance + 1)⌉ + 1` bits for the signed residual distance.
///
/// Returns `None` if the sequence never solves the target.
pub fn target_distance_code_length(
    sequence: &RangeFindingSequence,
    target: usize,
    tolerance: usize,
) -> Option<usize> {
    let step = sequence.solves_at(target, tolerance)?;
    let step_bits = ((step + 1) as f64).log2().ceil() as usize;
    let distance_bits = ((tolerance + 1) as f64).log2().ceil() as usize + 1;
    Some(step_bits.max(1) + distance_bits)
}

/// Expected target-distance code length when targets are drawn from
/// `targets`.  Targets the sequence never solves contribute
/// `penalty_bits` (use something comfortably larger than
/// `log₂(sequence length)`).
pub fn target_distance_expected_length(
    sequence: &RangeFindingSequence,
    targets: &CondensedDistribution,
    tolerance: usize,
    penalty_bits: usize,
) -> f64 {
    let mut expectation = 0.0;
    for range in 1..=targets.num_ranges() {
        let p = targets.probability_of_range(range);
        if p <= 0.0 {
            continue;
        }
        let bits = target_distance_code_length(sequence, range, tolerance).unwrap_or(penalty_bits);
        expectation += p * bits as f64;
    }
    expectation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Decay;
    use crate::rangefinding::rf_construction;
    use crp_info::SizeDistribution;

    #[test]
    fn code_length_grows_with_solving_step() {
        let seq = RangeFindingSequence::new((1..=16).collect());
        let early = target_distance_code_length(&seq, 1, 0).unwrap();
        let late = target_distance_code_length(&seq, 16, 0).unwrap();
        assert!(early <= late);
        assert!(target_distance_code_length(&seq, 40, 0).is_none());
    }

    #[test]
    fn tolerance_adds_distance_bits() {
        let seq = RangeFindingSequence::new(vec![5]);
        let tight = target_distance_code_length(&seq, 5, 0).unwrap();
        let loose = target_distance_code_length(&seq, 5, 7).unwrap();
        assert!(loose > tight);
    }

    #[test]
    fn source_coding_lower_bound_holds_for_decay() {
        // Lemma 2.5's machinery: the expected target-distance code length
        // must be at least the entropy of the target distribution (the code
        // is uniquely decodable).
        let n = 1 << 12;
        let decay = Decay::new(n).unwrap();
        let seq = rf_construction(&decay, n, 4 * 12);
        for dist in [
            SizeDistribution::uniform_ranges(n).unwrap(),
            SizeDistribution::geometric(n, 0.1).unwrap(),
            SizeDistribution::bimodal(n, 10, 3000, 0.5).unwrap(),
        ] {
            let condensed = CondensedDistribution::from_sizes(&dist);
            let expected_bits = target_distance_expected_length(&seq, &condensed, 1, 32);
            assert!(
                expected_bits + 1e-9 >= condensed.entropy() - 1.0,
                "expected code length {expected_bits} fell below H - 1 = {}",
                condensed.entropy() - 1.0
            );
        }
    }

    #[test]
    fn expected_length_prefers_well_matched_sequences() {
        let n = 4096;
        let truth = SizeDistribution::point_mass(n, 900).unwrap();
        let condensed = CondensedDistribution::from_sizes(&truth);
        let target = crp_info::range_index_for_size(900);
        // A sequence that guesses the target immediately versus one that
        // reaches it last.
        let fast = RangeFindingSequence::new(vec![target, 1, 2, 3]);
        let slow = RangeFindingSequence::new(vec![1, 2, 3, target]);
        let fast_len = target_distance_expected_length(&fast, &condensed, 0, 16);
        let slow_len = target_distance_expected_length(&slow, &condensed, 0, 16);
        assert!(fast_len <= slow_len);
    }
}
