//! Tree range finding (paper §2.4).
//!
//! In the collision-detection setting a uniform algorithm is a function
//! from collision histories to probabilities — equivalently a binary tree
//! whose node at history `s` is labelled with the probability `A(s)`.
//! The paper converts that tree into a range-finding tree `T_A` by
//! replacing each probability label `ℓ` with its implied range
//! `⌈log(1/ℓ)⌉`, and then grafting the canonical full tree `T*` of all
//! ranges at depth `⌈log log n⌉` along the leftmost path so that every
//! range is guaranteed to appear by depth `2⌈log log n⌉` (Case 2 of
//! Lemma 2.11).

use crp_channel::CollisionHistory;
use crp_info::{log2_ceil, range_index_for_size, CondensedDistribution};

use crate::traits::CdStrategy;

/// A binary tree whose nodes are labelled with range guesses from `L(n)`.
///
/// The tree is stored level by level as a map from history prefixes to
/// labels; only the nodes actually materialised (up to the construction
/// depth) are present.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeFindingTree {
    /// Flat storage: `levels[d]` holds the labels of depth-`d` nodes in
    /// left-to-right (history-lexicographic, 0 before 1) order.  A node may
    /// be `None` if the underlying strategy had given up on that history.
    levels: Vec<Vec<Option<usize>>>,
    num_ranges: usize,
}

impl RangeFindingTree {
    /// Builds the range-finding tree for a collision-detection strategy on
    /// a universe of size `n`, materialising `depth` levels plus the
    /// grafted canonical tree.
    ///
    /// The grafting follows the paper: walk the leftmost path to depth
    /// `⌈log log n⌉` and hang the canonical tree `T*` (a balanced tree
    /// containing every range in `L(n)`) below it, so every range appears
    /// by depth `⌈log log n⌉ + ⌈log ⌈log n⌉⌉ ≤ 2⌈log log n⌉`.
    pub fn from_strategy<S: CdStrategy + ?Sized>(strategy: &S, n: usize, depth: usize) -> Self {
        let num_ranges = range_index_for_size(n.max(2));
        let graft_depth = log2_ceil(num_ranges.max(1) as u64) as usize;
        let canonical_depth = log2_ceil(num_ranges.max(1) as u64) as usize;
        let total_depth = depth.max(graft_depth + canonical_depth + 1);

        let mut levels: Vec<Vec<Option<usize>>> = Vec::with_capacity(total_depth);
        for d in 0..total_depth {
            let width = 1usize << d;
            let mut level = Vec::with_capacity(width);
            for node in 0..width {
                // The history leading to this node: the bits of `node`,
                // most significant first, of length `d`.
                let bits: Vec<bool> = (0..d).rev().map(|shift| (node >> shift) & 1 == 1).collect();
                let history = CollisionHistory::from_bits(bits);
                let label = strategy.probability(&history).map(|p| {
                    if p <= 0.0 {
                        num_ranges
                    } else {
                        let raw = (1.0 / p).log2().ceil() as isize;
                        raw.clamp(1, num_ranges as isize) as usize
                    }
                });
                level.push(label);
            }
            levels.push(level);
        }

        // Graft the canonical tree along the leftmost path: at depth
        // graft_depth + j the leftmost 2^j nodes are relabelled with ranges
        // so that levels graft_depth..=graft_depth+canonical_depth jointly
        // contain every range in L(n).
        let mut next_range = 1usize;
        let mut d = graft_depth;
        while next_range <= num_ranges && d < levels.len() {
            for label in levels[d].iter_mut() {
                if next_range > num_ranges {
                    break;
                }
                *label = Some(next_range);
                next_range += 1;
            }
            d += 1;
        }

        Self { levels, num_ranges }
    }

    /// Number of materialised levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Number of ranges in the underlying support `L(n)`.
    pub fn num_ranges(&self) -> usize {
        self.num_ranges
    }

    /// The shallowest depth at which a node label comes within `tolerance`
    /// of `target` (the range-finding complexity of that target), if any.
    ///
    /// Depths are counted from 1 for the root so they line up with round
    /// counts.
    pub fn depth_solving(&self, target: usize, tolerance: usize) -> Option<usize> {
        for (d, level) in self.levels.iter().enumerate() {
            if level
                .iter()
                .any(|&label| label.is_some_and(|v| v.abs_diff(target) <= tolerance))
            {
                return Some(d + 1);
            }
        }
        None
    }

    /// Expected solving depth when targets are drawn from `targets`;
    /// unsolved targets contribute `penalty`.
    pub fn expected_depth(
        &self,
        targets: &CondensedDistribution,
        tolerance: usize,
        penalty: usize,
    ) -> f64 {
        let mut expectation = 0.0;
        for range in 1..=targets.num_ranges() {
            let p = targets.probability_of_range(range);
            if p <= 0.0 {
                continue;
            }
            let depth = self.depth_solving(range, tolerance).unwrap_or(penalty);
            expectation += p * depth as f64;
        }
        expectation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Willard;
    use crate::predicted::CodedSearch;
    use crp_info::SizeDistribution;

    #[test]
    fn every_range_appears_within_twice_log_log_n() {
        let n = 1 << 16; // 16 ranges, log log n = 4
        let willard = Willard::new(n).unwrap();
        let tree = RangeFindingTree::from_strategy(&willard, n, 4);
        for range in 1..=16 {
            let depth = tree
                .depth_solving(range, 0)
                .unwrap_or_else(|| panic!("range {range} missing from the tree"));
            assert!(
                depth <= 2 * 4 + 2,
                "range {range} only appears at depth {depth}"
            );
        }
        assert_eq!(tree.num_ranges(), 16);
    }

    #[test]
    fn willard_tree_finds_mid_ranges_at_the_root() {
        let n = 1 << 8; // 8 ranges, root probes the median range 4
        let willard = Willard::new(n).unwrap();
        let tree = RangeFindingTree::from_strategy(&willard, n, 4);
        assert_eq!(tree.depth_solving(4, 0), Some(1));
        // Ranges one probe away appear at depth 2.
        assert!(tree.depth_solving(2, 0).unwrap() <= 3);
        assert!(tree.depth_solving(6, 0).unwrap() <= 3);
    }

    #[test]
    fn coded_search_tree_reaches_likely_ranges_early() {
        let n = 4096;
        let likely = 700;
        let prediction = SizeDistribution::bimodal(n, likely, 8, 0.9).unwrap();
        let protocol = CodedSearch::from_sizes(&prediction).unwrap();
        let tree = RangeFindingTree::from_strategy(&protocol, n, protocol.horizon());
        let likely_range = crp_info::range_index_for_size(likely);
        let unlikely_range = crp_info::range_index_for_size(2);
        let likely_depth = tree.depth_solving(likely_range, 0).unwrap();
        let unlikely_depth = tree.depth_solving(unlikely_range, 0).unwrap();
        assert!(
            likely_depth <= unlikely_depth,
            "likely range at depth {likely_depth}, unlikely at {unlikely_depth}"
        );
    }

    #[test]
    fn expected_depth_weights_by_target_distribution() {
        let n = 1024;
        let willard = Willard::new(n).unwrap();
        let tree = RangeFindingTree::from_strategy(&willard, n, 5);
        // A point mass on the root's probe range has expected depth 1.
        let easy =
            CondensedDistribution::from_sizes(&SizeDistribution::point_mass(n, 1 << 5).unwrap());
        let expected = tree.expected_depth(&easy, 0, 100);
        assert!(expected <= 2.0, "expected depth {expected} too large");
    }

    #[test]
    fn tree_depth_is_bounded_by_construction_request() {
        let n = 256;
        let willard = Willard::new(n).unwrap();
        let tree = RangeFindingTree::from_strategy(&willard, n, 3);
        // Even with a small request, grafting may deepen the tree, but it
        // stays within 2 log log n + a constant.
        assert!(tree.depth() >= 3);
        assert!(tree.depth() <= 10);
    }
}
