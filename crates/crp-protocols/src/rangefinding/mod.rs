//! Range finding (paper §2.3–§2.4): the combinatorial problem the lower
//! bounds reduce contention resolution to.
//!
//! The `(n, f(n))`-range finding problem asks a strategy to hit a target
//! range `v ∈ L(n)` to within additive error `f(n)`.  A strategy is either
//! a *sequence* of range values (used for the no-collision-detection lower
//! bound, Theorem 2.4) or a labelled binary *tree* (used for the
//! collision-detection lower bound, Theorem 2.8).  A contention-resolution
//! algorithm induces a range-finding strategy (the RF-Construction of
//! Algorithm 1, and its tree analogue), and a range-finding strategy yields
//! a code for the condensed size distribution via target-distance coding —
//! at which point the Source Coding Theorem lower-bounds the expected
//! complexity by the entropy.
//!
//! These constructions are implemented so the repository can *verify the
//! lower-bound machinery numerically*: build the strategy from a real
//! protocol, compute its expected range-finding time and the expected
//! target-distance code length, and check the paper's inequalities.

mod coding;
mod sequence;
mod tree;

pub use coding::{target_distance_code_length, target_distance_expected_length};
pub use sequence::{rf_construction, RangeFindingSequence};
pub use tree::RangeFindingTree;
