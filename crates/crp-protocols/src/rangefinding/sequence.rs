//! Sequence range finding and the RF-Construction (paper Algorithm 1).

use crp_info::{range_index_for_size, CondensedDistribution};

use crate::traits::NoCdSchedule;

/// A range-finding strategy in sequence form: a list of guesses from
/// `L(n)`, visited in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeFindingSequence {
    guesses: Vec<usize>,
}

impl RangeFindingSequence {
    /// Wraps an explicit guess sequence.
    pub fn new(guesses: Vec<usize>) -> Self {
        Self { guesses }
    }

    /// The guesses, in visit order.
    pub fn guesses(&self) -> &[usize] {
        &self.guesses
    }

    /// Length of the sequence.
    pub fn len(&self) -> usize {
        self.guesses.len()
    }

    /// True if the sequence contains no guesses.
    pub fn is_empty(&self) -> bool {
        self.guesses.is_empty()
    }

    /// The first (1-based) step at which the sequence comes within
    /// `tolerance` of `target`, i.e. solves `(n, tolerance)`-range finding
    /// for that target.
    pub fn solves_at(&self, target: usize, tolerance: usize) -> Option<usize> {
        self.guesses
            .iter()
            .position(|&g| g.abs_diff(target) <= tolerance)
            .map(|i| i + 1)
    }

    /// Expected solving step when the target range is drawn from the
    /// condensed distribution `targets`.  Targets the sequence never solves
    /// contribute `penalty` steps (the analysis only needs a finite stand-in
    /// for "never"; pass the sequence length or larger).
    pub fn expected_steps(
        &self,
        targets: &CondensedDistribution,
        tolerance: usize,
        penalty: usize,
    ) -> f64 {
        let mut expectation = 0.0;
        for range in 1..=targets.num_ranges() {
            let p = targets.probability_of_range(range);
            if p <= 0.0 {
                continue;
            }
            let steps = self.solves_at(range, tolerance).unwrap_or(penalty);
            expectation += p * steps as f64;
        }
        expectation
    }
}

/// The paper's RF-Construction (Algorithm 1): converts a uniform
/// no-collision-detection schedule into a range-finding sequence by
/// interleaving the schedule's implied range guesses `⌈log(1/p_i)⌉` with a
/// cyclic sweep of every range in `L(n)`.
///
/// The interleaving guarantees every range appears within the first
/// `2⌈log n⌉` entries (Case 2 of Lemma 2.7), while preserving — at most a
/// factor-2 position penalty — the schedule's own good guesses (Case 1).
///
/// `horizon` bounds how many schedule rounds are converted (the paper's
/// algorithm runs over the full schedule `A = p₁ … p_z`).
pub fn rf_construction<S: NoCdSchedule + ?Sized>(
    schedule: &S,
    n: usize,
    horizon: usize,
) -> RangeFindingSequence {
    let num_ranges = range_index_for_size(n.max(2));
    let mut guesses = Vec::with_capacity(2 * horizon);
    let mut sweep = 0usize;
    for round in 1..=horizon {
        let Some(p) = schedule.probability(round) else {
            break;
        };
        // The schedule's implied guess: the range whose probability 2^-i is
        // closest to p, i.e. ⌈log(1/p)⌉ (clamped into L(n)).
        let implied = if p <= 0.0 {
            num_ranges
        } else {
            let raw = (1.0 / p).log2().ceil() as isize;
            raw.clamp(1, num_ranges as isize) as usize
        };
        guesses.push(implied);
        // The interleaved sweep entry, cycling through all of L(n).
        guesses.push(sweep + 1);
        sweep = (sweep + 1) % num_ranges;
    }
    RangeFindingSequence::new(guesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Decay;
    use crate::predicted::SortedGuess;
    use crp_info::SizeDistribution;

    #[test]
    fn solves_at_finds_the_first_close_guess() {
        let seq = RangeFindingSequence::new(vec![10, 2, 5, 7]);
        assert_eq!(seq.solves_at(5, 0), Some(3));
        assert_eq!(seq.solves_at(6, 1), Some(3));
        assert_eq!(seq.solves_at(3, 1), Some(2));
        assert_eq!(seq.solves_at(20, 2), None);
        assert_eq!(seq.len(), 4);
        assert!(!seq.is_empty());
    }

    #[test]
    fn rf_construction_interleaves_a_full_sweep_early() {
        let n = 1024; // 10 ranges
        let decay = Decay::new(n).unwrap();
        let seq = rf_construction(&decay, n, 40);
        // Within the first 2 * 10 entries every range must appear
        // (the interleaved sweep guarantees it).
        let prefix: Vec<usize> = seq.guesses().iter().take(20).copied().collect();
        for range in 1..=10 {
            assert!(
                prefix.contains(&range),
                "range {range} missing from the first 2 log n entries: {prefix:?}"
            );
        }
    }

    #[test]
    fn rf_construction_preserves_schedule_guesses_at_odd_positions() {
        let n = 256;
        let decay = Decay::new(n).unwrap();
        let seq = rf_construction(&decay, n, 8);
        // Round i of decay transmits with 2^-i, so the implied guess is i.
        for (round, chunk) in seq.guesses().chunks(2).enumerate() {
            assert_eq!(chunk[0], round + 1, "schedule guess at position {round}");
        }
    }

    #[test]
    fn expected_steps_reflects_prediction_quality() {
        let n = 4096;
        let truth = SizeDistribution::point_mass(n, 700).unwrap();
        let truth_condensed = CondensedDistribution::from_sizes(&truth);
        // A protocol built from the correct prediction finds the range fast.
        let good = SortedGuess::from_sizes(&truth);
        let good_seq = rf_construction(&good, n, good.pass_length());
        // A protocol built from a confidently wrong prediction takes longer.
        let wrong = SortedGuess::from_sizes(&SizeDistribution::point_mass(n, 2).unwrap());
        let wrong_seq = rf_construction(&wrong, n, wrong.pass_length());
        let tolerance = 1;
        let penalty = 4 * good_seq.len().max(wrong_seq.len());
        let good_steps = good_seq.expected_steps(&truth_condensed, tolerance, penalty);
        let wrong_steps = wrong_seq.expected_steps(&truth_condensed, tolerance, penalty);
        assert!(
            good_steps <= wrong_steps,
            "good prediction should solve range finding no later ({good_steps} vs {wrong_steps})"
        );
    }

    #[test]
    fn lemma_2_7_factor_two_bound_holds_for_sorted_guess() {
        // For the sorted-guess protocol the schedule's own guess for the
        // most likely range appears in round 1, so the range-finding
        // sequence solves that range within the first 2 positions.
        let n = 2048;
        let prediction = SizeDistribution::point_mass(n, 321).unwrap();
        let protocol = SortedGuess::from_sizes(&prediction);
        let seq = rf_construction(&protocol, n, protocol.pass_length());
        let target = crp_info::range_index_for_size(321);
        assert!(seq.solves_at(target, 0).unwrap() <= 2);
    }

    #[test]
    fn construction_handles_exhausted_schedules() {
        let n = 256;
        let prediction = SizeDistribution::uniform_ranges(n).unwrap();
        let one_shot = SortedGuess::from_sizes(&prediction);
        let seq = rf_construction(&one_shot, n, 100);
        // The schedule has only 8 rounds; the sequence stops at 2 * 8 entries.
        assert_eq!(seq.len(), 16);
    }
}
