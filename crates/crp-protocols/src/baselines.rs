//! Classical baselines: decay, Willard's binary search and the known-size
//! protocol.
//!
//! These are the comparison points the paper measures its predictions
//! against: decay achieves `O(log n)` expected rounds without collision
//! detection, Willard achieves `O(log log n)` with collision detection, and
//! a correct size estimate `k̂ = Θ(k)` achieves `O(1)` rounds.

use crp_channel::CollisionHistory;
use crp_info::{log2_ceil, range_index_for_size, range_interval, CondensedDistribution};

use crate::error::ProtocolError;
use crate::traits::{CdStrategy, NoCdSchedule};

/// The decay strategy of Bar-Yehuda, Goldreich and Itai: cycle forever
/// through the geometrically decreasing probabilities
/// `1/2, 1/4, …, 2^{-⌈log n⌉}`.
///
/// One full sweep takes `⌈log n⌉` rounds and contains a probability within
/// a factor of two of `1/k` for every possible `k ≤ n`, which is why the
/// expected round complexity is `O(log n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decay {
    num_ranges: usize,
}

impl Decay {
    /// Creates the decay schedule for a universe of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self, ProtocolError> {
        if n < 2 {
            return Err(ProtocolError::InvalidParameter {
                what: format!("decay requires n >= 2, got {n}"),
            });
        }
        Ok(Self {
            num_ranges: range_index_for_size(n),
        })
    }

    /// Number of distinct probabilities in one sweep (`⌈log n⌉`).
    pub fn sweep_length(&self) -> usize {
        self.num_ranges
    }
}

impl NoCdSchedule for Decay {
    fn probability(&self, round: usize) -> Option<f64> {
        let position = (round - 1) % self.num_ranges;
        Some(2f64.powi(-(position as i32 + 1)))
    }

    fn name(&self) -> &str {
        "decay"
    }
}

/// The known-size baseline: transmit with probability `1/estimate` in every
/// round.
///
/// With `estimate = Θ(k)` the per-round success probability is a constant,
/// so the expected number of rounds is `O(1)` — the best-case bound the
/// paper's predictions try to approach.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedProbability {
    estimate: usize,
}

impl FixedProbability {
    /// Creates the protocol for an estimated participant count `estimate`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if `estimate == 0`.
    pub fn new(estimate: usize) -> Result<Self, ProtocolError> {
        if estimate == 0 {
            return Err(ProtocolError::InvalidParameter {
                what: "size estimate must be positive".into(),
            });
        }
        Ok(Self { estimate })
    }

    /// The size estimate `k̂` this protocol was built for.
    pub fn estimate(&self) -> usize {
        self.estimate
    }
}

impl NoCdSchedule for FixedProbability {
    fn probability(&self, _round: usize) -> Option<f64> {
        Some(1.0 / self.estimate as f64)
    }

    fn name(&self) -> &str {
        "fixed-probability"
    }

    fn constant_probability(&self) -> Option<f64> {
        Some(1.0 / self.estimate as f64)
    }
}

/// The deliberately naive prediction consumer: trust the advice past any
/// divergence bound.
///
/// It reads the prediction's single most likely condensed range, takes
/// that range's top size as `k̂`, and transmits with probability `1/k̂`
/// forever — no decay, no cycling, no hedge against the prediction being
/// wrong.  When the advice is accurate this matches the `O(1)`-round
/// [`FixedProbability`] baseline; when the truth drifts away from the
/// advice, its success probability collapses like `(k/k̂)·e^{−k/k̂}` and it
/// violates the paper's robustness envelope — exactly the failure the
/// fuzzing layer's property oracles exist to catch, which is why this is
/// registered as the standard oracle-bait target.
#[derive(Debug, Clone, PartialEq)]
pub struct BlindTrust {
    schedule: FixedProbability,
}

impl BlindTrust {
    /// Derives `k̂` from the prediction's modal condensed range.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] for a prediction with
    /// no ranges.
    pub fn from_prediction(prediction: &CondensedDistribution) -> Result<Self, ProtocolError> {
        let modal = prediction
            .ranges_by_likelihood()
            .first()
            .copied()
            .ok_or_else(|| ProtocolError::InvalidParameter {
                what: "blind-trust needs a prediction with at least one range".into(),
            })?;
        let (_, high) = range_interval(modal);
        let estimate = high.min(prediction.max_size()).max(2);
        Ok(Self {
            schedule: FixedProbability::new(estimate)?,
        })
    }

    /// The size estimate `k̂` the protocol trusts.
    pub fn estimate(&self) -> usize {
        self.schedule.estimate()
    }
}

impl NoCdSchedule for BlindTrust {
    fn probability(&self, round: usize) -> Option<f64> {
        self.schedule.probability(round)
    }

    fn name(&self) -> &str {
        "blind-trust"
    }

    fn constant_probability(&self) -> Option<f64> {
        self.schedule.constant_probability()
    }
}

/// Willard's collision-detection strategy: a binary search over the
/// `⌈log n⌉` geometric size guesses.
///
/// The strategy maintains a candidate interval of range indices.  Each
/// round it probes the median range `m` by transmitting with probability
/// `2^{-m}`: a collision means the probability was too high for the actual
/// participant count (the true range is larger), silence means it was too
/// low (the true range is smaller).  The search therefore takes
/// `O(log log n)` rounds.
///
/// The strategy is a pure function of the collision history, as required of
/// uniform algorithms: the candidate interval is recomputed from the
/// history on every call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Willard {
    num_ranges: usize,
}

impl Willard {
    /// Creates Willard's search for a universe of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self, ProtocolError> {
        if n < 2 {
            return Err(ProtocolError::InvalidParameter {
                what: format!("willard requires n >= 2, got {n}"),
            });
        }
        Ok(Self {
            num_ranges: range_index_for_size(n),
        })
    }

    /// Creates a search restricted to the (1-based, inclusive) candidate
    /// range interval `[low, high]` — used by the advice-augmented variant.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if the interval is empty
    /// or inverted.
    pub fn over_ranges(low: usize, high: usize) -> Result<WillardSearch, ProtocolError> {
        WillardSearch::new(low, high)
    }

    /// Worst-case number of rounds of the search (`⌈log ⌈log n⌉⌉ + 1`).
    pub fn worst_case_rounds(&self) -> usize {
        log2_ceil(self.num_ranges as u64) as usize + 1
    }
}

impl CdStrategy for Willard {
    fn probability(&self, history: &CollisionHistory) -> Option<f64> {
        WillardSearch {
            low: 1,
            high: self.num_ranges,
        }
        .probability(history)
    }

    fn name(&self) -> &str {
        "willard"
    }
}

/// A Willard-style binary search over an explicit candidate range interval.
///
/// This is both the engine behind [`Willard`] and the building block of the
/// §2.6 [`crate::CodedSearch`] phases and the §3 advice-augmented
/// [`crate::AdvisedWillard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WillardSearch {
    low: usize,
    high: usize,
}

impl WillardSearch {
    /// Creates a search over the (1-based, inclusive) range interval
    /// `[low, high]`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if `low == 0` or
    /// `low > high`.
    pub fn new(low: usize, high: usize) -> Result<Self, ProtocolError> {
        if low == 0 || low > high {
            return Err(ProtocolError::InvalidParameter {
                what: format!("invalid range interval [{low}, {high}]"),
            });
        }
        Ok(Self { low, high })
    }

    /// The candidate interval this search starts from.
    pub fn interval(&self) -> (usize, usize) {
        (self.low, self.high)
    }

    /// The state of the binary search after consuming `bits` feedback bits
    /// (`true` = collision = the probed probability was too high for the
    /// participant count, so the true range is larger).
    ///
    /// Returns the remaining candidate interval, or `None` if the search
    /// has been exhausted (every range was eliminated).
    pub fn state_after(&self, bits: &[bool]) -> Option<(usize, usize)> {
        let mut low = self.low;
        let mut high = self.high;
        for &collision in bits {
            if low > high {
                return None;
            }
            let median = low + (high - low) / 2;
            if collision {
                // Too many transmitters at probability 2^-median: the true
                // range is above the median.
                low = median + 1;
            } else {
                // Silence: probability too small, the true range is at or
                // below the median; median itself was ruled out only as a
                // *larger* candidate, so keep searching strictly below it.
                if median == 0 {
                    return None;
                }
                high = median.saturating_sub(1);
            }
            if low > high {
                return None;
            }
        }
        Some((low, high))
    }

    /// Number of probes this search needs in the worst case.
    pub fn worst_case_rounds(&self) -> usize {
        let width = self.high - self.low + 1;
        log2_ceil(width as u64) as usize + 1
    }
}

impl CdStrategy for WillardSearch {
    fn probability(&self, history: &CollisionHistory) -> Option<f64> {
        let (low, high) = self.state_after(history.bits())?;
        let median = low + (high - low) / 2;
        Some(2f64.powi(-(median as i32)))
    }

    fn name(&self) -> &str {
        "willard-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{try_run_cd_strategy, try_run_schedule};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn decay_cycles_through_geometric_probabilities() {
        let decay = Decay::new(1024).unwrap();
        assert_eq!(decay.sweep_length(), 10);
        assert_eq!(decay.probability(1), Some(0.5));
        assert_eq!(decay.probability(2), Some(0.25));
        assert_eq!(decay.probability(10), Some(2f64.powi(-10)));
        // Cycles back to the start.
        assert_eq!(decay.probability(11), Some(0.5));
        assert_eq!(decay.name(), "decay");
    }

    #[test]
    fn decay_rejects_degenerate_universe() {
        assert!(Decay::new(1).is_err());
    }

    #[test]
    fn blind_trust_trusts_the_modal_range_forever() {
        let truth = crp_info::SizeDistribution::point_mass(1024, 32).unwrap();
        let prediction = CondensedDistribution::from_sizes(&truth);
        let blind = BlindTrust::from_prediction(&prediction).unwrap();
        // Size 32 lives in range (17..=32]; the range's top size is k̂.
        assert_eq!(blind.estimate(), 32);
        assert_eq!(blind.name(), "blind-trust");
        // The schedule never decays or cycles: same probability forever.
        assert_eq!(blind.probability(1), Some(1.0 / 32.0));
        assert_eq!(blind.probability(1_000_000), Some(1.0 / 32.0));
    }

    #[test]
    fn decay_resolves_for_many_sizes() {
        let decay = Decay::new(4096).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for k in [2usize, 10, 100, 1000, 4000] {
            let exec = try_run_schedule(&decay, k, 10_000, &mut rng).unwrap();
            assert!(exec.resolved, "decay failed to resolve with k={k}");
        }
    }

    #[test]
    fn decay_expected_rounds_scales_like_log_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let trials = 300;
        let mean_rounds = |n: usize, k: usize, rng: &mut ChaCha8Rng| {
            let decay = Decay::new(n).unwrap();
            let total: usize = (0..trials)
                .map(|_| try_run_schedule(&decay, k, 100_000, rng).unwrap().rounds)
                .sum();
            total as f64 / trials as f64
        };
        let small = mean_rounds(1 << 8, 200, &mut rng);
        let large = mean_rounds(1 << 16, 50_000, &mut rng);
        // log n doubles from 8 to 16; allow generous slack but require growth.
        assert!(
            large > small,
            "decay rounds should grow with log n: small={small}, large={large}"
        );
        assert!(large < 8.0 * small, "growth should be roughly logarithmic");
    }

    #[test]
    fn fixed_probability_is_constant_time_when_estimate_is_right() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let k = 500;
        let protocol = FixedProbability::new(k).unwrap();
        assert_eq!(protocol.estimate(), k);
        let trials = 400;
        let total: usize = (0..trials)
            .map(|_| {
                try_run_schedule(&protocol, k, 10_000, &mut rng)
                    .unwrap()
                    .rounds
            })
            .sum();
        let mean = total as f64 / trials as f64;
        // Success probability per round is ~1/e, so the mean is ~e.
        assert!(
            mean < 5.0,
            "mean rounds {mean} too large for a correct estimate"
        );
    }

    #[test]
    fn fixed_probability_rejects_zero_estimate() {
        assert!(FixedProbability::new(0).is_err());
        assert_eq!(
            FixedProbability::new(8).unwrap().name(),
            "fixed-probability"
        );
    }

    #[test]
    fn willard_search_state_tracks_binary_search() {
        let search = WillardSearch::new(1, 16).unwrap();
        assert_eq!(search.interval(), (1, 16));
        // No feedback yet: full interval, probe the median 8.
        assert_eq!(search.state_after(&[]), Some((1, 16)));
        // Collision: true range is above 8.
        assert_eq!(search.state_after(&[true]), Some((9, 16)));
        // Then silence at median 12: true range below 12.
        assert_eq!(search.state_after(&[true, false]), Some((9, 11)));
        // Exhausting the interval returns None.
        assert_eq!(
            search.state_after(&[false, false, false, false, false]),
            None
        );
    }

    #[test]
    fn willard_resolves_quickly_with_collision_detection() {
        let n = 1 << 16;
        let willard = Willard::new(n).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut resolved = 0;
        let trials = 300;
        let mut total_rounds = 0;
        for _ in 0..trials {
            let exec = try_run_cd_strategy(&willard, 3000, 200, &mut rng).unwrap();
            if exec.resolved {
                resolved += 1;
                total_rounds += exec.rounds;
            }
        }
        // The single-probe binary search succeeds with constant probability;
        // over many trials a solid majority should resolve, and those that
        // do should take O(log log n) ~ 5 rounds.
        assert!(resolved > trials / 3, "only {resolved}/{trials} resolved");
        let mean = total_rounds as f64 / resolved as f64;
        assert!(mean <= 10.0, "mean resolved rounds {mean} too large");
    }

    #[test]
    fn willard_worst_case_rounds_is_log_log_n() {
        let willard = Willard::new(1 << 16).unwrap();
        assert_eq!(willard.worst_case_rounds(), 5);
        assert_eq!(willard.name(), "willard");
        assert!(Willard::new(1).is_err());
    }

    #[test]
    fn willard_search_validation_and_worst_case() {
        assert!(WillardSearch::new(0, 5).is_err());
        assert!(WillardSearch::new(6, 5).is_err());
        let search = WillardSearch::new(3, 3).unwrap();
        assert_eq!(search.worst_case_rounds(), 1);
        assert_eq!(search.name(), "willard-search");
    }

    #[test]
    fn willard_over_ranges_delegates_to_search() {
        let search = Willard::over_ranges(2, 9).unwrap();
        assert_eq!(search.interval(), (2, 9));
    }
}
