//! Non-interactive contention resolution (paper §3.2).
//!
//! A scheme for the non-interactive problem consists of an advice function
//! `f_A : P(V) → {0,1}^b` together with, for every advice string `s`, the
//! set `V(s)` of nodes that would transmit upon hearing `s`.  The scheme is
//! correct if for every participant set `P`, `|V(f_A(P)) ∩ P| = 1` — i.e.
//! the advice alone suffices to pick a unique transmitter in a single
//! round, with no interaction.
//!
//! Theorem 3.3 shows any correct deterministic scheme needs `b ≥ log n`
//! bits: the sets `{V(s)}` form an `(n, n)`-strongly selective family, and
//! such families have at least `n` members (Theorem 3.2), hence at least
//! `log n` bits are needed to index them.  [`NonInteractiveScheme`]
//! implements the canonical matching upper bound (advice = the id of one
//! participant, `⌈log n⌉` bits) plus the machinery needed to *verify* the
//! lower-bound argument numerically: converting a scheme into its selective
//! family and checking correctness exhaustively at small scale.

use crp_predict::{Advice, AdviceOracle, IdPrefixOracle, PredictError};

use crate::error::ProtocolError;
use crate::selective_family::SelectiveFamily;

/// The canonical non-interactive scheme: the advice names one participant
/// (its full `⌈log n⌉`-bit id) and exactly that node transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonInteractiveScheme {
    universe_size: usize,
}

impl NonInteractiveScheme {
    /// Creates the scheme for a universe of `universe_size` potential
    /// participants.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if the universe is empty.
    pub fn new(universe_size: usize) -> Result<Self, ProtocolError> {
        if universe_size == 0 {
            return Err(ProtocolError::InvalidParameter {
                what: "non-interactive scheme requires a non-empty universe".into(),
            });
        }
        Ok(Self { universe_size })
    }

    /// The universe size `n`.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Number of advice bits this scheme uses: `⌈log n⌉`, matching the
    /// Theorem 3.3 lower bound.
    pub fn advice_bits(&self) -> usize {
        IdPrefixOracle::id_bits(self.universe_size)
    }

    /// The advice for a participant set: the full id of its smallest
    /// member.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::AdviceUnavailable`] for an empty set.
    pub fn advise(&self, participants: &[usize]) -> Result<Advice, PredictError> {
        IdPrefixOracle.advise(self.universe_size, participants, self.advice_bits())
    }

    /// The transmit set `V(s)` for an advice string: the single node whose
    /// id the advice encodes (or nobody, if the advice decodes outside the
    /// universe — possible only for non-power-of-two universes).
    pub fn transmit_set(&self, advice: &Advice) -> Vec<usize> {
        let id = advice.to_value();
        if id < self.universe_size {
            vec![id]
        } else {
            Vec::new()
        }
    }

    /// True if `participants` running this scheme produce exactly one
    /// transmitter in the single allowed round.
    pub fn solves(&self, participants: &[usize]) -> bool {
        match self.advise(participants) {
            Ok(advice) => {
                let transmitters: Vec<usize> = self
                    .transmit_set(&advice)
                    .into_iter()
                    .filter(|id| participants.contains(id))
                    .collect();
                transmitters.len() == 1
            }
            Err(_) => false,
        }
    }

    /// The strongly selective family induced by this scheme: one set
    /// `V(s)` per advice string `s` (Theorem 3.3's construction).
    pub fn induced_family(&self) -> SelectiveFamily {
        let bits = self.advice_bits();
        let sets: Vec<Vec<usize>> = (0..(1usize << bits))
            .map(|value| self.transmit_set(&Advice::from_value(value, bits)))
            .collect();
        SelectiveFamily::new(self.universe_size, sets)
    }

    /// Exhaustively verifies correctness over every non-empty participant
    /// set.  Exponential in `n`; intended for tests and the small-scale
    /// lower-bound verification experiment.
    ///
    /// # Panics
    ///
    /// Panics if `n > 20`.
    pub fn verify_exhaustively(&self) -> bool {
        assert!(
            self.universe_size <= 20,
            "exhaustive verification is limited to n <= 20"
        );
        for mask in 1u32..(1u32 << self.universe_size) {
            let participants: Vec<usize> = (0..self.universe_size)
                .filter(|&i| mask & (1 << i) != 0)
                .collect();
            if !self.solves(&participants) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selective_family::is_strongly_selective;

    #[test]
    fn canonical_scheme_solves_every_participant_set() {
        for n in [4usize, 8, 13, 16] {
            let scheme = NonInteractiveScheme::new(n).unwrap();
            assert!(scheme.verify_exhaustively(), "scheme failed for n={n}");
        }
    }

    #[test]
    fn advice_size_matches_theorem_3_3() {
        let scheme = NonInteractiveScheme::new(1024).unwrap();
        assert_eq!(scheme.advice_bits(), 10);
        assert_eq!(scheme.universe_size(), 1024);
    }

    #[test]
    fn induced_family_is_strongly_selective() {
        let n = 8;
        let scheme = NonInteractiveScheme::new(n).unwrap();
        let family = scheme.induced_family();
        // One set per advice string, each a singleton; the family is the
        // singleton family and is (n, n)-strongly selective.
        assert!(
            family.len() >= n,
            "Theorem 3.2: |F| >= n, got {}",
            family.len()
        );
        assert!(is_strongly_selective(&family, n, n));
    }

    #[test]
    fn transmit_set_is_a_singleton_inside_the_universe() {
        let scheme = NonInteractiveScheme::new(10).unwrap();
        let advice = Advice::from_value(7, scheme.advice_bits());
        assert_eq!(scheme.transmit_set(&advice), vec![7]);
        // Advice decoding to an id outside a non-power-of-two universe
        // transmits nobody.
        let advice = Advice::from_value(12, scheme.advice_bits());
        assert!(scheme.transmit_set(&advice).is_empty());
    }

    #[test]
    fn solves_specific_sets() {
        let scheme = NonInteractiveScheme::new(16).unwrap();
        assert!(scheme.solves(&[3]));
        assert!(scheme.solves(&[3, 9, 15]));
        assert!(!scheme.solves(&[]));
    }

    #[test]
    fn constructor_rejects_empty_universe() {
        assert!(NonInteractiveScheme::new(0).is_err());
    }

    #[test]
    #[should_panic(expected = "n <= 20")]
    fn exhaustive_verification_refuses_large_universes() {
        let scheme = NonInteractiveScheme::new(24).unwrap();
        let _ = scheme.verify_exhaustively();
    }
}
