//! Perfect-advice protocols (paper §3).
//!
//! Each protocol here matches one of the four tight bounds in the paper's
//! Table 2, given `b` bits of perfect advice produced by the oracles in
//! [`crp_predict::advice`]:
//!
//! | setting | bound | protocol |
//! |---|---|---|
//! | deterministic, no CD | `Θ(n / 2^b)` scan rounds | [`DeterministicNoCdAdvice`] |
//! | deterministic, CD | `Θ(log n − b)` | [`DeterministicCdAdvice`] |
//! | randomized, no CD | `Θ(log n / 2^b)` expected | [`AdvisedDecay`] |
//! | randomized, CD | `Θ(log log n − b)` expected | [`AdvisedWillard`] |
//!
//! (The paper states the deterministic no-CD bound as `Θ(n^{1−β}/log n)`
//! for advice budgets of the form `b = β·log n`; the protocol form used
//! here, a scan of the `n/2^b` candidate identities that remain after the
//! advice prefix, is exactly the matching upper-bound construction
//! described after Theorem 3.4.)
//!
//! [`NonInteractiveScheme`] implements the non-interactive contention
//! resolution problem used as the pivot of the deterministic lower bounds
//! (Theorem 3.3), together with its connection to strongly selective
//! families.

mod det_cd;
mod det_no_cd;
mod noninteractive;
mod rand_cd;
mod rand_no_cd;

pub use det_cd::DeterministicCdAdvice;
pub use det_no_cd::DeterministicNoCdAdvice;
pub use noninteractive::NonInteractiveScheme;
pub use rand_cd::AdvisedWillard;
pub use rand_no_cd::AdvisedDecay;
