//! Randomized contention resolution without collision detection, with `b`
//! bits of advice (the upper bound matching Theorem 3.6).
//!
//! The classical decay strategy cycles through the `⌈log n⌉` geometric size
//! guesses and therefore needs `Θ(log n)` expected rounds.  Range advice
//! (from [`crp_predict::RangeOracle`]) tells every participant which block
//! of `⌈log n⌉ / 2^b` guesses contains the true size range; the truncated
//! decay strategy cycles through just that block, for an expected round
//! complexity of `Θ(log n / 2^b)`.

use crp_info::range_index_for_size;
use crp_predict::{Advice, RangeOracle};

use crate::error::ProtocolError;
use crate::traits::NoCdSchedule;

/// Truncated decay: the decay strategy restricted to the candidate
/// geometric ranges selected by `b` bits of range advice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvisedDecay {
    /// Candidate geometric ranges (1-based, inclusive).
    low: usize,
    high: usize,
}

impl AdvisedDecay {
    /// Creates the truncated decay schedule for a universe of size
    /// `universe_size` given the shared advice.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if `universe_size < 2`.
    pub fn new(universe_size: usize, advice: &Advice) -> Result<Self, ProtocolError> {
        if universe_size < 2 {
            return Err(ProtocolError::InvalidParameter {
                what: format!("advised decay requires n >= 2, got {universe_size}"),
            });
        }
        let (low, high) = RangeOracle::candidate_ranges(universe_size, advice);
        Ok(Self { low, high })
    }

    /// The candidate range interval `[low, high]` this schedule sweeps.
    pub fn candidate_ranges(&self) -> (usize, usize) {
        (self.low, self.high)
    }

    /// Number of distinct probabilities in one sweep
    /// (`⌈log n⌉ / 2^b`, rounded up by the advice-interval arithmetic).
    pub fn sweep_length(&self) -> usize {
        self.high - self.low + 1
    }

    /// True if the sweep includes the correct range for a network of `k`
    /// participants.
    pub fn covers_size(&self, k: usize) -> bool {
        let range = range_index_for_size(k.max(2));
        range >= self.low && range <= self.high
    }
}

impl NoCdSchedule for AdvisedDecay {
    fn probability(&self, round: usize) -> Option<f64> {
        let position = (round - 1) % self.sweep_length();
        let range = self.low + position;
        Some(2f64.powi(-(range as i32)))
    }

    fn name(&self) -> &str {
        "advised-decay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::try_run_schedule;
    use crp_predict::AdviceOracle;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn advice_for(universe: usize, k: usize, budget: usize) -> Advice {
        let participants: Vec<usize> = (0..k).collect();
        RangeOracle.advise(universe, &participants, budget).unwrap()
    }

    #[test]
    fn sweep_shrinks_with_advice_budget() {
        let n = 1 << 16; // 16 ranges
        let k = 700;
        let mut widths = Vec::new();
        for budget in 0..=4 {
            let schedule = AdvisedDecay::new(n, &advice_for(n, k, budget)).unwrap();
            assert!(
                schedule.covers_size(k),
                "budget {budget} lost the true range"
            );
            widths.push(schedule.sweep_length());
        }
        assert_eq!(widths[0], 16);
        for pair in widths.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
        assert_eq!(*widths.last().unwrap(), 1);
    }

    #[test]
    fn expected_rounds_improve_with_advice() {
        let n = 1 << 16;
        let k = 700;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let trials = 400;
        let mean_for = |budget: usize, rng: &mut ChaCha8Rng| {
            let schedule = AdvisedDecay::new(n, &advice_for(n, k, budget)).unwrap();
            let total: usize = (0..trials)
                .map(|_| try_run_schedule(&schedule, k, 50_000, rng).unwrap().rounds)
                .sum();
            total as f64 / trials as f64
        };
        let no_advice = mean_for(0, &mut rng);
        let full_advice = mean_for(4, &mut rng);
        assert!(
            full_advice < no_advice,
            "advice should reduce expected rounds: {full_advice} vs {no_advice}"
        );
        // With the exact range pinned the schedule is a constant-probability
        // protocol: a handful of rounds in expectation.
        assert!(
            full_advice < 6.0,
            "full-advice mean {full_advice} too large"
        );
    }

    #[test]
    fn zero_advice_is_plain_decay_over_all_ranges() {
        let n = 1024;
        let schedule = AdvisedDecay::new(n, &Advice::empty()).unwrap();
        assert_eq!(schedule.candidate_ranges(), (1, 10));
        assert_eq!(schedule.sweep_length(), 10);
        assert_eq!(schedule.probability(1), Some(0.5));
        assert_eq!(schedule.probability(10), Some(2f64.powi(-10)));
        assert_eq!(schedule.probability(11), Some(0.5));
        assert_eq!(schedule.name(), "advised-decay");
    }

    #[test]
    fn always_resolves_when_the_advice_is_correct() {
        let n = 1 << 12;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for k in [2usize, 60, 500, 3000] {
            let schedule = AdvisedDecay::new(n, &advice_for(n, k, 2)).unwrap();
            assert!(schedule.covers_size(k));
            let exec = try_run_schedule(&schedule, k, 20_000, &mut rng).unwrap();
            assert!(exec.resolved, "k={k} did not resolve");
        }
    }

    #[test]
    fn constructor_validates_universe() {
        assert!(AdvisedDecay::new(1, &Advice::empty()).is_err());
    }
}
