//! Deterministic contention resolution without collision detection, with
//! `b` bits of advice (the upper bound matching Theorem 3.4).
//!
//! The advice (from [`crp_predict::IdPrefixOracle`]) is the first `b` bits
//! of a designated active participant's id, which narrows the candidate
//! identities to an interval of `n / 2^b` ids.  The protocol then gives
//! each remaining candidate id one dedicated round, in ascending order; a
//! node transmits exactly in the round of its own id.  The designated
//! participant is guaranteed to be in the interval, so the protocol always
//! resolves within `n / 2^b` rounds — and because the designated id is the
//! *smallest* active id in the interval, the first transmission is always
//! solo even if other active nodes also fall inside the interval... which
//! they might; those nodes transmit in *their own* later rounds, so the
//! designated participant's round still has exactly one transmitter.

use crp_channel::{Feedback, NodeProtocol, ParticipantId};
use crp_predict::{Advice, IdPrefixOracle};
use rand::RngCore;

use crate::error::ProtocolError;

/// Per-node state of the deterministic no-collision-detection advice
/// protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicNoCdAdvice {
    /// This node's id.
    id: ParticipantId,
    /// First candidate id in the advice interval.
    interval_start: usize,
    /// One-past-last candidate id in the advice interval.
    interval_end: usize,
    /// Whether this node already heard that the problem is resolved.
    resolved: bool,
}

impl DeterministicNoCdAdvice {
    /// Creates the protocol instance for node `id` in a universe of size
    /// `universe_size`, given the advice every participant received.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if the id is outside the
    /// universe.
    pub fn new(
        universe_size: usize,
        id: ParticipantId,
        advice: &Advice,
    ) -> Result<Self, ProtocolError> {
        if id.index() >= universe_size {
            return Err(ProtocolError::InvalidParameter {
                what: format!("participant {id} outside universe of size {universe_size}"),
            });
        }
        let (interval_start, interval_end) =
            IdPrefixOracle::candidate_interval(universe_size, advice);
        Ok(Self {
            id,
            interval_start,
            interval_end,
            resolved: false,
        })
    }

    /// Number of rounds the protocol needs in the worst case
    /// (`n / 2^b`, the width of the candidate interval).
    pub fn worst_case_rounds(&self) -> usize {
        self.interval_end - self.interval_start
    }

    /// The dedicated (1-based) round of this node, if its id lies in the
    /// candidate interval.
    pub fn own_round(&self) -> Option<usize> {
        let idx = self.id.index();
        if idx >= self.interval_start && idx < self.interval_end {
            Some(idx - self.interval_start + 1)
        } else {
            None
        }
    }
}

impl NodeProtocol for DeterministicNoCdAdvice {
    fn decide(&mut self, round: usize, _rng: &mut dyn RngCore) -> bool {
        !self.resolved && self.own_round() == Some(round)
    }

    fn observe(&mut self, _round: usize, feedback: Feedback) {
        if feedback.is_resolved() {
            self.resolved = true;
        }
    }

    fn finished(&self) -> bool {
        self.resolved || self.own_round().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_channel::{execute, ChannelMode, ExecutionConfig};
    use crp_predict::AdviceOracle;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Builds one protocol instance per active participant.
    fn build_nodes(
        universe: usize,
        active: &[usize],
        budget_bits: usize,
    ) -> Vec<DeterministicNoCdAdvice> {
        let advice = IdPrefixOracle
            .advise(universe, active, budget_bits)
            .unwrap();
        active
            .iter()
            .map(|&id| DeterministicNoCdAdvice::new(universe, ParticipantId(id), &advice).unwrap())
            .collect()
    }

    #[test]
    fn resolves_within_the_candidate_interval_width() {
        let universe = 256;
        let active = vec![100, 130, 200];
        for budget in [0usize, 2, 4, 8] {
            let mut nodes = build_nodes(universe, &active, budget);
            let worst = nodes[0].worst_case_rounds();
            assert_eq!(worst, universe >> budget.min(8));
            let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, worst.max(1));
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            let exec = execute(&mut nodes, &config, &mut rng);
            assert!(exec.resolved, "budget {budget} failed to resolve");
            assert!(exec.rounds <= worst);
        }
    }

    #[test]
    fn full_advice_resolves_in_one_round() {
        let universe = 1024;
        let active = vec![777, 900];
        let mut nodes = build_nodes(universe, &active, 10);
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let exec = execute(&mut nodes, &config, &mut rng);
        assert!(exec.resolved);
        assert_eq!(exec.rounds, 1);
    }

    #[test]
    fn zero_advice_degenerates_to_a_full_scan() {
        let universe = 64;
        let active = vec![63];
        let mut nodes = build_nodes(universe, &active, 0);
        assert_eq!(nodes[0].worst_case_rounds(), 64);
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 64);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let exec = execute(&mut nodes, &config, &mut rng);
        assert!(exec.resolved);
        assert_eq!(exec.rounds, 64, "id 63 transmits in the last scan round");
    }

    #[test]
    fn the_designated_round_has_a_single_transmitter() {
        // Two active nodes in the same advice interval: each transmits only
        // in its own dedicated round, so there is never a collision.
        let universe = 128;
        let active = vec![40, 41];
        let mut nodes = build_nodes(universe, &active, 3);
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 32).with_trace();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let exec = execute(&mut nodes, &config, &mut rng);
        assert!(exec.resolved);
        assert_eq!(exec.trace.collisions(), 0);
    }

    #[test]
    fn nodes_outside_the_interval_never_transmit() {
        let universe = 256;
        // The designated (smallest) participant is 10; participant 200 is
        // far outside the 32-wide advice interval for budget 3.
        let active = vec![10, 200];
        let nodes = build_nodes(universe, &active, 3);
        assert!(nodes[1].own_round().is_none());
        assert!(nodes[1].finished());
    }

    #[test]
    fn constructor_validates_the_id() {
        let advice = Advice::empty();
        assert!(DeterministicNoCdAdvice::new(16, ParticipantId(16), &advice).is_err());
        assert!(DeterministicNoCdAdvice::new(16, ParticipantId(15), &advice).is_ok());
    }
}
