//! Deterministic contention resolution with collision detection and `b`
//! bits of advice (the upper bound matching Theorem 3.5).
//!
//! The classical no-advice solution assigns the `n` potential participants
//! to the leaves of a balanced binary tree and descends from the root using
//! the collision detector: in each step the active nodes in the left half
//! of the current interval transmit; a collision or lone transmission means
//! the left half contains active nodes (descend left, or finish), silence
//! means it does not (descend right).  This takes `⌈log n⌉` rounds.  The
//! advice (an id prefix from [`crp_predict::IdPrefixOracle`]) pre-descends
//! the first `b` steps of that walk, leaving `⌈log n⌉ − b` rounds.

use crp_channel::{Feedback, NodeProtocol, ParticipantId};
use crp_predict::{Advice, IdPrefixOracle};
use rand::RngCore;

use crate::error::ProtocolError;

/// Per-node state of the deterministic collision-detection advice protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicCdAdvice {
    id: ParticipantId,
    /// Current candidate interval `[low, high)` of ids that may contain the
    /// node that will eventually transmit alone.
    low: usize,
    high: usize,
    resolved: bool,
    /// Set once the node learns its id can no longer be the designated
    /// transmitter (it stops transmitting but keeps listening).
    eliminated: bool,
}

impl DeterministicCdAdvice {
    /// Creates the protocol instance for node `id` in a universe of size
    /// `universe_size`, given the shared advice.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if the id is outside the
    /// universe.
    pub fn new(
        universe_size: usize,
        id: ParticipantId,
        advice: &Advice,
    ) -> Result<Self, ProtocolError> {
        if id.index() >= universe_size {
            return Err(ProtocolError::InvalidParameter {
                what: format!("participant {id} outside universe of size {universe_size}"),
            });
        }
        let (low, high) = IdPrefixOracle::candidate_interval(universe_size, advice);
        Ok(Self {
            id,
            low,
            high,
            resolved: false,
            eliminated: false,
        })
    }

    /// Worst-case number of rounds: `⌈log(n / 2^b)⌉ + 1`.
    pub fn worst_case_rounds(&self) -> usize {
        let width = (self.high - self.low).max(1);
        (usize::BITS - (width - 1).leading_zeros()) as usize + 1
    }

    /// The candidate interval currently being searched.
    pub fn interval(&self) -> (usize, usize) {
        (self.low, self.high)
    }

    /// True if this node's id lies in the current candidate interval.
    fn in_interval(&self) -> bool {
        let idx = self.id.index();
        idx >= self.low && idx < self.high
    }

    /// True if this node should transmit in the next round: its id is in
    /// the lower half of the current interval (or the interval is a single
    /// id equal to its own).
    fn should_transmit(&self) -> bool {
        if !self.in_interval() || self.eliminated {
            return false;
        }
        let width = self.high - self.low;
        if width <= 1 {
            return true;
        }
        let mid = self.low + width / 2;
        self.id.index() < mid
    }
}

impl NodeProtocol for DeterministicCdAdvice {
    fn decide(&mut self, _round: usize, _rng: &mut dyn RngCore) -> bool {
        !self.resolved && self.should_transmit()
    }

    fn observe(&mut self, _round: usize, feedback: Feedback) {
        if feedback.is_resolved() {
            self.resolved = true;
            return;
        }
        let width = self.high - self.low;
        if width <= 1 {
            // A singleton interval that did not resolve means no active node
            // holds that id; the deterministic walk is stuck (this cannot
            // happen when the advice designates an active participant).
            self.eliminated = true;
            return;
        }
        let mid = self.low + width / 2;
        match feedback {
            Feedback::CollisionDetected => {
                // Two or more active ids in the lower half: recurse there.
                self.high = mid;
            }
            Feedback::SilenceDetected => {
                // No active id in the lower half: recurse into the upper half.
                self.low = mid;
            }
            Feedback::Resolved | Feedback::NothingHeard => {}
        }
    }

    fn finished(&self) -> bool {
        self.resolved || self.eliminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_channel::{execute, ChannelMode, ExecutionConfig};
    use crp_predict::AdviceOracle;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build_nodes(
        universe: usize,
        active: &[usize],
        budget_bits: usize,
    ) -> Vec<DeterministicCdAdvice> {
        let advice = IdPrefixOracle
            .advise(universe, active, budget_bits)
            .unwrap();
        active
            .iter()
            .map(|&id| DeterministicCdAdvice::new(universe, ParticipantId(id), &advice).unwrap())
            .collect()
    }

    #[test]
    fn resolves_within_log_n_minus_b_rounds() {
        let universe = 1024; // log n = 10
        let active = vec![300, 301, 302, 800, 900];
        for budget in [0usize, 2, 5, 8] {
            let mut nodes = build_nodes(universe, &active, budget);
            let worst = nodes[0].worst_case_rounds();
            assert!(
                worst <= 10 - budget + 1,
                "budget {budget}: worst case {worst} exceeds log n - b + 1"
            );
            let config = ExecutionConfig::new(ChannelMode::CollisionDetection, worst.max(1));
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            let exec = execute(&mut nodes, &config, &mut rng);
            assert!(exec.resolved, "budget {budget} failed");
            assert!(
                exec.rounds <= worst,
                "budget {budget}: {} > {worst}",
                exec.rounds
            );
        }
    }

    #[test]
    fn full_advice_resolves_immediately() {
        let universe = 512;
        let active = vec![200, 480];
        let mut nodes = build_nodes(universe, &active, 9);
        let config = ExecutionConfig::new(ChannelMode::CollisionDetection, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let exec = execute(&mut nodes, &config, &mut rng);
        assert!(exec.resolved);
        assert_eq!(exec.rounds, 1);
    }

    #[test]
    fn descent_follows_collisions_toward_crowded_halves() {
        // All active ids in the lower quadrant: the walk keeps descending
        // left after collisions until a single id remains.
        let universe = 64;
        let active = vec![1, 2, 3, 4, 5];
        let mut nodes = build_nodes(universe, &active, 0);
        let config = ExecutionConfig::new(ChannelMode::CollisionDetection, 10).with_trace();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let exec = execute(&mut nodes, &config, &mut rng);
        assert!(exec.resolved);
        assert!(
            exec.trace.collisions() > 0,
            "expected at least one collision"
        );
    }

    #[test]
    fn silence_steers_the_walk_into_the_upper_half() {
        // The only active ids live in the upper half of the universe, so the
        // first probe (lower half transmits) is silent.
        let universe = 64;
        let active = vec![50, 60];
        let mut nodes = build_nodes(universe, &active, 0);
        let config = ExecutionConfig::new(ChannelMode::CollisionDetection, 10).with_trace();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let exec = execute(&mut nodes, &config, &mut rng);
        assert!(exec.resolved);
        assert!(exec.trace.silences() > 0);
    }

    #[test]
    fn single_active_node_is_found_regardless_of_position() {
        let universe = 256;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for &id in &[0usize, 17, 128, 255] {
            let mut nodes = build_nodes(universe, &[id], 0);
            let config = ExecutionConfig::new(ChannelMode::CollisionDetection, 16);
            let exec = execute(&mut nodes, &config, &mut rng);
            assert!(exec.resolved, "failed to find lone participant {id}");
        }
    }

    #[test]
    fn constructor_validates_the_id() {
        assert!(DeterministicCdAdvice::new(16, ParticipantId(20), &Advice::empty()).is_err());
        let node = DeterministicCdAdvice::new(16, ParticipantId(3), &Advice::empty()).unwrap();
        assert_eq!(node.interval(), (0, 16));
        assert_eq!(node.worst_case_rounds(), 5);
    }
}
