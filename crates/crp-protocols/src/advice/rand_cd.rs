//! Randomized contention resolution with collision detection and `b` bits
//! of advice (the upper bound matching Theorem 3.7).
//!
//! Willard's strategy binary-searches the `⌈log n⌉` geometric size guesses
//! in `O(log log n)` expected rounds.  Range advice (from
//! [`crp_predict::RangeOracle`]) restricts the search to a block of
//! `⌈log n⌉ / 2^b` guesses, so the search takes
//! `O(log(log n / 2^b)) = O(log log n − b)` rounds; with
//! `b ≥ log log n` bits the correct range is pinned exactly and the
//! protocol runs at the known-size optimum.

use crp_channel::CollisionHistory;
use crp_predict::{Advice, RangeOracle};

use crate::baselines::WillardSearch;
use crate::error::ProtocolError;
use crate::traits::CdStrategy;

/// Willard's binary search restricted to the advice's candidate ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvisedWillard {
    search: WillardSearch,
}

impl AdvisedWillard {
    /// Creates the advised search for a universe of size `universe_size`
    /// given the shared advice.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if `universe_size < 2`.
    pub fn new(universe_size: usize, advice: &Advice) -> Result<Self, ProtocolError> {
        if universe_size < 2 {
            return Err(ProtocolError::InvalidParameter {
                what: format!("advised willard requires n >= 2, got {universe_size}"),
            });
        }
        let (low, high) = RangeOracle::candidate_ranges(universe_size, advice);
        Ok(Self {
            search: WillardSearch::new(low, high)?,
        })
    }

    /// The candidate range interval `[low, high]` being searched.
    pub fn candidate_ranges(&self) -> (usize, usize) {
        self.search.interval()
    }

    /// Worst-case number of probes: `⌈log(⌈log n⌉ / 2^b)⌉ + 1`.
    pub fn worst_case_rounds(&self) -> usize {
        self.search.worst_case_rounds()
    }
}

impl CdStrategy for AdvisedWillard {
    fn probability(&self, history: &CollisionHistory) -> Option<f64> {
        self.search.probability(history)
    }

    fn name(&self) -> &str {
        "advised-willard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::try_run_cd_strategy;
    use crp_predict::AdviceOracle;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn advice_for(universe: usize, k: usize, budget: usize) -> Advice {
        let participants: Vec<usize> = (0..k).collect();
        RangeOracle.advise(universe, &participants, budget).unwrap()
    }

    #[test]
    fn worst_case_rounds_shrink_with_advice() {
        let n = 1 << 16; // 16 ranges -> log log n = 4
        let k = 700;
        let mut rounds = Vec::new();
        for budget in 0..=4 {
            let protocol = AdvisedWillard::new(n, &advice_for(n, k, budget)).unwrap();
            rounds.push(protocol.worst_case_rounds());
        }
        assert_eq!(rounds[0], 5); // log2(16) + 1
        for pair in rounds.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
        assert_eq!(*rounds.last().unwrap(), 1);
    }

    #[test]
    fn full_advice_behaves_like_the_known_size_protocol() {
        let n = 1 << 16;
        let k = 700;
        let protocol = AdvisedWillard::new(n, &advice_for(n, k, 4)).unwrap();
        let (lo, hi) = protocol.candidate_ranges();
        assert_eq!(lo, hi);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let trials = 300;
        let resolved = (0..trials)
            .filter(|_| {
                try_run_cd_strategy(&protocol, k, 1, &mut rng)
                    .unwrap()
                    .resolved
            })
            .count();
        // Single round with probability 2^-⌈log k⌉ succeeds with constant
        // probability (Lemma 2.13 gives >= 1/8; empirically ~0.35).
        assert!(
            resolved as f64 / trials as f64 > 0.15,
            "resolved {resolved}/{trials}"
        );
    }

    #[test]
    fn resolution_probability_within_budgeted_rounds_is_constant() {
        let n = 1 << 16;
        let k = 12_345;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for budget in [0usize, 1, 2, 3] {
            let protocol = AdvisedWillard::new(n, &advice_for(n, k, budget)).unwrap();
            let horizon = protocol.worst_case_rounds();
            let trials = 300;
            let resolved = (0..trials)
                .filter(|_| {
                    try_run_cd_strategy(&protocol, k, horizon, &mut rng)
                        .unwrap()
                        .resolved
                })
                .count();
            assert!(
                resolved as f64 / trials as f64 > 0.2,
                "budget {budget}: resolved only {resolved}/{trials} within {horizon} rounds"
            );
        }
    }

    #[test]
    fn zero_advice_is_plain_willard() {
        let n = 4096;
        let protocol = AdvisedWillard::new(n, &Advice::empty()).unwrap();
        assert_eq!(protocol.candidate_ranges(), (1, 12));
        assert_eq!(protocol.name(), "advised-willard");
    }

    #[test]
    fn constructor_validates_universe() {
        assert!(AdvisedWillard::new(1, &Advice::empty()).is_err());
    }
}
