//! Strongly selective families (paper §3.2, Definition 3.1).
//!
//! A family `F` of subsets of `[n]` is `(n, k)`-strongly selective if for
//! every subset `Z ⊆ [n]` with `|Z| ≤ k` and every `z ∈ Z` there is a set
//! `F ∈ F` with `Z ∩ F = {z}`.  The paper's deterministic lower bounds
//! (Theorem 3.3) convert any correct non-interactive advice scheme into
//! such a family and then invoke the size lower bound of Clementi, Monti
//! and Silvestri (`|F| ≥ n` when `k ≥ √(2n)`, Theorem 3.2).
//!
//! This module provides the standard constructions used by the matching
//! upper bounds and a brute-force verification predicate used in tests and
//! in the lower-bound verification experiment.

/// A family of subsets of `{0, …, n − 1}`, each stored as a sorted id list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectiveFamily {
    universe_size: usize,
    sets: Vec<Vec<usize>>,
}

impl SelectiveFamily {
    /// Builds a family from explicit member sets (each set is deduplicated
    /// and sorted; out-of-universe ids are dropped).
    pub fn new(universe_size: usize, sets: Vec<Vec<usize>>) -> Self {
        let sets = sets
            .into_iter()
            .map(|mut s| {
                s.retain(|&x| x < universe_size);
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        Self {
            universe_size,
            sets,
        }
    }

    /// The universe size `n`.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Number of sets in the family — the quantity the lower bound of
    /// Theorem 3.2 constrains.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if the family contains no sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The member sets.
    pub fn sets(&self) -> &[Vec<usize>] {
        &self.sets
    }
}

/// The trivial `(n, n)`-strongly selective family of all singletons
/// `{0}, {1}, …, {n−1}` — size exactly `n`, matching the Theorem 3.2 lower
/// bound for large `k`.
pub fn singleton_family(n: usize) -> SelectiveFamily {
    SelectiveFamily::new(n, (0..n).map(|i| vec![i]).collect())
}

/// The binary-representation family: for every bit position `j < ⌈log n⌉`
/// and every bit value `v ∈ {0, 1}`, the set of ids whose `j`-th bit equals
/// `v`.  This family of `2⌈log n⌉` sets is `(n, 2)`-strongly selective:
/// any two distinct ids differ in some bit, and the corresponding set
/// isolates each of them from the other.
pub fn binary_representation_family(n: usize) -> SelectiveFamily {
    if n == 0 {
        return SelectiveFamily::new(0, Vec::new());
    }
    let bits = if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    };
    let mut sets = Vec::with_capacity(2 * bits);
    for j in 0..bits {
        for v in [0usize, 1] {
            let set: Vec<usize> = (0..n).filter(|&x| (x >> j) & 1 == v).collect();
            sets.push(set);
        }
    }
    SelectiveFamily::new(n, sets)
}

/// Brute-force check that `family` is `(n, k)`-strongly selective.
///
/// Enumerates every subset of `[n]` of size at most `k` (so it is only
/// usable for small `n`; the cost is `O(n^k)` subsets).  Used by tests and
/// by the lower-bound verification experiment at small scale.
///
/// # Panics
///
/// Panics if `n > 24` — the enumeration would be astronomically large and
/// calling this at such sizes is always a harness bug.
pub fn is_strongly_selective(family: &SelectiveFamily, n: usize, k: usize) -> bool {
    assert!(
        n <= 24,
        "brute-force selectivity check is limited to n <= 24"
    );
    assert_eq!(
        family.universe_size(),
        n,
        "family universe does not match the requested n"
    );
    // Enumerate all non-empty subsets of [n] with |Z| <= k via bit masks.
    for mask in 1u32..(1u32 << n) {
        let size = mask.count_ones() as usize;
        if size > k {
            continue;
        }
        let members: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        for &z in &members {
            let isolated = family.sets().iter().any(|set| {
                let mut intersection = members.iter().filter(|&&m| set.binary_search(&m).is_ok());
                matches!((intersection.next(), intersection.next()), (Some(&only), None) if only == z)
            });
            if !isolated {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_family_is_strongly_selective_for_all_k() {
        let n = 10;
        let family = singleton_family(n);
        assert_eq!(family.len(), n);
        assert!(is_strongly_selective(&family, n, n));
    }

    #[test]
    fn binary_representation_family_is_n_2_selective() {
        for n in [4usize, 7, 12, 16] {
            let family = binary_representation_family(n);
            assert!(
                is_strongly_selective(&family, n, 2),
                "binary family failed for n={n}"
            );
            // Size is 2⌈log n⌉, far below the singleton family's n for n ≥ 8.
            let bits = (usize::BITS - (n - 1).leading_zeros()) as usize;
            assert_eq!(family.len(), 2 * bits);
        }
    }

    #[test]
    fn binary_representation_family_is_not_n_3_selective_in_general() {
        // With three ids {0, 1, 2}: isolating 0 from {0,1,2} needs a set
        // containing 0 but neither 1 nor 2; bit-0=0 gives {0,2,...},
        // bit-1=0 gives {0,1,...} — no single bit separates 0 from both,
        // so the family cannot be (n,3)-strongly selective.
        let n = 8;
        let family = binary_representation_family(n);
        assert!(!is_strongly_selective(&family, n, 3));
    }

    #[test]
    fn small_families_fail_selectivity() {
        // A single set can never isolate both elements of a pair.
        let n = 6;
        let family = SelectiveFamily::new(n, vec![vec![0, 1, 2, 3, 4, 5]]);
        assert!(!is_strongly_selective(&family, n, 2));
        assert!(!family.is_empty());
    }

    #[test]
    fn theorem_3_2_shape_holds_for_constructions() {
        // For k >= sqrt(2n) any (n,k)-strongly selective family has size
        // >= n.  The singleton family achieves exactly n, and the binary
        // family (size 2 log n < n) is indeed not (n, k)-selective for such
        // large k (checked at a small scale where brute force is feasible).
        let n = 12;
        let k = 5; // ceil(sqrt(24)) = 5
        assert!(is_strongly_selective(&singleton_family(n), n, k));
        assert!(!is_strongly_selective(
            &binary_representation_family(n),
            n,
            k
        ));
    }

    #[test]
    fn construction_sanitises_inputs() {
        let family = SelectiveFamily::new(4, vec![vec![3, 3, 9, 1], vec![]]);
        assert_eq!(family.sets()[0], vec![1, 3]);
        assert_eq!(family.sets()[1], Vec::<usize>::new());
        assert_eq!(family.universe_size(), 4);
        assert_eq!(family.len(), 2);
    }

    #[test]
    #[should_panic(expected = "n <= 24")]
    fn brute_force_check_refuses_large_universes() {
        let family = singleton_family(30);
        let _ = is_strongly_selective(&family, 30, 2);
    }
}
