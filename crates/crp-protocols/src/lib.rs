//! Contention-resolution protocols — the core of the *Contention Resolution
//! with Predictions* (PODC 2021) reproduction.
//!
//! # What lives here
//!
//! * **Classical baselines** (no predictions):
//!   [`Decay`] (Bar-Yehuda, Goldreich, Itai), [`Willard`]'s collision-
//!   detection binary search and the known-size [`FixedProbability`]
//!   protocol.  These are the `b = 0` / worst-case comparison points.
//! * **Prediction-augmented protocols** (paper §2):
//!   [`SortedGuess`] — the §2.5 no-collision-detection strategy that visits
//!   the geometric size ranges in decreasing order of predicted likelihood;
//!   [`CodedSearch`] — the §2.6 collision-detection strategy that builds an
//!   optimal prefix code for the predicted condensed distribution and
//!   searches the ranges phase-by-phase in order of codeword length.
//! * **Perfect-advice protocols** (paper §3): deterministic and randomized
//!   algorithms, with and without collision detection, that match the
//!   paper's Table 2 upper bounds given `b` bits of advice from the
//!   oracles in `crp-predict`.
//! * **Range-finding machinery** (paper §2.3–2.4): the RF-Construction
//!   (Algorithm 1), the collision-detection tree construction, and the
//!   target-distance coding scheme — the reductions the lower bounds are
//!   built on, implemented so that the Source-Coding-Theorem inequalities
//!   can be checked numerically.
//! * **Strongly selective families** (paper §3.2): constructions and the
//!   verification predicate used by the non-interactive lower bound.
//!
//! # The unified `Protocol` API
//!
//! Every algorithm above is reachable through one object-safe trait,
//! [`Protocol`], and one catalogue, [`ProtocolRegistry`]: a protocol is
//! constructed from a *name plus parameters* ([`ProtocolSpec`]) and then
//! driven uniformly, regardless of whether it is a fixed schedule, a
//! collision-history strategy, or a per-node advice algorithm.  The legacy
//! traits ([`NoCdSchedule`], [`CdStrategy`]) remain as the implementation
//! surface and slot into the unified API through the [`ScheduleProtocol`]
//! and [`StrategyProtocol`] adapters.
//!
//! # Example
//!
//! ```
//! use crp_info::{CondensedDistribution, SizeDistribution};
//! use crp_protocols::{try_run_protocol, ProtocolSpec};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 1024;
//! // The learned prediction says the network is usually ~32 devices.
//! let prediction = SizeDistribution::bimodal(n, 32, 512, 0.9)?;
//! let protocol = ProtocolSpec::new("sorted-guess-cycling")
//!     .universe(n)
//!     .prediction(CondensedDistribution::from_sizes(&prediction))
//!     .build()?;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! // The true network happens to have 30 active devices.
//! let outcome = try_run_protocol(protocol.as_ref(), 30, 4 * n, &mut rng)?;
//! assert!(outcome.resolved);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
mod baselines;
mod error;
pub mod predicted;
mod protocol;
pub mod rangefinding;
mod registry;
mod selective_family;
mod traits;

pub use advice::{
    AdvisedDecay, AdvisedWillard, DeterministicCdAdvice, DeterministicNoCdAdvice,
    NonInteractiveScheme,
};
pub use baselines::{BlindTrust, Decay, FixedProbability, Willard};
pub use error::ProtocolError;
pub use predicted::{CodeChoice, CodedSearch, SortedGuess};
pub use protocol::{
    required_channel_mode, try_run_protocol, try_run_protocol_with, Behavior, NodeFactory,
    Protocol, ScheduleProtocol, StrategyProtocol, UniformPolicy,
};
pub use registry::{
    DeterministicAdviceProtocol, ProtocolEntry, ProtocolParams, ProtocolRegistry, ProtocolSpec,
};
pub use selective_family::{
    binary_representation_family, is_strongly_selective, singleton_family, SelectiveFamily,
};
pub use traits::{try_run_cd_strategy, try_run_schedule, CdStrategy, NoCdSchedule, ProtocolKind};
