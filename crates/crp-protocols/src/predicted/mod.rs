//! Prediction-augmented protocols (paper §2.5 and §2.6).

mod coded_search;
mod sorted_guess;

pub use coded_search::{CodeChoice, CodedSearch};
pub use sorted_guess::SortedGuess;
