//! The §2.6 algorithm: collision detection, network-size prediction.
//!
//! Given the predicted condensed distribution `c(Y)`, the algorithm builds
//! an optimal prefix code `f` for `c(Y)`, groups the geometric ranges into
//! equivalence classes by codeword length, and dedicates one *phase* to
//! each class in increasing order of length.  Within the phase for class
//! `π_ℓ` it runs Willard's collision-detection binary search over the
//! ranges of that class (ordered smallest to largest).  The paper proves
//! that with constant probability the algorithm finishes within
//! `O((H(c(X)) + D_KL(c(X) ‖ c(Y)))²)` rounds (Theorem 2.16), which becomes
//! `O(H²(c(X)))` for accurate predictions (Corollary 2.18).
//!
//! The whole algorithm is a *uniform* strategy: its behaviour is a pure
//! function of the collision history, implemented by replaying the history
//! through the phase/search state machine on every probability query.

use crp_channel::CollisionHistory;
use crp_info::{
    huffman_code, shannon_fano_code, CondensedDistribution, PrefixCode, SizeDistribution,
};

use crate::baselines::WillardSearch;
use crate::error::ProtocolError;
use crate::traits::CdStrategy;

/// Which optimal-code construction [`CodedSearch`] uses internally.
///
/// The paper only requires an optimal code; Huffman is optimal, and
/// Shannon–Fano is provided for the ablation called out in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodeChoice {
    /// Huffman coding (optimal; the default).
    #[default]
    Huffman,
    /// Shannon–Fano coding (within one bit of optimal).
    ShannonFano,
}

/// One phase of the search: all ranges whose codeword has a given length.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Phase {
    /// Codeword length shared by every range in this phase.
    code_length: usize,
    /// The ranges of this class, sorted ascending.
    ranges: Vec<usize>,
    /// Number of probes the binary search over `ranges` can need.
    rounds: usize,
}

/// The coded-search protocol of §2.6.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedSearch {
    phases: Vec<Phase>,
    name: String,
}

impl CodedSearch {
    /// Builds the protocol from a predicted condensed distribution, using
    /// Huffman coding.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Info`] if the optimal code cannot be built
    /// (e.g. an empty prediction support).
    pub fn new(prediction: &CondensedDistribution) -> Result<Self, ProtocolError> {
        Self::with_code_choice(prediction, CodeChoice::Huffman)
    }

    /// Builds the protocol directly from a predicted size distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Info`] if the optimal code cannot be built.
    pub fn from_sizes(prediction: &SizeDistribution) -> Result<Self, ProtocolError> {
        Self::new(&CondensedDistribution::from_sizes(prediction))
    }

    /// Builds the protocol with an explicit choice of code construction.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Info`] if the code cannot be built.
    pub fn with_code_choice(
        prediction: &CondensedDistribution,
        choice: CodeChoice,
    ) -> Result<Self, ProtocolError> {
        let code: PrefixCode = match choice {
            CodeChoice::Huffman => huffman_code(prediction.probabilities())?,
            CodeChoice::ShannonFano => shannon_fano_code(prediction.probabilities())?,
        };
        let mut phases = Vec::new();
        for (length_index, symbols) in code.symbols_by_length().into_iter().enumerate() {
            if symbols.is_empty() {
                continue;
            }
            // Symbols are 0-based code symbols; ranges are 1-based.
            let ranges: Vec<usize> = symbols.into_iter().map(|s| s + 1).collect();
            let search = WillardSearch::new(1, ranges.len())
                .expect("non-empty phase always yields a valid search");
            phases.push(Phase {
                code_length: length_index + 1,
                rounds: search.worst_case_rounds(),
                ranges,
            });
        }
        let name = match choice {
            CodeChoice::Huffman => "coded-search".to_string(),
            CodeChoice::ShannonFano => "coded-search-shannon-fano".to_string(),
        };
        Ok(Self { phases, name })
    }

    /// Number of phases (distinct codeword lengths).
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Total number of rounds the protocol can use before giving up
    /// (the sum of every phase's worst-case binary-search length).
    pub fn horizon(&self) -> usize {
        self.phases.iter().map(|p| p.rounds).sum()
    }

    /// The worst-case number of rounds needed to *reach and complete* the
    /// phase containing `range` — the quantity the `O(S²)` analysis of
    /// Lemma 2.17 bounds.
    pub fn rounds_until_range_phase(&self, range: usize) -> Option<usize> {
        let mut total = 0;
        for phase in &self.phases {
            total += phase.rounds;
            if phase.ranges.contains(&range) {
                return Some(total);
            }
        }
        None
    }

    /// The phase index (0-based) and within-phase range list covering a
    /// given range, if any.
    fn locate(&self, round_budget_used: usize) -> Option<(usize, usize)> {
        // Maps a number of elapsed rounds to (phase index, rounds into phase).
        let mut remaining = round_budget_used;
        for (i, phase) in self.phases.iter().enumerate() {
            if remaining < phase.rounds {
                return Some((i, remaining));
            }
            remaining -= phase.rounds;
        }
        None
    }
}

impl CdStrategy for CodedSearch {
    fn probability(&self, history: &CollisionHistory) -> Option<f64> {
        // The search path so far: each phase consumes a fixed budget of
        // probes (its worst-case binary-search length), so the phase we are
        // in is determined by the history length, and the state inside the
        // phase by the history bits observed since the phase began.
        let elapsed = history.len();
        let (phase_index, offset) = self.locate(elapsed)?;
        let phase = &self.phases[phase_index];
        let phase_start = elapsed - offset;
        let phase_bits = &history.bits()[phase_start..];

        let search = WillardSearch::new(1, phase.ranges.len())
            .expect("phase ranges are non-empty by construction");
        match search.state_after(phase_bits) {
            Some((low, high)) => {
                let median_position = low + (high - low) / 2;
                let range = phase.ranges[median_position - 1];
                Some(2f64.powi(-(range as i32)))
            }
            None => {
                // The within-phase search exhausted its interval early; idle
                // (transmit with probability 0) until the phase budget is
                // spent, then the next phase starts.  Idling keeps the
                // phase boundaries deterministic, as the analysis assumes.
                Some(0.0)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::try_run_cd_strategy;
    use crp_info::range_index_for_size;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn phases_are_ordered_by_code_length() {
        let prediction = SizeDistribution::bimodal(4096, 40, 2000, 0.8).unwrap();
        let protocol = CodedSearch::from_sizes(&prediction).unwrap();
        assert!(protocol.num_phases() >= 2);
        let lengths: Vec<usize> = protocol.phases.iter().map(|p| p.code_length).collect();
        for pair in lengths.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn likely_ranges_live_in_early_phases() {
        let prediction = SizeDistribution::bimodal(4096, 40, 2000, 0.9).unwrap();
        let protocol = CodedSearch::from_sizes(&prediction).unwrap();
        let likely_range = range_index_for_size(40);
        let unlikely_range = range_index_for_size(3);
        let likely_rounds = protocol.rounds_until_range_phase(likely_range).unwrap();
        let unlikely_rounds = protocol.rounds_until_range_phase(unlikely_range).unwrap();
        assert!(
            likely_rounds <= unlikely_rounds,
            "likely range should be reachable no later than an unlikely one"
        );
    }

    #[test]
    fn horizon_is_sum_of_phase_budgets() {
        let prediction = SizeDistribution::uniform_ranges(1024).unwrap();
        let protocol = CodedSearch::from_sizes(&prediction).unwrap();
        let total: usize = protocol.phases.iter().map(|p| p.rounds).sum();
        assert_eq!(protocol.horizon(), total);
        assert!(protocol.horizon() > 0);
    }

    #[test]
    fn accurate_prediction_resolves_with_constant_probability() {
        let n = 1 << 14;
        let k = 900;
        let prediction = SizeDistribution::point_mass(n, k).unwrap();
        let protocol = CodedSearch::from_sizes(&prediction).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let trials = 400;
        let mut resolved = 0;
        let mut total_rounds = 0;
        for _ in 0..trials {
            let exec =
                try_run_cd_strategy(&protocol, k, protocol.horizon().max(4), &mut rng).unwrap();
            if exec.resolved {
                resolved += 1;
                total_rounds += exec.rounds;
            }
        }
        assert!(
            resolved as f64 / trials as f64 > 0.25,
            "resolved only {resolved}/{trials}"
        );
        let mean = total_rounds as f64 / resolved as f64;
        // A point prediction means one phase of one range: ~1-2 rounds.
        assert!(
            mean < 4.0,
            "mean rounds {mean} too large for a point prediction"
        );
    }

    #[test]
    fn uniform_prediction_still_resolves_but_slower() {
        let n = 1 << 12;
        let k = 700;
        let point = CodedSearch::from_sizes(&SizeDistribution::point_mass(n, k).unwrap()).unwrap();
        let uniform =
            CodedSearch::from_sizes(&SizeDistribution::uniform_ranges(n).unwrap()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let trials = 500;
        let mean_resolved = |p: &CodedSearch, rng: &mut ChaCha8Rng| {
            let mut rounds = 0usize;
            let mut count = 0usize;
            for _ in 0..trials {
                let exec = try_run_cd_strategy(p, k, p.horizon().max(4), rng).unwrap();
                if exec.resolved {
                    rounds += exec.rounds;
                    count += 1;
                }
            }
            assert!(count > trials / 4, "too few resolutions: {count}");
            rounds as f64 / count as f64
        };
        let point_mean = mean_resolved(&point, &mut rng);
        let uniform_mean = mean_resolved(&uniform, &mut rng);
        assert!(
            point_mean < uniform_mean,
            "point prediction ({point_mean}) should beat uniform ({uniform_mean})"
        );
    }

    #[test]
    fn shannon_fano_variant_also_works() {
        let prediction = SizeDistribution::zipf(2048, 1.3).unwrap();
        let condensed = CondensedDistribution::from_sizes(&prediction);
        let protocol = CodedSearch::with_code_choice(&condensed, CodeChoice::ShannonFano).unwrap();
        assert_eq!(protocol.name(), "coded-search-shannon-fano");
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let exec =
            try_run_cd_strategy(&protocol, 4, 10 * protocol.horizon().max(4), &mut rng).unwrap();
        // 4 participants fall in range 2; the protocol covers every range,
        // so across a generous budget it should usually resolve.
        let _ = exec; // statistical behaviour covered by other tests
    }

    #[test]
    fn probability_is_defined_for_every_round_within_horizon() {
        let prediction = SizeDistribution::geometric(1024, 0.1).unwrap();
        let protocol = CodedSearch::from_sizes(&prediction).unwrap();
        let mut history = CollisionHistory::new();
        for _ in 0..protocol.horizon() {
            let p = protocol.probability(&history);
            assert!(p.is_some());
            let p = p.unwrap();
            assert!((0.0..=1.0).contains(&p));
            history.push(false);
        }
        assert_eq!(protocol.probability(&history), None);
    }
}
