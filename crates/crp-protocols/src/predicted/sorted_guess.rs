//! The §2.5 algorithm: no collision detection, network-size prediction.
//!
//! Given the predicted condensed distribution `c(Y)`, sort the geometric
//! ranges by decreasing likelihood and visit them in that order, in round
//! `i` transmitting with probability `2^{-π_i}`.  The paper proves that with
//! probability at least `1/16` this succeeds within
//! `O(2^T)` rounds where `T = 2·H(c(X)) + 2·D_KL(c(X) ‖ c(Y))`
//! (Theorem 2.12), which collapses to `O(2^{2H(c(X))})` for accurate
//! predictions (Corollary 2.15).
//!
//! The paper analyses the one-shot pass; for expected-time experiments a
//! cycling variant that repeats the pass forever is also provided (the
//! paper's footnote 6 notes that a cleverer interleaving would be used for
//! good expected time — plain repetition is the simplest such scheme and is
//! what the harness measures).

use crp_info::{CondensedDistribution, SizeDistribution};

use crate::traits::NoCdSchedule;

/// The sorted-guess protocol of §2.5.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedGuess {
    /// Geometric range indices in decreasing order of predicted likelihood.
    visit_order: Vec<usize>,
    /// Whether the pass repeats forever (for expected-time measurements) or
    /// stops after one pass (the paper's one-shot analysis).
    cycling: bool,
    name: String,
}

impl SortedGuess {
    /// Builds the one-shot protocol from a predicted condensed
    /// distribution.
    pub fn new(prediction: &CondensedDistribution) -> Self {
        Self {
            visit_order: prediction.ranges_by_likelihood(),
            cycling: false,
            name: "sorted-guess".to_string(),
        }
    }

    /// Builds the one-shot protocol directly from a predicted size
    /// distribution (condensing it first).
    pub fn from_sizes(prediction: &SizeDistribution) -> Self {
        Self::new(&CondensedDistribution::from_sizes(prediction))
    }

    /// Returns a variant that repeats the likelihood-ordered pass forever,
    /// for expected-round-count experiments.
    pub fn cycling(mut self) -> Self {
        self.cycling = true;
        self.name = "sorted-guess-cycling".to_string();
        self
    }

    /// The order in which geometric ranges are visited.
    pub fn visit_order(&self) -> &[usize] {
        &self.visit_order
    }

    /// Number of rounds in one pass (`⌈log n⌉`).
    pub fn pass_length(&self) -> usize {
        self.visit_order.len()
    }

    /// The 1-based position at which range `range` is visited within a
    /// pass, if it is ever visited.
    pub fn position_of_range(&self, range: usize) -> Option<usize> {
        self.visit_order
            .iter()
            .position(|&r| r == range)
            .map(|i| i + 1)
    }
}

impl NoCdSchedule for SortedGuess {
    fn probability(&self, round: usize) -> Option<f64> {
        let index = if self.cycling {
            (round - 1) % self.visit_order.len()
        } else {
            if round > self.visit_order.len() {
                return None;
            }
            round - 1
        };
        let range = self.visit_order[index];
        Some(2f64.powi(-(range as i32)))
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn horizon(&self) -> Option<usize> {
        if self.cycling {
            None
        } else {
            Some(self.visit_order.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::try_run_schedule;
    use crp_info::range_index_for_size;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn visits_most_likely_range_first() {
        let prediction = SizeDistribution::bimodal(1024, 32, 700, 0.9).unwrap();
        let protocol = SortedGuess::from_sizes(&prediction);
        assert_eq!(protocol.visit_order()[0], range_index_for_size(32));
        assert_eq!(protocol.pass_length(), 10);
        assert_eq!(
            protocol.position_of_range(range_index_for_size(32)),
            Some(1)
        );
        assert_eq!(protocol.position_of_range(999), None);
    }

    #[test]
    fn first_round_probability_matches_most_likely_range() {
        let prediction = SizeDistribution::point_mass(1024, 100).unwrap();
        let protocol = SortedGuess::from_sizes(&prediction);
        let range = range_index_for_size(100);
        assert_eq!(protocol.probability(1), Some(2f64.powi(-(range as i32))));
    }

    #[test]
    fn one_shot_schedule_is_finite() {
        let prediction = SizeDistribution::uniform_ranges(256).unwrap();
        let protocol = SortedGuess::from_sizes(&prediction);
        assert_eq!(protocol.horizon(), Some(8));
        assert!(protocol.probability(8).is_some());
        assert_eq!(protocol.probability(9), None);
        assert_eq!(protocol.name(), "sorted-guess");
    }

    #[test]
    fn cycling_schedule_never_ends() {
        let prediction = SizeDistribution::uniform_ranges(256).unwrap();
        let protocol = SortedGuess::from_sizes(&prediction).cycling();
        assert_eq!(protocol.horizon(), None);
        assert_eq!(protocol.probability(9), protocol.probability(1));
        assert_eq!(protocol.name(), "sorted-guess-cycling");
    }

    #[test]
    fn accurate_point_prediction_resolves_fast_with_high_probability() {
        let n = 1 << 14;
        let k = 3000;
        let prediction = SizeDistribution::point_mass(n, k).unwrap();
        let protocol = SortedGuess::from_sizes(&prediction);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trials = 500;
        let mut resolved_in_first_round = 0;
        for _ in 0..trials {
            let exec = try_run_schedule(&protocol, k, protocol.pass_length(), &mut rng).unwrap();
            if exec.resolved && exec.rounds == 1 {
                resolved_in_first_round += 1;
            }
        }
        // Lemma 2.13: the correct range succeeds with probability >= 1/8;
        // in practice it's ~0.35-0.4 for p in (1/(2k), 1/k].
        assert!(
            resolved_in_first_round as f64 / trials as f64 > 0.15,
            "only {resolved_in_first_round}/{trials} resolved in round one"
        );
    }

    #[test]
    fn wrong_prediction_takes_longer_than_right_prediction() {
        let n = 1 << 12;
        let k = 1500;
        let good = SortedGuess::from_sizes(&SizeDistribution::point_mass(n, k).unwrap());
        // Bad prediction: confidently predicts a tiny network.
        let bad = SortedGuess::from_sizes(&SizeDistribution::geometric(n, 0.5).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trials = 400;
        let mean = |p: &SortedGuess, rng: &mut ChaCha8Rng| {
            let total: usize = (0..trials)
                .map(|_| {
                    let exec = try_run_schedule(&p.clone().cycling(), k, 10_000, rng).unwrap();
                    exec.rounds
                })
                .sum();
            total as f64 / trials as f64
        };
        let good_mean = mean(&good, &mut rng);
        let bad_mean = mean(&bad, &mut rng);
        assert!(
            good_mean < bad_mean,
            "good prediction ({good_mean}) should beat bad prediction ({bad_mean})"
        );
    }

    #[test]
    fn cycling_variant_always_resolves_eventually() {
        let n = 4096;
        let prediction = SizeDistribution::uniform_ranges(n).unwrap();
        let protocol = SortedGuess::from_sizes(&prediction).cycling();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for k in [2usize, 57, 513, 4000] {
            let exec = try_run_schedule(&protocol, k, 50_000, &mut rng).unwrap();
            assert!(exec.resolved, "cycling sorted-guess failed for k={k}");
        }
    }
}
