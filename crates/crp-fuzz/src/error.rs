//! Error type for the fuzzing subsystem.

use std::error::Error;
use std::fmt;

use crp_predict::PredictError;
use crp_sim::SimError;

use crate::property::PROPERTY_NAMES;

/// Errors produced while configuring or running fuzz campaigns.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzError {
    /// A campaign or shrink parameter was invalid.
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// An unknown property-oracle name was requested.
    UnknownProperty {
        /// The offending name.
        name: String,
    },
    /// A corpus file could not be read, written, or parsed.
    Corpus {
        /// The offending file (or directory) path.
        path: String,
        /// What went wrong.
        what: String,
    },
    /// Trace generation or compilation failed.
    Predict(PredictError),
    /// Evaluating a trace through the sweep machinery failed.
    Sim(SimError),
}

impl fmt::Display for FuzzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            FuzzError::UnknownProperty { name } => write!(
                f,
                "unknown property {name:?}; expected one of: {}",
                PROPERTY_NAMES.join(", ")
            ),
            FuzzError::Corpus { path, what } => write!(f, "corpus file {path}: {what}"),
            FuzzError::Predict(err) => write!(f, "trace error: {err}"),
            FuzzError::Sim(err) => write!(f, "evaluation error: {err}"),
        }
    }
}

impl Error for FuzzError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FuzzError::Predict(err) => Some(err),
            FuzzError::Sim(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PredictError> for FuzzError {
    fn from(err: PredictError) -> Self {
        FuzzError::Predict(err)
    }
}

impl From<SimError> for FuzzError {
    fn from(err: SimError) -> Self {
        FuzzError::Sim(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = FuzzError::UnknownProperty {
            name: "nope".into(),
        };
        assert!(err.to_string().contains("robustness-floor"), "{err}");
        assert!(err.source().is_none());
        let err = FuzzError::from(PredictError::InvalidParameter {
            what: "bad weight".into(),
        });
        assert!(err.to_string().contains("bad weight"));
        assert!(err.source().is_some());
        let err = FuzzError::Corpus {
            path: "fuzz/corpus/x.trace".into(),
            what: "missing end marker".into(),
        };
        assert!(err.to_string().contains("x.trace"));
    }
}
