//! The reproducer corpus: shrunk failing traces as content-addressed
//! files.
//!
//! Each corpus entry is one [`Trace`] in its canonical wire form, stored
//! as `fuzz-<hash12>.trace` where `<hash12>` is the first twelve hex
//! characters of the SHA-256 of the wire bytes.  Content addressing makes
//! check-ins idempotent (re-running a campaign re-derives byte-identical
//! files) and collisions self-evident; the corpus-replay test loads every
//! entry, fails on the first unparsable file, and re-checks the recorded
//! violation.

use std::fs;
use std::path::{Path, PathBuf};

use crp_fleet::content_hash;
use crp_predict::Trace;

use crate::error::FuzzError;

/// Filename extension of corpus entries.
pub const TRACE_EXTENSION: &str = "trace";

/// A directory of shrunk reproducer traces.
#[derive(Debug, Clone)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// Wraps a corpus directory (which need not exist yet; [`Corpus::save`]
    /// creates it, [`Corpus::load_all`] treats a missing directory as
    /// empty).
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content-addressed filename of a trace: `fuzz-<hash12>.trace`.
    pub fn trace_name(trace: &Trace) -> String {
        let hash = content_hash(trace.to_wire().as_bytes());
        format!("fuzz-{}.{TRACE_EXTENSION}", &hash[..12])
    }

    /// Writes `trace` into the corpus (creating the directory) and returns
    /// the path.  Saving the same trace twice is a no-op rewrite of the
    /// same file.
    ///
    /// # Errors
    ///
    /// [`FuzzError::Corpus`] naming the path on any I/O failure.
    pub fn save(&self, trace: &Trace) -> Result<PathBuf, FuzzError> {
        fs::create_dir_all(&self.dir).map_err(|err| FuzzError::Corpus {
            path: self.dir.display().to_string(),
            what: format!("cannot create corpus directory: {err}"),
        })?;
        let path = self.dir.join(Self::trace_name(trace));
        fs::write(&path, trace.to_wire()).map_err(|err| FuzzError::Corpus {
            path: path.display().to_string(),
            what: format!("cannot write: {err}"),
        })?;
        Ok(path)
    }

    /// Loads every `*.trace` file, sorted by filename for determinism.  A
    /// missing directory is an empty corpus; an unparsable file is a
    /// typed error naming it.
    ///
    /// # Errors
    ///
    /// [`FuzzError::Corpus`] naming the offending file on read or parse
    /// failure.
    pub fn load_all(&self) -> Result<Vec<(PathBuf, Trace)>, FuzzError> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(err) => {
                return Err(FuzzError::Corpus {
                    path: self.dir.display().to_string(),
                    what: format!("cannot read corpus directory: {err}"),
                })
            }
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == TRACE_EXTENSION))
            .collect();
        paths.sort();
        let mut traces = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(&path).map_err(|err| FuzzError::Corpus {
                path: path.display().to_string(),
                what: format!("cannot read: {err}"),
            })?;
            let trace = Trace::from_wire(&text).map_err(|err| FuzzError::Corpus {
                path: path.display().to_string(),
                what: err.to_string(),
            })?;
            traces.push((path, trace));
        }
        Ok(traces)
    }
}

#[cfg(test)]
mod tests {
    use crp_predict::TraceEvent;

    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("crp-fuzz-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace() -> Trace {
        Trace::new(
            64,
            vec![
                TraceEvent::Truth {
                    level: 4,
                    weight: 1.0,
                },
                TraceEvent::Observe { fidelity: 0.9 },
                TraceEvent::Drift { shift: -2 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn save_is_content_addressed_and_idempotent() {
        let dir = scratch_dir("save");
        let corpus = Corpus::open(&dir);
        let trace = sample_trace();
        let first = corpus.save(&trace).unwrap();
        let second = corpus.save(&trace).unwrap();
        assert_eq!(first, second, "same trace, same filename");
        let name = first.file_name().unwrap().to_string_lossy().to_string();
        assert!(
            name.starts_with("fuzz-") && name.ends_with(".trace"),
            "{name}"
        );
        let loaded = corpus.load_all().unwrap();
        assert_eq!(loaded, vec![(first, trace)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_directory_is_an_empty_corpus() {
        let corpus = Corpus::open(scratch_dir("missing"));
        assert!(corpus.load_all().unwrap().is_empty());
    }

    #[test]
    fn an_unparsable_entry_is_a_typed_error_naming_the_file() {
        let dir = scratch_dir("broken");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("fuzz-bad.trace"), "not a trace\n").unwrap();
        let err = Corpus::open(&dir).load_all().unwrap_err();
        match &err {
            FuzzError::Corpus { path, .. } => assert!(path.contains("fuzz-bad.trace"), "{err}"),
            other => panic!("expected a corpus error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
