//! Fuzz campaigns: generate adversarial traces, evaluate them through the
//! sweep stack, and check the property oracles.
//!
//! One campaign iteration is a *trace* drawn from a seeded
//! [`TraceModel`], compiled to a scenario and evaluated as a two-row
//! sweep grid: the fuzzed scenario itself plus its **accurate twin** —
//! the same ground truth with the advice replaced by the truth.  The
//! twin pins the zero-divergence corner of the grid, giving the
//! consistency and monotonicity oracles a per-trace contrast instead of
//! comparing against a global baseline.
//!
//! Everything is a pure function of [`FuzzConfig`]: trace `i` is
//! generated from a SplitMix-derived `ChaCha8Rng` stream of
//! `(seed, i)`, every evaluation seeds its matrix from the campaign
//! seed, and the shrinker is deterministic — so one `(seed, budget)`
//! pair always produces byte-identical reproducers.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crp_predict::{AdversaryKind, Scenario, ScenarioLibrary, Trace, TraceModel};
use crp_protocols::{ProtocolRegistry, ProtocolSpec};
use crp_sim::{RunnerConfig, SimError, SweepMatrix, SweepProtocol, SweepResults};

use crate::error::FuzzError;
use crate::property::{property_by_name, Property, Violation};
use crate::shrink::shrink_trace;

/// Everything a fuzz campaign depends on.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of traces to generate and check.
    pub budget: usize,
    /// Campaign seed: fixes the generated traces *and* every
    /// evaluation's Monte-Carlo streams.
    pub seed: u64,
    /// Universe size `n` the traces play out in.
    pub universe: usize,
    /// Events per generated trace.
    pub steps: usize,
    /// Monte-Carlo trials per grid cell.
    pub trials: usize,
    /// Registry protocols under test (the grid's columns).
    pub protocols: Vec<String>,
    /// Adversary models traces round-robin over.
    pub adversaries: Vec<AdversaryKind>,
    /// Property oracle to check (a [`crate::property::PROPERTY_NAMES`]
    /// entry).
    pub property: String,
    /// Execution configuration for the evaluations (backend, threads,
    /// fleet, chaos plan); `trials` and `base_seed` are overridden per
    /// evaluation.
    pub runner: RunnerConfig,
    /// Minimise failing traces before reporting them.
    pub shrink: bool,
    /// Evaluation budget of each minimisation.
    pub max_shrink_evals: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            budget: 16,
            seed: 0xF0CC5,
            universe: 256,
            steps: 12,
            trials: 200,
            protocols: vec!["decay".into(), "sorted-guess-cycling".into()],
            adversaries: AdversaryKind::ALL.to_vec(),
            property: "all".into(),
            runner: RunnerConfig::default(),
            shrink: false,
            max_shrink_evals: 512,
        }
    }
}

/// One evaluated trace: the sweep grid it compiled to and the oracle's
/// verdict on it.
#[derive(Debug, Clone)]
pub struct TraceEvaluation {
    /// The executed (scenario × protocol) grid, accurate twin first.
    pub results: SweepResults,
    /// Every property violation the grid exhibits.
    pub violations: Vec<Violation>,
}

/// A trace the oracle rejected, with its (optional) minimisation.
#[derive(Debug, Clone)]
pub struct FailingTrace {
    /// Campaign index of the trace.
    pub index: usize,
    /// Adversary model that generated it.
    pub adversary: AdversaryKind,
    /// The original failing trace.
    pub trace: Trace,
    /// Violations of the original trace.
    pub violations: Vec<Violation>,
    /// The shrunk reproducer, when minimisation ran and succeeded.
    pub minimal: Option<Trace>,
    /// Predicate evaluations the minimisation spent (0 when disabled).
    pub shrink_evals: usize,
}

/// Outcome of a whole campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Traces generated and evaluated.
    pub traces_run: usize,
    /// Traces the oracle rejected.
    pub failures: Vec<FailingTrace>,
}

impl CampaignReport {
    /// True when every trace satisfied the property.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// SplitMix64 finaliser deriving independent per-trace seeds, mirroring
/// the sweep engine's per-cell derivation.
fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ (index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the sweep column for one registry protocol, with the same
/// derivations the `crp_experiments sweep` CLI uses: universe, condensed
/// advice prediction and a default population-size estimate from each
/// scenario, and a `64·n` round budget for protocols without a bounded
/// horizon.
///
/// # Errors
///
/// [`FuzzError::Sim`] when `name` is not in the protocol registry.
pub fn protocol_column(name: &str) -> Result<SweepProtocol, FuzzError> {
    if ProtocolRegistry::standard().entry(name).is_none() {
        return Err(FuzzError::Sim(SimError::InvalidParameter {
            what: format!("unknown protocol {name:?}; run `crp_experiments list` for the registry"),
        }));
    }
    let spec_for = {
        let name = name.to_string();
        move |s: &Scenario| {
            let n = s.distribution().max_size();
            ProtocolSpec::new(name.clone())
                .universe(n)
                .prediction(s.advice_condensed())
                .participants((n / 16).max(2))
                .advice_bits(2)
        }
    };
    // Horizon-boundedness is a property of the protocol type, so probe it
    // once with a small representative scenario (as the CLI does).
    let has_horizon = spec_for(&ScenarioLibrary::new(64)?.bimodal())
        .build()
        .ok()
        .and_then(|protocol| protocol.horizon())
        .is_some();
    Ok(
        SweepProtocol::from_scenario(name, spec_for).max_rounds_with(move |s| {
            if has_horizon {
                None
            } else {
                Some(64 * s.distribution().max_size())
            }
        }),
    )
}

/// The accurate twin of a compiled trace scenario: same ground truth,
/// advice replaced by the truth (divergence exactly zero).
fn accurate_twin(scenario: &Scenario) -> Scenario {
    Scenario::new(
        format!("{}-accurate", scenario.name()),
        scenario.distribution().clone(),
    )
}

/// Compiles `trace` under `label` and evaluates it (plus its accurate
/// twin) against `property` on the configured runner.
///
/// # Errors
///
/// Trace compilation errors ([`FuzzError::Predict`]) and grid
/// compilation/execution errors ([`FuzzError::Sim`]).
pub fn evaluate_trace(
    config: &FuzzConfig,
    trace: &Trace,
    label: &str,
    property: &dyn Property,
) -> Result<TraceEvaluation, FuzzError> {
    let scenario = trace.compile(label)?;
    let mut matrix = SweepMatrix::new()
        .runner(RunnerConfig {
            trials: config.trials,
            base_seed: config.seed,
            ..config.runner.clone()
        })
        .scenario(accurate_twin(&scenario))
        .scenario(scenario)
        .trials(config.trials);
    for name in &config.protocols {
        matrix = matrix.protocol(protocol_column(name)?);
    }
    let results = matrix.run()?;
    let violations = property.check(&results);
    Ok(TraceEvaluation {
        results,
        violations,
    })
}

/// Runs a whole campaign: `budget` traces round-robinned over the
/// configured adversaries, each evaluated against the property oracle;
/// failing traces are minimised when `config.shrink` is set.
///
/// # Errors
///
/// Configuration errors surface immediately ([`FuzzError`]); evaluation
/// errors abort the campaign with the failing trace's error.
pub fn run_campaign(config: &FuzzConfig) -> Result<CampaignReport, FuzzError> {
    if config.budget == 0 {
        return Err(FuzzError::InvalidParameter {
            what: "budget must be at least 1".into(),
        });
    }
    if config.adversaries.is_empty() {
        return Err(FuzzError::InvalidParameter {
            what: "at least one adversary model is required".into(),
        });
    }
    if config.protocols.is_empty() {
        return Err(FuzzError::InvalidParameter {
            what: "at least one protocol is required".into(),
        });
    }
    let property = property_by_name(&config.property)?;

    let mut report = CampaignReport::default();
    for index in 0..config.budget {
        let adversary = config.adversaries[index % config.adversaries.len()];
        let model = TraceModel::new(adversary, config.universe)?;
        let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(config.seed, index as u64));
        let trace = model.generate(&mut rng, config.steps);
        let label = format!("fuzz-{}-{index:03}", adversary.name());
        let evaluation = evaluate_trace(config, &trace, &label, property.as_ref())?;
        report.traces_run += 1;
        if evaluation.violations.is_empty() {
            continue;
        }
        let (minimal, shrink_evals) = if config.shrink {
            let outcome = shrink_failure(config, &trace, property.as_ref());
            (Some(outcome.0), outcome.1)
        } else {
            (None, 0)
        };
        report.failures.push(FailingTrace {
            index,
            adversary,
            trace,
            violations: evaluation.violations,
            minimal,
            shrink_evals,
        });
    }
    Ok(report)
}

/// Minimises one failing trace against the property (evaluation errors
/// count as "does not fail", so shrinking never leaves the valid space).
pub(crate) fn shrink_failure(
    config: &FuzzConfig,
    trace: &Trace,
    property: &dyn Property,
) -> (Trace, usize) {
    let mut failing = |candidate: &Trace| {
        evaluate_trace(config, candidate, "shrink", property)
            .map(|evaluation| !evaluation.violations.is_empty())
            .unwrap_or(false)
    };
    let outcome = shrink_trace(trace, config.max_shrink_evals, &mut failing);
    (outcome.trace, outcome.evals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_protocols_and_empty_budgets_are_typed_errors() {
        assert!(matches!(
            protocol_column("no-such-protocol"),
            Err(FuzzError::Sim(_))
        ));
        let config = FuzzConfig {
            budget: 0,
            ..FuzzConfig::default()
        };
        assert!(matches!(
            run_campaign(&config),
            Err(FuzzError::InvalidParameter { .. })
        ));
        let config = FuzzConfig {
            property: "nope".into(),
            ..FuzzConfig::default()
        };
        assert!(matches!(
            run_campaign(&config),
            Err(FuzzError::UnknownProperty { .. })
        ));
    }

    #[test]
    fn a_tiny_campaign_on_a_sound_protocol_is_clean_and_deterministic() {
        let config = FuzzConfig {
            budget: 2,
            seed: 11,
            universe: 16,
            steps: 4,
            trials: 30,
            protocols: vec!["decay".into()],
            ..FuzzConfig::default()
        };
        let report = run_campaign(&config).unwrap();
        assert_eq!(report.traces_run, 2);
        assert!(report.clean(), "decay violates: {:?}", report.failures);
        // Same config, same verdicts.
        let again = run_campaign(&config).unwrap();
        assert_eq!(again.traces_run, report.traces_run);
        assert!(again.clean());
    }

    #[test]
    fn the_accurate_twin_pins_zero_divergence() {
        let trace = Trace::new(
            32,
            vec![
                crp_predict::TraceEvent::Truth {
                    level: 3,
                    weight: 1.0,
                },
                crp_predict::TraceEvent::Observe { fidelity: 0.5 },
                crp_predict::TraceEvent::Drift { shift: 1 },
            ],
        )
        .unwrap();
        let scenario = trace.compile("drifty").unwrap();
        assert!(scenario.advice_divergence() > 0.0);
        let twin = accurate_twin(&scenario);
        assert_eq!(twin.name(), "drifty-accurate");
        assert_eq!(twin.advice_divergence(), 0.0);
    }
}
