//! Model-based scenario fuzzing for the contention-resolution
//! reproduction.
//!
//! The repository's sweeps check the paper's claims on a *fixed* scenario
//! library; this crate searches for counterexamples instead.  A seeded
//! generative **trace model** ([`TraceModel`], re-exported from
//! `crp-predict`) plays an adversary against the arrival process and the
//! advice channel, emitting [`Trace`]s — little programs of truth
//! updates, noisy observations and drifts — with a canonical,
//! hash-stable wire form.  Each trace compiles to a scenario and is
//! evaluated through the ordinary sweep stack (any backend, including a
//! chaos-planned fleet), and **property oracles** check the paper's
//! envelopes on the resulting grid.  Failures are **minimised** by a
//! deterministic delta-debugging shrinker and checked into a
//! content-addressed reproducer corpus that a test replays forever
//! after.
//!
//! The layers:
//!
//! * [`property`] — the [`property::Property`] trait and the shipped
//!   oracles: [`property::ThroughputFloor`] (consistency near accurate
//!   advice), [`property::RobustnessFloor`] (graceful degradation under
//!   arbitrary divergence) and [`property::MonotoneDegradation`] (better
//!   advice never hurts), plus the [`property::AllOf`] combinator.
//! * [`campaign`] — [`campaign::FuzzConfig`] and
//!   [`campaign::run_campaign`]: seeded trace generation round-robinned
//!   over adversary models, each trace evaluated as a two-row grid
//!   against its zero-divergence *accurate twin*.
//! * [`shrink`] — [`shrink::shrink_trace`]: deterministic ddmin over
//!   trace events plus per-field scalar shrinking and universe halving.
//! * [`corpus`] — [`corpus::Corpus`]: shrunk reproducers as
//!   content-addressed `fuzz-<hash12>.trace` files.
//! * [`error`] — the [`FuzzError`] type.
//!
//! The `crp_fuzz` binary fronts all of this (and `crp_experiments fuzz`
//! delegates to it); the fixed-seed CI smoke job asserts that the
//! shipped protocols clear every oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod error;
pub mod property;
pub mod shrink;

pub use campaign::{
    evaluate_trace, protocol_column, run_campaign, CampaignReport, FailingTrace, FuzzConfig,
    TraceEvaluation,
};
pub use corpus::{Corpus, TRACE_EXTENSION};
pub use error::FuzzError;
pub use property::{
    property_by_name, AllOf, MonotoneDegradation, Property, RobustnessFloor, ThroughputFloor,
    Violation, PROPERTY_NAMES,
};
pub use shrink::{shrink_trace, ShrinkOutcome};

// The trace model lives in `crp-predict` (scenarios are its domain);
// re-export it so fuzzing callers need only this crate.
pub use crp_predict::{AdversaryKind, Trace, TraceEvent, TraceModel, MAX_FIDELITY};
