//! Command-line front end of the fuzzing subsystem.
//!
//! Usage:
//!
//! ```text
//! crp_fuzz [campaign] [--budget N] [--seed S] [--size N] [--steps N]
//!          [--trials T] [--protocols a,b,..] [--adversaries a,b,..]
//!          [--property NAME] [--shrink] [--max-shrink-evals N]
//!          [--backend serial|thread|process|fleet] [--threads T]
//!          [--fleet MANIFEST] [--chaos PLAN] [--save DIR]
//! crp_fuzz replay [--corpus DIR] [FILE ..] [--trials T]
//!          [--protocols a,b,..] [--property NAME]
//! ```
//!
//! `campaign` (the default) generates `--budget` seeded adversarial
//! traces, evaluates each against the property oracle and prints every
//! violation; with `--shrink` failures are minimised first, and with
//! `--save DIR` the minimal reproducers are written into that corpus
//! directory.  The process exits with status 1 when any trace violates
//! the property — the fixed-seed CI smoke job relies on that.
//!
//! `replay` re-evaluates checked-in reproducers: every `FILE` (and every
//! `*.trace` entry of `--corpus DIR`) is parsed, compiled and run
//! against the oracle, printing the violations it reproduces.  Replay
//! exits non-zero only when a file cannot be parsed or evaluated —
//! reproducers are *expected* to violate.
//!
//! `--chaos PLAN` (e.g. `0:die@2,1:wedge@5`) applies a declarative fault
//! schedule to the worker pool of a `--backend fleet` evaluation; a
//! completed chaos run is bit-identical to the serial backend.

use std::process::ExitCode;
use std::str::FromStr;

use crp_fleet::{ChaosPlan, FleetManifest};
use crp_fuzz::{property_by_name, run_campaign, Corpus, FuzzConfig, Trace};
use crp_predict::AdversaryKind;
use crp_sim::BackendChoice;

/// Parsed command line: the shared campaign configuration plus the
/// replay inputs.
struct Options {
    command: String,
    config: FuzzConfig,
    save: Option<String>,
    corpus: Option<String>,
    files: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            command: "campaign".to_string(),
            config: FuzzConfig::default(),
            save: None,
            corpus: None,
            files: Vec::new(),
        }
    }
}

fn parse_usize(flag: &str, value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a non-negative integer, got {value:?}"))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut index = 0;
    let next = |index: &mut usize, flag: &str| -> Result<String, String> {
        *index += 1;
        args.get(*index)
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value"))
    };
    while index < args.len() {
        match args[index].as_str() {
            "campaign" | "replay" if index == 0 => {
                options.command = args[index].clone();
            }
            "--budget" => {
                options.config.budget = parse_usize("--budget", &next(&mut index, "--budget")?)?
            }
            "--seed" => {
                let value = next(&mut index, "--seed")?;
                options.config.seed = value
                    .parse()
                    .map_err(|_| format!("--seed expects an integer, got {value:?}"))?;
            }
            "--size" => {
                options.config.universe = parse_usize("--size", &next(&mut index, "--size")?)?
            }
            "--steps" => {
                options.config.steps = parse_usize("--steps", &next(&mut index, "--steps")?)?
            }
            "--trials" => {
                options.config.trials = parse_usize("--trials", &next(&mut index, "--trials")?)?
            }
            "--max-shrink-evals" => {
                options.config.max_shrink_evals = parse_usize(
                    "--max-shrink-evals",
                    &next(&mut index, "--max-shrink-evals")?,
                )?
            }
            "--protocols" => {
                options.config.protocols = next(&mut index, "--protocols")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--adversaries" => {
                let value = next(&mut index, "--adversaries")?;
                let mut kinds = Vec::new();
                for name in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    kinds.push(AdversaryKind::by_name(name).map_err(|err| err.to_string())?);
                }
                options.config.adversaries = kinds;
            }
            "--property" => {
                let name = next(&mut index, "--property")?;
                // Resolve eagerly so typos fail before any work happens.
                property_by_name(&name).map_err(|err| err.to_string())?;
                options.config.property = name;
            }
            "--shrink" => options.config.shrink = true,
            "--backend" => {
                options.config.runner.backend =
                    BackendChoice::from_str(&next(&mut index, "--backend")?)?
            }
            "--threads" | "--workers" => {
                let threads = parse_usize("--threads", &next(&mut index, "--threads")?)?;
                if threads == 0 {
                    return Err("--threads expects a positive integer".to_string());
                }
                options.config.runner.threads = threads;
            }
            "--fleet" => {
                let manifest = FleetManifest::parse(&next(&mut index, "--fleet")?)
                    .map_err(|err| err.to_string())?;
                options.config.runner.fleet = Some(manifest);
                options.config.runner.backend = BackendChoice::Fleet;
            }
            "--chaos" => {
                let plan = ChaosPlan::parse(&next(&mut index, "--chaos")?)
                    .map_err(|err| err.to_string())?;
                options.config.runner.chaos = Some(plan);
                options.config.runner.backend = BackendChoice::Fleet;
            }
            "--save" => options.save = Some(next(&mut index, "--save")?),
            "--corpus" => options.corpus = Some(next(&mut index, "--corpus")?),
            other if !other.starts_with("--") && options.command == "replay" => {
                options.files.push(other.to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
        index += 1;
    }
    Ok(options)
}

/// Campaign mode: generate, evaluate, optionally shrink and save.
fn campaign_mode(options: &Options) -> Result<ExitCode, String> {
    let config = &options.config;
    println!(
        "fuzz campaign: budget {} seed {} universe {} steps {} trials {} property {}",
        config.budget, config.seed, config.universe, config.steps, config.trials, config.property
    );
    let report = run_campaign(config).map_err(|err| err.to_string())?;
    if report.clean() {
        println!(
            "{} traces, 0 violations — all properties hold",
            report.traces_run
        );
        return Ok(ExitCode::SUCCESS);
    }
    let corpus = options.save.as_ref().map(Corpus::open);
    for failure in &report.failures {
        println!(
            "trace #{} ({} adversary, {} events) violates:",
            failure.index,
            failure.adversary.name(),
            failure.trace.len()
        );
        for violation in &failure.violations {
            println!("  {violation}");
        }
        let reproducer = failure.minimal.as_ref().unwrap_or(&failure.trace);
        if failure.minimal.is_some() {
            println!(
                "  shrunk to {} events in {} evaluations",
                reproducer.len(),
                failure.shrink_evals
            );
        }
        if let Some(corpus) = &corpus {
            let path = corpus.save(reproducer).map_err(|err| err.to_string())?;
            println!("  reproducer saved to {}", path.display());
        }
    }
    println!(
        "{} traces, {} failing — see the violations above",
        report.traces_run,
        report.failures.len()
    );
    Ok(ExitCode::FAILURE)
}

/// Replay mode: parse and re-evaluate reproducers; violations are the
/// expected outcome, parse/evaluation failures are the errors.
fn replay_mode(options: &Options) -> Result<ExitCode, String> {
    let mut entries: Vec<(String, Trace)> = Vec::new();
    if let Some(dir) = &options.corpus {
        for (path, trace) in Corpus::open(dir)
            .load_all()
            .map_err(|err| err.to_string())?
        {
            entries.push((path.display().to_string(), trace));
        }
    }
    for file in &options.files {
        let text = std::fs::read_to_string(file).map_err(|err| format!("{file}: {err}"))?;
        let trace = Trace::from_wire(&text).map_err(|err| format!("{file}: {err}"))?;
        entries.push((file.clone(), trace));
    }
    if entries.is_empty() {
        return Err("replay needs --corpus DIR or trace files".to_string());
    }
    let property = property_by_name(&options.config.property).map_err(|err| err.to_string())?;
    for (name, trace) in &entries {
        let evaluation =
            crp_fuzz::evaluate_trace(&options.config, trace, "replay", property.as_ref())
                .map_err(|err| format!("{name}: {err}"))?;
        println!(
            "{name}: {} events, {} violations",
            trace.len(),
            evaluation.violations.len()
        );
        for violation in &evaluation.violations {
            println!("  {violation}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(err) => {
            eprintln!("crp_fuzz: {err}");
            return ExitCode::FAILURE;
        }
    };
    let run = match options.command.as_str() {
        "replay" => replay_mode(&options),
        _ => campaign_mode(&options),
    };
    match run {
        Ok(code) => code,
        Err(err) => {
            eprintln!("crp_fuzz: {err}");
            ExitCode::FAILURE
        }
    }
}
