//! Property oracles: the paper's envelopes as executable checks.
//!
//! A [`Property`] inspects the [`SweepResults`] of an evaluated trace and
//! returns zero or more [`Violation`]s.  The three shipped oracles encode
//! the envelope claims the reproduction rests on:
//!
//! * [`ThroughputFloor`] — *consistency*: when advice is accurate (cell
//!   divergence below a cap), throughput must stay near the optimum
//!   (success rate above a floor within the generous sweep budget).
//! * [`RobustnessFloor`] — *robustness*: no matter how far the advice
//!   has diverged, a sound protocol still resolves within the worst-case
//!   budget (the paper's `O(2^{2H+2D})` / decay-style fallback bounds);
//!   a protocol that trusts advice past the divergence bound collapses
//!   here.
//! * [`MonotoneDegradation`] — *monotone degradation in divergence*:
//!   better advice can never hurt — a cell with strictly lower
//!   divergence must not succeed materially less than the same
//!   protocol's cell at higher divergence.
//!
//! The thresholds are deliberately loose envelopes, not tight bounds:
//! every shipped protocol clears them with margin across the whole
//! generative trace space (the CI smoke job enforces exactly that), so a
//! violation is a genuine property failure, not statistical noise.

use crp_sim::SweepResults;

use crate::error::FuzzError;

/// One concrete property failure, tied to the grid cell that exhibits it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated property.
    pub property: &'static str,
    /// Scenario label of the offending cell.
    pub scenario: String,
    /// Protocol label of the offending cell.
    pub protocol: String,
    /// Human-readable description with the measured and required values.
    pub what: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} × {}: {}",
            self.property, self.scenario, self.protocol, self.what
        )
    }
}

/// An executable envelope check over one evaluated grid.
pub trait Property: Send + Sync {
    /// Stable name (what `--property` selects and violations report).
    fn name(&self) -> &'static str;

    /// All violations the grid exhibits (empty = the property holds).
    fn check(&self, results: &SweepResults) -> Vec<Violation>;
}

/// Consistency: cells whose advice divergence is at most
/// `divergence_cap` bits must reach at least `min_success`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputFloor {
    /// Cells at or below this divergence count as "accurate advice".
    pub divergence_cap: f64,
    /// Required success rate on accurate-advice cells.
    pub min_success: f64,
}

impl Default for ThroughputFloor {
    fn default() -> Self {
        Self {
            divergence_cap: 0.25,
            min_success: 0.95,
        }
    }
}

impl Property for ThroughputFloor {
    fn name(&self) -> &'static str {
        "throughput-floor"
    }

    fn check(&self, results: &SweepResults) -> Vec<Violation> {
        results
            .cells()
            .iter()
            .filter(|cell| cell.advice_divergence <= self.divergence_cap)
            .filter(|cell| cell.stats.success_rate() < self.min_success)
            .map(|cell| Violation {
                property: self.name(),
                scenario: cell.scenario.clone(),
                protocol: cell.protocol.clone(),
                what: format!(
                    "success rate {:.4} < {:.4} with accurate advice (divergence {:.4} <= {:.4} \
                     bits)",
                    cell.stats.success_rate(),
                    self.min_success,
                    cell.advice_divergence,
                    self.divergence_cap
                ),
            })
            .collect()
    }
}

/// Robustness: every cell — however far the advice diverged — must reach
/// at least `min_success` within the sweep's worst-case budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessFloor {
    /// Required success rate on every cell.
    pub min_success: f64,
}

impl Default for RobustnessFloor {
    fn default() -> Self {
        Self { min_success: 0.9 }
    }
}

impl Property for RobustnessFloor {
    fn name(&self) -> &'static str {
        "robustness-floor"
    }

    fn check(&self, results: &SweepResults) -> Vec<Violation> {
        results
            .cells()
            .iter()
            .filter(|cell| cell.stats.success_rate() < self.min_success)
            .map(|cell| Violation {
                property: self.name(),
                scenario: cell.scenario.clone(),
                protocol: cell.protocol.clone(),
                what: format!(
                    "success rate {:.4} < {:.4} at divergence {:.4} bits — the protocol does \
                     not degrade gracefully",
                    cell.stats.success_rate(),
                    self.min_success,
                    cell.advice_divergence
                ),
            })
            .collect()
    }
}

/// Monotone degradation: for one protocol, a cell with *lower* advice
/// divergence must not succeed more than `tolerance` less than a cell
/// with higher divergence (better advice can never hurt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonotoneDegradation {
    /// Allowed Monte-Carlo slack between the two success rates.
    pub tolerance: f64,
}

impl Default for MonotoneDegradation {
    fn default() -> Self {
        Self { tolerance: 0.15 }
    }
}

impl Property for MonotoneDegradation {
    fn name(&self) -> &'static str {
        "monotone-degradation"
    }

    fn check(&self, results: &SweepResults) -> Vec<Violation> {
        let mut violations = Vec::new();
        let cells = results.cells();
        for low in cells {
            for high in cells {
                let comparable =
                    low.protocol == high.protocol && low.advice_divergence < high.advice_divergence;
                if comparable
                    && low.stats.success_rate() + self.tolerance < high.stats.success_rate()
                {
                    violations.push(Violation {
                        property: self.name(),
                        scenario: low.scenario.clone(),
                        protocol: low.protocol.clone(),
                        what: format!(
                            "success {:.4} at divergence {:.4} bits, but {:.4} at the *worse* \
                             divergence {:.4} bits ({}) — degradation is not monotone",
                            low.stats.success_rate(),
                            low.advice_divergence,
                            high.stats.success_rate(),
                            high.advice_divergence,
                            high.scenario
                        ),
                    });
                }
            }
        }
        violations
    }
}

/// Combinator: every violation of every inner property.
pub struct AllOf {
    properties: Vec<Box<dyn Property>>,
}

impl AllOf {
    /// Combines a set of properties into one.
    pub fn new(properties: Vec<Box<dyn Property>>) -> Self {
        Self { properties }
    }

    /// The three standard oracles at their default thresholds.
    pub fn standard() -> Self {
        Self::new(vec![
            Box::new(ThroughputFloor::default()),
            Box::new(RobustnessFloor::default()),
            Box::new(MonotoneDegradation::default()),
        ])
    }
}

impl Property for AllOf {
    fn name(&self) -> &'static str {
        "all"
    }

    fn check(&self, results: &SweepResults) -> Vec<Violation> {
        self.properties
            .iter()
            .flat_map(|property| property.check(results))
            .collect()
    }
}

/// Every name [`property_by_name`] accepts, in a stable order.
pub const PROPERTY_NAMES: [&str; 4] = [
    "throughput-floor",
    "robustness-floor",
    "monotone-degradation",
    "all",
];

/// Looks a property oracle up by its stable name (default thresholds).
///
/// # Errors
///
/// [`FuzzError::UnknownProperty`] listing the valid names.
pub fn property_by_name(name: &str) -> Result<Box<dyn Property>, FuzzError> {
    match name {
        "throughput-floor" => Ok(Box::new(ThroughputFloor::default())),
        "robustness-floor" => Ok(Box::new(RobustnessFloor::default())),
        "monotone-degradation" => Ok(Box::new(MonotoneDegradation::default())),
        "all" => Ok(Box::new(AllOf::standard())),
        other => Err(FuzzError::UnknownProperty {
            name: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use crp_sim::{SweepCellResult, TrialStats};

    use super::*;

    fn cell(protocol: &str, scenario: &str, divergence: f64, resolved: usize) -> SweepCellResult {
        SweepCellResult {
            scenario: scenario.to_string(),
            protocol: protocol.to_string(),
            trials: 100,
            condensed_entropy: 1.0,
            advice_divergence: divergence,
            stats: TrialStats {
                trials: 100,
                resolved,
                rounds_when_resolved: None,
                rounds_overall: None,
            },
        }
    }

    #[test]
    fn floors_flag_only_failing_cells() {
        let results = SweepResults::from_cells(vec![
            cell("good", "accurate", 0.0, 100),
            cell("good", "drifted", 3.0, 95),
            cell("naive", "accurate", 0.0, 99),
            cell("naive", "drifted", 3.0, 12),
        ]);
        assert!(ThroughputFloor::default().check(&results).is_empty());
        let violations = RobustnessFloor::default().check(&results);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].protocol, "naive");
        assert!(violations[0].to_string().contains("0.12"));
        // The naive protocol degrades monotonically — collapsing is not a
        // monotonicity violation, it is a robustness violation.
        assert!(MonotoneDegradation::default().check(&results).is_empty());
        assert_eq!(AllOf::standard().check(&results).len(), 1);
    }

    #[test]
    fn throughput_floor_ignores_diverged_cells() {
        let results = SweepResults::from_cells(vec![cell("slow", "drifted", 2.0, 10)]);
        assert!(ThroughputFloor::default().check(&results).is_empty());
        let results = SweepResults::from_cells(vec![cell("slow", "accurate", 0.1, 10)]);
        assert_eq!(ThroughputFloor::default().check(&results).len(), 1);
    }

    #[test]
    fn monotone_degradation_flags_advice_that_hurts() {
        let results = SweepResults::from_cells(vec![
            cell("odd", "accurate", 0.0, 60),
            cell("odd", "drifted", 2.0, 90),
        ]);
        let violations = MonotoneDegradation::default().check(&results);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].what.contains("not monotone"));
    }

    #[test]
    fn names_resolve_and_unknown_names_are_typed() {
        for name in PROPERTY_NAMES {
            assert_eq!(property_by_name(name).unwrap().name(), name);
        }
        assert!(matches!(
            property_by_name("nope"),
            Err(FuzzError::UnknownProperty { .. })
        ));
    }
}
