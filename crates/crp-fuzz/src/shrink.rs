//! Deterministic failure minimisation.
//!
//! [`shrink_trace`] reduces a violating trace to a minimal reproducer in
//! two deterministic passes:
//!
//! 1. **Delta debugging** over the event list: try removing
//!    progressively smaller chunks (halves, quarters, … singles),
//!    keeping any candidate that still violates, until no single event
//!    can be removed.
//! 2. **Scalar shrinking** per surviving event and for the universe:
//!    replace each field with its simplest still-violating value (level
//!    → 1, weight → 1, fidelity → the canonical cap, shift → ±1,
//!    universe halved towards the floor of 8).
//!
//! The predicate is called at most `max_evals` times, every candidate is
//! produced by a fixed schedule with no randomness, and ties always
//! resolve the same way — so the same input trace and predicate yield a
//! byte-identical minimal reproducer on every run (the corpus-replay
//! test relies on this).  In practice the shipped oracle failures shrink
//! to **at most 4 events** (truth, observe, and at most two
//! drift/truth events); that bound is asserted by the regression tests.

use crp_predict::{Trace, TraceEvent, MAX_FIDELITY};

/// Outcome of a shrink: the minimal trace found and how many candidate
/// evaluations the predicate was asked for.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkOutcome {
    /// The smallest still-violating trace found.
    pub trace: Trace,
    /// Number of candidate evaluations spent.
    pub evals: usize,
}

struct Shrinker<'a> {
    failing: &'a mut dyn FnMut(&Trace) -> bool,
    max_evals: usize,
    evals: usize,
}

impl Shrinker<'_> {
    fn budget_left(&self) -> bool {
        self.evals < self.max_evals
    }

    /// Evaluates one candidate against the predicate (within budget).
    fn still_fails(&mut self, candidate: &Trace) -> bool {
        if !self.budget_left() {
            return false;
        }
        self.evals += 1;
        (self.failing)(candidate)
    }

    /// ddmin over the event list: chunked removal from halves down to
    /// single events, restarting at the current granularity after every
    /// successful removal.
    fn minimise_events(&mut self, trace: &mut Trace) {
        let mut chunk = (trace.len() / 2).max(1);
        loop {
            let mut removed_any = false;
            let mut start = 0;
            while start < trace.len() {
                let end = (start + chunk).min(trace.len());
                let mut events = trace.events().to_vec();
                events.drain(start..end);
                let candidate = Trace::new(trace.universe(), events)
                    .expect("removing events keeps a trace valid");
                if self.still_fails(&candidate) {
                    *trace = candidate;
                    removed_any = true;
                    // Re-try the same offset: the next chunk slid into it.
                } else {
                    start = end;
                }
                if !self.budget_left() {
                    return;
                }
            }
            if !removed_any && chunk == 1 {
                return;
            }
            if !removed_any {
                chunk = (chunk / 2).max(1);
            }
        }
    }

    /// The fixed simplification schedule for one event, simplest first.
    fn simplifications(event: TraceEvent) -> Vec<TraceEvent> {
        match event {
            TraceEvent::Truth { level, weight } => {
                let mut candidates = vec![
                    TraceEvent::Truth {
                        level: 1,
                        weight: 1.0,
                    },
                    TraceEvent::Truth { level, weight: 1.0 },
                ];
                if level > 1 {
                    candidates.push(TraceEvent::Truth {
                        level: level / 2,
                        weight,
                    });
                }
                candidates
            }
            TraceEvent::Observe { .. } => vec![TraceEvent::Observe {
                fidelity: MAX_FIDELITY,
            }],
            TraceEvent::Drift { shift } => {
                if shift.abs() > 1 {
                    vec![TraceEvent::Drift {
                        shift: shift.signum(),
                    }]
                } else {
                    vec![]
                }
            }
        }
    }

    /// One pass of per-field scalar shrinking; returns whether anything
    /// simplified.
    fn simplify_fields(&mut self, trace: &mut Trace) -> bool {
        let mut changed = false;
        for index in 0..trace.len() {
            for replacement in Self::simplifications(trace.events()[index]) {
                if replacement == trace.events()[index] {
                    continue;
                }
                let mut events = trace.events().to_vec();
                events[index] = replacement;
                let candidate = Trace::new(trace.universe(), events)
                    .expect("simplified fields stay within the validated ranges");
                if self.still_fails(&candidate) {
                    *trace = candidate;
                    changed = true;
                    break;
                }
                if !self.budget_left() {
                    return changed;
                }
            }
        }
        changed
    }

    /// Halves the universe towards the floor of 8 while the violation
    /// persists.
    fn shrink_universe(&mut self, trace: &mut Trace) {
        while trace.universe() / 2 >= 8 && self.budget_left() {
            let candidate = Trace::new(trace.universe() / 2, trace.events().to_vec())
                .expect("halving the universe keeps a trace valid");
            if self.still_fails(&candidate) {
                *trace = candidate;
            } else {
                return;
            }
        }
    }
}

/// Deterministically minimises `trace` against `failing` (true = the
/// candidate still violates).  The input trace is assumed to fail;
/// whatever minimal candidate survives is returned along with the number
/// of predicate evaluations spent (capped at `max_evals`).
pub fn shrink_trace(
    trace: &Trace,
    max_evals: usize,
    failing: &mut dyn FnMut(&Trace) -> bool,
) -> ShrinkOutcome {
    let mut shrinker = Shrinker {
        failing,
        max_evals,
        evals: 0,
    };
    let mut minimal = trace.clone();
    shrinker.minimise_events(&mut minimal);
    // Interleave scalar and structural passes to a fixpoint: simplifying
    // a field can unlock another event removal and vice versa.
    loop {
        let simplified = shrinker.simplify_fields(&mut minimal);
        if simplified && shrinker.budget_left() {
            shrinker.minimise_events(&mut minimal);
            continue;
        }
        break;
    }
    shrinker.shrink_universe(&mut minimal);
    ShrinkOutcome {
        trace: minimal,
        evals: shrinker.evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(universe: usize, events: Vec<TraceEvent>) -> Trace {
        Trace::new(universe, events).unwrap()
    }

    #[test]
    fn shrinks_to_the_single_load_bearing_event() {
        // The predicate: "some truth event puts mass at level >= 6".
        let original = trace(
            256,
            vec![
                TraceEvent::Truth {
                    level: 2,
                    weight: 0.3,
                },
                TraceEvent::Observe { fidelity: 0.7 },
                TraceEvent::Truth {
                    level: 7,
                    weight: 0.9,
                },
                TraceEvent::Drift { shift: -3 },
                TraceEvent::Truth {
                    level: 1,
                    weight: 0.2,
                },
            ],
        );
        let mut predicate = |t: &Trace| {
            t.events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Truth { level, .. } if *level >= 6))
        };
        let outcome = shrink_trace(&original, 512, &mut predicate);
        assert_eq!(
            outcome.trace.events(),
            &[TraceEvent::Truth {
                level: 7,
                weight: 1.0,
            }],
            "everything but the load-bearing truth event must go"
        );
        assert_eq!(outcome.trace.universe(), 8, "the universe shrinks too");
        assert!(outcome.evals > 0);
        // Determinism: an identical run takes identical steps.
        let again = shrink_trace(&original, 512, &mut predicate);
        assert_eq!(again, outcome);
    }

    #[test]
    fn respects_the_evaluation_budget() {
        let original = trace(
            64,
            (0..16)
                .map(|i| TraceEvent::Truth {
                    level: (i % 5) + 1,
                    weight: 0.5,
                })
                .collect(),
        );
        let mut calls = 0usize;
        let mut predicate = |_: &Trace| {
            calls += 1;
            true
        };
        let outcome = shrink_trace(&original, 3, &mut predicate);
        assert_eq!(outcome.evals, 3, "the budget is a hard cap");
        assert_eq!(calls, 3);
    }

    #[test]
    fn an_unshrinkable_trace_survives_unchanged() {
        let original = trace(
            8,
            vec![TraceEvent::Truth {
                level: 1,
                weight: 1.0,
            }],
        );
        let mut predicate = |t: &Trace| !t.is_empty();
        let outcome = shrink_trace(&original, 64, &mut predicate);
        assert_eq!(outcome.trace, original);
    }
}
