//! End-to-end acceptance of the fuzzing loop: a deliberately-broken
//! protocol (blind-trust, which trusts the prediction past any divergence
//! bound) is caught by the property oracle, minimised to a tiny
//! reproducer, and the whole pipeline is deterministic — the same seed
//! produces byte-identical reproducers.

use crp_fuzz::{run_campaign, Corpus, FuzzConfig};

/// The calibrated campaign the corpus reproducer was generated from (see
/// `fuzz/corpus/`): small enough to run in a test, adversarial enough
/// that blind-trust fails within the budget.
fn bait_config() -> FuzzConfig {
    FuzzConfig {
        budget: 6,
        seed: 7,
        universe: 64,
        steps: 8,
        trials: 60,
        protocols: vec!["blind-trust".into()],
        shrink: true,
        max_shrink_evals: 200,
        ..FuzzConfig::default()
    }
}

#[test]
fn the_oracle_catches_blind_trust_and_shrinks_it() {
    let report = run_campaign(&bait_config()).unwrap();
    assert_eq!(report.traces_run, 6);
    assert!(
        !report.failures.is_empty(),
        "blind-trust must violate the envelope properties"
    );
    for failure in &report.failures {
        assert!(
            !failure.violations.is_empty(),
            "a failing trace records its violations"
        );
        let minimal = failure
            .minimal
            .as_ref()
            .expect("shrinking was enabled, so a minimal trace is recorded");
        // The documented reproducer bound: a blind-trust failure reduces
        // to at most 4 events (a truth/observe core plus at most two
        // drift or burst events).
        assert!(
            minimal.len() <= 4,
            "reproducer has {} events, expected <= 4:\n{}",
            minimal.len(),
            minimal.to_wire()
        );
        assert!(minimal.len() <= failure.trace.len());
        assert!(failure.shrink_evals > 0);
        assert!(failure.shrink_evals <= 200);
    }
}

#[test]
fn the_same_seed_produces_byte_identical_reproducers() {
    let first = run_campaign(&bait_config()).unwrap();
    let second = run_campaign(&bait_config()).unwrap();
    assert_eq!(first.traces_run, second.traces_run);
    assert_eq!(first.failures.len(), second.failures.len());
    for (a, b) in first.failures.iter().zip(&second.failures) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.trace.to_wire(), b.trace.to_wire());
        let (a_min, b_min) = (a.minimal.as_ref().unwrap(), b.minimal.as_ref().unwrap());
        assert_eq!(
            a_min.to_wire(),
            b_min.to_wire(),
            "minimal reproducers must be byte-identical across runs"
        );
        assert_eq!(Corpus::trace_name(a_min), Corpus::trace_name(b_min));
        assert_eq!(a.shrink_evals, b.shrink_evals);
    }
}

#[test]
fn sound_protocols_survive_the_same_campaign() {
    // The control arm: the identical trace stream checked against the
    // shipped protocols finds nothing — so the blind-trust failures
    // above are the protocol's fault, not the harness's.
    let config = FuzzConfig {
        protocols: vec!["decay".into(), "sorted-guess-cycling".into()],
        shrink: false,
        ..bait_config()
    };
    let report = run_campaign(&config).unwrap();
    assert_eq!(report.traces_run, 6);
    assert!(
        report.clean(),
        "unexpected violations: {:?}",
        report.failures
    );
}
