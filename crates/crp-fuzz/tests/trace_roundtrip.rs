//! Property tests of the trace wire form: every generated trace must
//! round-trip through `to_wire` / `from_wire` bit-exactly, with a stable
//! content hash — across all adversary models and many seeds.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crp_fleet::content_hash;
use crp_fuzz::{AdversaryKind, Trace, TraceEvent, TraceModel};

#[test]
fn every_generated_trace_round_trips_bit_exactly() {
    for kind in AdversaryKind::ALL {
        for seed in 0..64u64 {
            let model = TraceModel::new(kind, 256).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let steps = (seed % 17) as usize;
            let trace = model.generate(&mut rng, steps);
            let wire = trace.to_wire();
            let parsed = Trace::from_wire(&wire).unwrap();
            assert_eq!(parsed, trace, "{} seed {seed}", kind.name());
            // Bit-exact: re-serialising the parse reproduces the bytes,
            // so the content hash is stable.
            assert_eq!(parsed.to_wire(), wire, "{} seed {seed}", kind.name());
            assert_eq!(
                content_hash(parsed.to_wire().as_bytes()),
                content_hash(wire.as_bytes())
            );
        }
    }
}

#[test]
fn the_empty_and_one_event_traces_round_trip() {
    let empty = Trace::new(32, vec![]).unwrap();
    assert_eq!(Trace::from_wire(&empty.to_wire()).unwrap(), empty);

    for event in [
        TraceEvent::Truth {
            level: 3,
            weight: 0.25,
        },
        TraceEvent::Observe { fidelity: 0.0 },
        TraceEvent::Observe { fidelity: 1.0 },
        TraceEvent::Drift { shift: -7 },
    ] {
        let trace = Trace::new(32, vec![event]).unwrap();
        let wire = trace.to_wire();
        let parsed = Trace::from_wire(&wire).unwrap();
        assert_eq!(parsed, trace, "{event:?}");
        assert_eq!(parsed.to_wire(), wire, "{event:?}");
    }
}

#[test]
fn awkward_float_bit_patterns_survive_the_wire() {
    // Weights and fidelities travel as IEEE-754 bit patterns, so values
    // with no short decimal form must still round-trip exactly.
    let awkward = [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 0.299_999_999_999_97];
    for &weight in &awkward {
        let trace = Trace::new(
            64,
            vec![
                TraceEvent::Truth { level: 2, weight },
                TraceEvent::Observe {
                    fidelity: weight.min(1.0),
                },
            ],
        )
        .unwrap();
        let parsed = Trace::from_wire(&trace.to_wire()).unwrap();
        let TraceEvent::Truth { weight: back, .. } = parsed.events()[0] else {
            panic!("expected a truth event");
        };
        assert_eq!(back.to_bits(), weight.to_bits(), "{weight}");
    }
}
