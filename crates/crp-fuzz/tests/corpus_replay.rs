//! Replays the checked-in reproducer corpus (`fuzz/corpus/` at the
//! repository root): every entry must parse, be stored in canonical
//! content-addressed form, and still violate the property it was
//! minimised against.  CI runs this test, so an unparsable or stale
//! corpus file fails the build.

use std::path::PathBuf;

use crp_fuzz::{evaluate_trace, property_by_name, Corpus, FuzzConfig};

fn repo_corpus() -> Corpus {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus");
    Corpus::open(dir)
}

#[test]
fn every_corpus_entry_parses_and_is_canonical() {
    let entries = repo_corpus().load_all().unwrap();
    assert!(
        !entries.is_empty(),
        "the shipped corpus must contain at least one reproducer"
    );
    for (path, trace) in &entries {
        // Canonical form: file bytes == re-serialised wire form, and the
        // filename is the content address of those bytes.
        let on_disk = std::fs::read_to_string(path).unwrap();
        assert_eq!(
            on_disk,
            trace.to_wire(),
            "{} is not canonical",
            path.display()
        );
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            Corpus::trace_name(trace),
            "{} is not content-addressed",
            path.display()
        );
    }
}

#[test]
fn the_shipped_reproducers_still_violate_blind_trust() {
    // The corpus entries were minimised against the blind-trust bait
    // protocol (see `tests/oracle_and_shrink.rs` for the generating
    // campaign); replaying them must reproduce a violation — that is
    // what makes them reproducers and not fossils.
    let config = FuzzConfig {
        trials: 60,
        protocols: vec!["blind-trust".into()],
        ..FuzzConfig::default()
    };
    let property = property_by_name("all").unwrap();
    for (path, trace) in repo_corpus().load_all().unwrap() {
        let evaluation = evaluate_trace(&config, &trace, "replay", property.as_ref()).unwrap();
        assert!(
            !evaluation.violations.is_empty(),
            "{} no longer violates any property",
            path.display()
        );
    }
}

#[test]
fn the_shipped_reproducers_replay_deterministically() {
    let config = FuzzConfig {
        trials: 60,
        protocols: vec!["blind-trust".into()],
        ..FuzzConfig::default()
    };
    let property = property_by_name("all").unwrap();
    for (path, trace) in repo_corpus().load_all().unwrap() {
        let first = evaluate_trace(&config, &trace, "replay", property.as_ref()).unwrap();
        let second = evaluate_trace(&config, &trace, "replay", property.as_ref()).unwrap();
        assert_eq!(
            first.results,
            second.results,
            "{} replays diverged",
            path.display()
        );
        assert_eq!(first.violations, second.violations);
    }
}
