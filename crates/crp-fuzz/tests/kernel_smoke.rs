//! The fuzz harness under the batched trial kernels: a short campaign
//! forced onto [`KernelChoice::Batched`] must report exactly what the
//! scalar executor reports — the same grids, the same (zero, for the
//! shipped protocols) property violations — because the kernels are
//! bit-identical to the scalar path by contract.  A kernel bug that
//! slipped past the unit equivalence tests would surface here as a
//! phantom violation or a diverging grid.

use std::path::PathBuf;

use crp_fuzz::{evaluate_trace, property_by_name, run_campaign, Corpus, FuzzConfig};
use crp_sim::{KernelChoice, RunnerConfig};

fn config_with_kernel(kernel: KernelChoice) -> FuzzConfig {
    FuzzConfig {
        budget: 4,
        trials: 80,
        runner: RunnerConfig::default().with_kernel(kernel),
        ..FuzzConfig::default()
    }
}

#[test]
fn a_batched_campaign_reports_exactly_what_the_scalar_campaign_reports() {
    let scalar = run_campaign(&config_with_kernel(KernelChoice::Scalar)).unwrap();
    let batched = run_campaign(&config_with_kernel(KernelChoice::Batched)).unwrap();
    assert_eq!(scalar.traces_run, batched.traces_run);
    // The shipped protocols satisfy every property; the kernels must not
    // invent a violation (nor hide one).
    assert!(scalar.clean(), "scalar campaign found unexpected failures");
    assert!(
        batched.clean(),
        "batched campaign found unexpected failures"
    );
}

#[test]
fn corpus_replays_are_bit_identical_under_the_batched_kernel() {
    let corpus = Corpus::open(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus"));
    let property = property_by_name("all").unwrap();
    let config = |kernel| FuzzConfig {
        trials: 60,
        protocols: vec!["blind-trust".into()],
        runner: RunnerConfig::default().with_kernel(kernel),
        ..FuzzConfig::default()
    };
    for (path, trace) in corpus.load_all().unwrap() {
        let scalar = evaluate_trace(
            &config(KernelChoice::Scalar),
            &trace,
            "replay",
            property.as_ref(),
        )
        .unwrap();
        let batched = evaluate_trace(
            &config(KernelChoice::Batched),
            &trace,
            "replay",
            property.as_ref(),
        )
        .unwrap();
        assert_eq!(
            scalar.results,
            batched.results,
            "{} diverged under the batched kernel",
            path.display()
        );
        assert_eq!(scalar.violations, batched.violations);
    }
}
