//! The Monte-Carlo trial runner.
//!
//! Trials are embarrassingly parallel; the runner shards them across
//! threads with a *per-trial* deterministic seed (`base_seed` xor trial
//! index), so the result set is identical regardless of how many threads
//! executed it.
//!
//! Two entry points are provided: [`run_trials`] for infallible trial
//! closures and [`run_batch`] — the engine under the [`crate::Simulation`]
//! builder — whose closures may fail with a typed error.  `run_batch` is
//! where protocol construction is amortised: the caller builds the
//! protocol once and every trial only *drives* it, which is what keeps
//! Monte-Carlo sweeps at `trials = 10^4…10^6` cheap.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crp_channel::Execution;
use crp_info::SizeDistribution;
use crp_protocols::{try_run_cd_strategy, try_run_schedule, CdStrategy, NoCdSchedule};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::stats::{SummaryStats, TrialStats};
use crate::SimError;

/// Outcome of a single Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Whether contention was resolved within the round budget.
    pub resolved: bool,
    /// Rounds elapsed (equals the budget when unresolved).
    pub rounds: usize,
}

impl From<Execution> for TrialOutcome {
    fn from(execution: Execution) -> Self {
        TrialOutcome {
            resolved: execution.resolved,
            rounds: execution.rounds,
        }
    }
}

/// Configuration of a batch of trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `i` uses seed `base_seed ^ i`.
    pub base_seed: u64,
    /// Number of worker threads (1 = run inline).
    pub threads: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            base_seed: 0xC0FFEE,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

impl RunnerConfig {
    /// Convenience constructor for a given trial count with the default
    /// seed and thread count.
    pub fn with_trials(trials: usize) -> Self {
        Self {
            trials,
            ..Self::default()
        }
    }

    /// Returns a copy with a different base seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Returns a copy pinned to a single thread (useful in tests).
    pub fn single_threaded(mut self) -> Self {
        self.threads = 1;
        self
    }
}

/// Runs `config.trials` independent trials of `trial`, which receives a
/// deterministically seeded RNG, and aggregates the outcomes.
///
/// The aggregation is order-insensitive, so the statistics are identical
/// regardless of thread count.
pub fn run_trials<F>(config: &RunnerConfig, trial: F) -> TrialStats
where
    F: Fn(&mut ChaCha8Rng) -> TrialOutcome + Sync,
{
    run_batch(config, |rng| Ok(trial(rng))).expect("infallible trials cannot fail")
}

/// Fallible batch runner: like [`run_trials`], but a trial may return a
/// typed error, which aborts the batch.
///
/// This is the amortised execution entry point used by
/// [`crate::Simulation`]: protocols are constructed once by the caller and
/// shared (immutably) across every trial and worker thread.
///
/// # Errors
///
/// Returns the first [`SimError`] any trial produced.  Which trial's error
/// is reported is deterministic for a fixed configuration (the lowest
/// trial index that failed).
pub fn run_batch<F>(config: &RunnerConfig, trial: F) -> Result<TrialStats, SimError>
where
    F: Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, SimError> + Sync,
{
    let outcomes: Vec<Result<TrialOutcome, SimError>> = if config.threads <= 1 || config.trials < 64
    {
        (0..config.trials)
            .map(|i| {
                let mut rng = ChaCha8Rng::seed_from_u64(config.base_seed ^ i as u64);
                trial(&mut rng)
            })
            .collect()
    } else {
        let results: Mutex<Vec<Result<TrialOutcome, SimError>>> =
            Mutex::new(vec![
                Ok(TrialOutcome {
                    resolved: false,
                    rounds: 0
                });
                config.trials
            ]);
        let next = AtomicUsize::new(0);
        let workers = config.threads.min(config.trials);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= config.trials {
                        break;
                    }
                    let mut rng = ChaCha8Rng::seed_from_u64(config.base_seed ^ index as u64);
                    let outcome = trial(&mut rng);
                    results
                        .lock()
                        .expect("no worker panics while holding the lock")[index] = outcome;
                });
            }
        });
        results
            .into_inner()
            .expect("no worker panics while holding the lock")
    };

    // Report the lowest-index error deterministically.
    let mut collected = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        collected.push(outcome?);
    }

    let resolved: Vec<f64> = collected
        .iter()
        .filter(|o| o.resolved)
        .map(|o| o.rounds as f64)
        .collect();
    let all: Vec<f64> = collected.iter().map(|o| o.rounds as f64).collect();
    Ok(TrialStats {
        trials: collected.len(),
        resolved: resolved.len(),
        rounds_when_resolved: SummaryStats::from_samples(&resolved),
        rounds_overall: SummaryStats::from_samples(&all),
    })
}

/// Measures a uniform no-collision-detection schedule against a true size
/// distribution: each trial samples `k ~ truth` and runs the schedule for
/// at most `max_rounds` rounds.
///
/// Convenience wrapper over [`run_batch`]; new code should prefer the
/// [`crate::Simulation`] builder, which also validates the configuration
/// up front.
pub fn measure_schedule<S>(
    schedule: &S,
    truth: &SizeDistribution,
    max_rounds: usize,
    config: &RunnerConfig,
) -> TrialStats
where
    S: NoCdSchedule + Sync + ?Sized,
{
    run_batch(config, |rng| {
        let k = sample_contending_size(truth, rng);
        try_run_schedule(schedule, k, max_rounds, rng)
            .map(TrialOutcome::from)
            .map_err(SimError::from)
    })
    .expect("schedule measurement over a positive budget cannot fail")
}

/// Measures a uniform collision-detection strategy against a true size
/// distribution.
///
/// Convenience wrapper over [`run_batch`]; new code should prefer the
/// [`crate::Simulation`] builder.
pub fn measure_cd_strategy<S>(
    strategy: &S,
    truth: &SizeDistribution,
    max_rounds: usize,
    config: &RunnerConfig,
) -> TrialStats
where
    S: CdStrategy + Sync + ?Sized,
{
    run_batch(config, |rng| {
        let k = sample_contending_size(truth, rng);
        try_run_cd_strategy(strategy, k, max_rounds, rng)
            .map(TrialOutcome::from)
            .map_err(SimError::from)
    })
    .expect("strategy measurement over a positive budget cannot fail")
}

/// Samples a network size from `truth`, re-drawing (or clamping) so the
/// result is at least 2 — the paper assumes at least two participants,
/// since size 1 has no contention to resolve.
pub fn sample_contending_size(truth: &SizeDistribution, rng: &mut ChaCha8Rng) -> usize {
    for _ in 0..16 {
        let k = truth.sample(rng);
        if k >= 2 {
            return k;
        }
    }
    2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_protocols::{Decay, FixedProbability, Willard};
    use rand::Rng;

    #[test]
    fn trial_results_are_independent_of_thread_count() {
        let truth = SizeDistribution::bimodal(1024, 30, 500, 0.8).unwrap();
        let decay = Decay::new(1024).unwrap();
        let serial = measure_schedule(
            &decay,
            &truth,
            10_000,
            &RunnerConfig::with_trials(200).seeded(7).single_threaded(),
        );
        let mut parallel_config = RunnerConfig::with_trials(200).seeded(7);
        parallel_config.threads = 4;
        let parallel = measure_schedule(&decay, &truth, 10_000, &parallel_config);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn correct_estimate_beats_decay() {
        let n = 4096;
        let k = 300;
        let truth = SizeDistribution::point_mass(n, k).unwrap();
        let config = RunnerConfig::with_trials(300).seeded(11);
        let fixed = measure_schedule(&FixedProbability::new(k).unwrap(), &truth, 10_000, &config);
        let decay = measure_schedule(&Decay::new(n).unwrap(), &truth, 10_000, &config);
        assert!(fixed.success_rate() > 0.99);
        assert!(decay.success_rate() > 0.99);
        assert!(fixed.mean_rounds_overall() < decay.mean_rounds_overall());
    }

    #[test]
    fn cd_strategy_measurement_reports_constant_probability_success() {
        let n = 1 << 14;
        let truth = SizeDistribution::uniform_ranges(n).unwrap();
        let willard = Willard::new(n).unwrap();
        let config = RunnerConfig::with_trials(400).seeded(3);
        let stats = measure_cd_strategy(&willard, &truth, willard.worst_case_rounds(), &config);
        assert!(stats.success_rate() > 0.3, "rate {}", stats.success_rate());
        assert!(stats.mean_rounds_when_resolved() <= willard.worst_case_rounds() as f64);
    }

    #[test]
    fn run_batch_surfaces_trial_errors() {
        let config = RunnerConfig::with_trials(10).seeded(0).single_threaded();
        let result = run_batch(&config, |_| {
            Err(SimError::InvalidParameter {
                what: "forced failure".into(),
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn run_batch_matches_run_trials_for_infallible_closures() {
        let config = RunnerConfig::with_trials(50).seeded(13).single_threaded();
        let via_trials = run_trials(&config, |rng| TrialOutcome {
            resolved: true,
            rounds: 1 + (rng.gen::<u64>() % 5) as usize,
        });
        let via_batch = run_batch(&config, |rng| {
            Ok(TrialOutcome {
                resolved: true,
                rounds: 1 + (rng.gen::<u64>() % 5) as usize,
            })
        })
        .unwrap();
        assert_eq!(via_trials, via_batch);
    }

    #[test]
    fn sample_contending_size_never_returns_less_than_two() {
        let truth = SizeDistribution::uniform_sizes(64).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(sample_contending_size(&truth, &mut rng) >= 2);
        }
    }

    #[test]
    fn runner_config_builders() {
        let config = RunnerConfig::with_trials(10).seeded(5).single_threaded();
        assert_eq!(config.trials, 10);
        assert_eq!(config.base_seed, 5);
        assert_eq!(config.threads, 1);
    }
}
