//! The sharded Monte-Carlo trial runner.
//!
//! Trials are embarrassingly parallel.  A batch is split by a [`ShardPlan`]
//! into fixed-size shards — a function of the trial count only, never of
//! the thread count — and each shard draws its randomness from its own
//! `ChaCha8Rng` stream derived from `(base_seed, shard_index)`.  Worker
//! threads claim whole shards from a work queue and fold each shard's
//! outcomes into a private [`TrialAccumulator`]; the driver then merges the
//! shard accumulators *in shard order*.  Because the plan, the streams and
//! the merge order are all independent of scheduling, the resulting
//! [`TrialStats`] are bit-identical for any thread count.
//!
//! Three entry points are provided: [`run_trials`] for infallible trial
//! closures, [`run_batch`] — the engine under the [`crate::Simulation`]
//! builder — whose closures may fail with a typed error, and
//! [`run_batch_with_progress`] which additionally reports per-shard
//! completion.  `run_batch` is where protocol construction is amortised:
//! the caller builds the protocol once and every trial only *drives* it,
//! which is what keeps Monte-Carlo sweeps at `trials = 10^4…10^6` cheap.

use std::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crp_channel::Execution;
use crp_info::SizeDistribution;
use crp_protocols::{try_run_cd_strategy, try_run_schedule, CdStrategy, NoCdSchedule};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::stats::{TrialAccumulator, TrialStats};
use crate::SimError;

/// Outcome of a single Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Whether contention was resolved within the round budget.
    pub resolved: bool,
    /// Rounds elapsed (equals the budget when unresolved).
    pub rounds: usize,
}

impl From<Execution> for TrialOutcome {
    fn from(execution: Execution) -> Self {
        TrialOutcome {
            resolved: execution.resolved,
            rounds: execution.rounds,
        }
    }
}

/// Configuration of a batch of trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; shard `s` of the batch draws from a `ChaCha8Rng` stream
    /// derived from `(base_seed, s)`.
    pub base_seed: u64,
    /// Number of worker threads (1 = run inline).  The statistics do not
    /// depend on this value, only the wall-clock time does.
    pub threads: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            base_seed: 0xC0FFEE,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

impl RunnerConfig {
    /// Convenience constructor for a given trial count with the default
    /// seed and thread count.
    pub fn with_trials(trials: usize) -> Self {
        Self {
            trials,
            ..Self::default()
        }
    }

    /// Returns a copy with a different base seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Returns a copy pinned to a single thread (useful in tests).
    pub fn single_threaded(mut self) -> Self {
        self.threads = 1;
        self
    }
}

/// How a batch of trials is split into deterministic shards.
///
/// The plan is a function of the trial count alone — never of the thread
/// count — so the same configuration always yields the same shards, the
/// same per-shard RNG streams, and therefore bit-identical statistics no
/// matter how many threads execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    trials: usize,
    shard_size: usize,
}

impl ShardPlan {
    /// Default number of trials per shard: small enough to load-balance
    /// across threads, large enough to amortise accumulator merging.
    pub const DEFAULT_SHARD_SIZE: usize = 256;

    /// Plans `trials` trials with the default shard size.
    pub fn new(trials: usize) -> Self {
        Self::with_shard_size(trials, Self::DEFAULT_SHARD_SIZE)
    }

    /// Plans `trials` trials in shards of at most `shard_size` (clamped to
    /// at least 1).
    pub fn with_shard_size(trials: usize, shard_size: usize) -> Self {
        Self {
            trials,
            shard_size: shard_size.max(1),
        }
    }

    /// Total number of trials planned.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.trials.div_ceil(self.shard_size)
    }

    /// Number of trials in shard `shard` (the last shard may be short).
    pub fn shard_trials(&self, shard: usize) -> usize {
        let start = shard * self.shard_size;
        self.trials.saturating_sub(start).min(self.shard_size)
    }

    /// The deterministic RNG stream of shard `shard`: a `ChaCha8Rng` whose
    /// 256-bit seed encodes `(base_seed, shard)` plus a fixed domain salt,
    /// so distinct shards get statistically independent streams.
    pub fn shard_rng(&self, base_seed: u64, shard: usize) -> ChaCha8Rng {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&base_seed.to_le_bytes());
        seed[8..16].copy_from_slice(&(shard as u64).to_le_bytes());
        seed[16..32].copy_from_slice(b"crp-shard-stream");
        ChaCha8Rng::from_seed(seed)
    }
}

/// Progress of a sharded batch, reported once per completed shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchProgress {
    /// Shards finished so far.
    pub completed_shards: usize,
    /// Total shards in the plan.
    pub total_shards: usize,
    /// Trials finished so far.
    pub completed_trials: usize,
    /// Total trials in the plan.
    pub total_trials: usize,
}

/// A shard-completion callback; see [`run_batch_with_progress`].
pub type ProgressFn<'a> = &'a (dyn Fn(BatchProgress) + Sync);

/// Folds one shard of the plan into a fresh accumulator, stopping at the
/// first failed trial.
fn run_shard<F, E>(
    plan: &ShardPlan,
    base_seed: u64,
    shard: usize,
    trial: &F,
) -> Result<TrialAccumulator, E>
where
    F: Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, E> + Sync,
{
    let mut rng = plan.shard_rng(base_seed, shard);
    let mut accumulator = TrialAccumulator::new();
    for _ in 0..plan.shard_trials(shard) {
        let outcome = trial(&mut rng)?;
        accumulator.record(outcome.resolved, outcome.rounds as u64);
    }
    Ok(accumulator)
}

/// The generic sharded engine under every public entry point.
///
/// Shards are executed by `config.threads` workers pulling from a shared
/// queue, then merged sequentially in shard order, which makes the result
/// independent of scheduling.  On failure the error of the lowest-indexed
/// failing shard (and, within it, the first failing trial) is reported.
fn run_shards<F, E>(
    config: &RunnerConfig,
    trial: F,
    progress: Option<ProgressFn<'_>>,
) -> Result<TrialStats, E>
where
    F: Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, E> + Sync,
    E: Send,
{
    let plan = ShardPlan::new(config.trials);
    let num_shards = plan.num_shards();
    // Both counters advance under one lock so every callback observes a
    // consistent (shards, trials) pair and the last delivered callback
    // always reports 100% (the lock is taken once per completed shard).
    let completed: Mutex<(usize, usize)> = Mutex::new((0, 0));
    let report = |shard: usize| {
        if let Some(callback) = progress {
            let (shards_done, trials_done) = {
                let mut done = completed.lock().expect("no panics while counting progress");
                done.0 += 1;
                done.1 += plan.shard_trials(shard);
                *done
            };
            callback(BatchProgress {
                completed_shards: shards_done,
                total_shards: num_shards,
                completed_trials: trials_done,
                total_trials: plan.trials(),
            });
        }
    };

    let shard_results: Vec<Result<TrialAccumulator, E>> = if config.threads <= 1 || num_shards <= 1
    {
        (0..num_shards)
            .map(|shard| {
                let result = run_shard(&plan, config.base_seed, shard, &trial);
                report(shard);
                result
            })
            .collect()
    } else {
        let slots: Mutex<Vec<Option<Result<TrialAccumulator, E>>>> =
            Mutex::new((0..num_shards).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let workers = config.threads.min(num_shards);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let shard = next.fetch_add(1, Ordering::Relaxed);
                    if shard >= num_shards {
                        break;
                    }
                    let result = run_shard(&plan, config.base_seed, shard, &trial);
                    slots
                        .lock()
                        .expect("no worker panics while holding the lock")[shard] = Some(result);
                    report(shard);
                });
            }
        });
        slots
            .into_inner()
            .expect("no worker panics while holding the lock")
            .into_iter()
            .map(|slot| slot.expect("every shard index was claimed by a worker"))
            .collect()
    };

    // Merge in shard order: deterministic for any thread count, and the
    // lowest-indexed shard error wins.
    let mut merged = TrialAccumulator::new();
    for result in shard_results {
        merged.merge(&result?);
    }
    Ok(merged.finalize())
}

/// Runs `config.trials` independent trials of `trial`, which receives a
/// deterministically seeded RNG, and aggregates the outcomes.
///
/// The trial closure is infallible, and so is this wrapper: it delegates
/// to the same sharded engine as [`run_batch`] instantiated with the
/// [`Infallible`] error type, so there is no panic path to reach — the
/// impossible-error arm is discharged by the type system rather than an
/// `expect`.
pub fn run_trials<F>(config: &RunnerConfig, trial: F) -> TrialStats
where
    F: Fn(&mut ChaCha8Rng) -> TrialOutcome + Sync,
{
    match run_shards::<_, Infallible>(config, |rng| Ok(trial(rng)), None) {
        Ok(stats) => stats,
        Err(never) => match never {},
    }
}

/// Fallible batch runner: like [`run_trials`], but a trial may return a
/// typed error, which aborts the batch.
///
/// This is the amortised execution entry point used by
/// [`crate::Simulation`]: protocols are constructed once by the caller and
/// shared (immutably) across every trial and worker thread.
///
/// # Errors
///
/// Returns the first [`SimError`] any trial produced.  Which trial's error
/// is reported is deterministic for a fixed configuration (the first
/// failing trial of the lowest-indexed failing shard).
pub fn run_batch<F>(config: &RunnerConfig, trial: F) -> Result<TrialStats, SimError>
where
    F: Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, SimError> + Sync,
{
    run_shards(config, trial, None)
}

/// Like [`run_batch`], but invokes `progress` after every completed shard
/// (from whichever worker thread finished it), for long sweeps that want a
/// live progress display.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_with_progress<F>(
    config: &RunnerConfig,
    trial: F,
    progress: ProgressFn<'_>,
) -> Result<TrialStats, SimError>
where
    F: Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, SimError> + Sync,
{
    run_shards(config, trial, Some(progress))
}

/// Measures a uniform no-collision-detection schedule against a true size
/// distribution: each trial samples `k ~ truth` and runs the schedule for
/// at most `max_rounds` rounds.
///
/// Convenience wrapper over [`run_batch`]; new code should prefer the
/// [`crate::Simulation`] builder, which also validates the configuration
/// up front.
pub fn measure_schedule<S>(
    schedule: &S,
    truth: &SizeDistribution,
    max_rounds: usize,
    config: &RunnerConfig,
) -> TrialStats
where
    S: NoCdSchedule + Sync + ?Sized,
{
    run_batch(config, |rng| {
        let k = sample_contending_size(truth, rng);
        try_run_schedule(schedule, k, max_rounds, rng)
            .map(TrialOutcome::from)
            .map_err(SimError::from)
    })
    .expect("schedule measurement over a positive budget cannot fail")
}

/// Measures a uniform collision-detection strategy against a true size
/// distribution.
///
/// Convenience wrapper over [`run_batch`]; new code should prefer the
/// [`crate::Simulation`] builder.
pub fn measure_cd_strategy<S>(
    strategy: &S,
    truth: &SizeDistribution,
    max_rounds: usize,
    config: &RunnerConfig,
) -> TrialStats
where
    S: CdStrategy + Sync + ?Sized,
{
    run_batch(config, |rng| {
        let k = sample_contending_size(truth, rng);
        try_run_cd_strategy(strategy, k, max_rounds, rng)
            .map(TrialOutcome::from)
            .map_err(SimError::from)
    })
    .expect("strategy measurement over a positive budget cannot fail")
}

/// Samples a network size from `truth`, re-drawing (or clamping) so the
/// result is at least 2 — the paper assumes at least two participants,
/// since size 1 has no contention to resolve.
pub fn sample_contending_size(truth: &SizeDistribution, rng: &mut ChaCha8Rng) -> usize {
    for _ in 0..16 {
        let k = truth.sample(rng);
        if k >= 2 {
            return k;
        }
    }
    2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_protocols::{Decay, FixedProbability, Willard};
    use rand::Rng;

    #[test]
    fn trial_results_are_independent_of_thread_count() {
        let truth = SizeDistribution::bimodal(1024, 30, 500, 0.8).unwrap();
        let decay = Decay::new(1024).unwrap();
        let serial = measure_schedule(
            &decay,
            &truth,
            10_000,
            &RunnerConfig::with_trials(200).seeded(7).single_threaded(),
        );
        let mut parallel_config = RunnerConfig::with_trials(200).seeded(7);
        parallel_config.threads = 4;
        let parallel = measure_schedule(&decay, &truth, 10_000, &parallel_config);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_stats_are_bit_identical_for_threads_1_2_and_8() {
        // The acceptance criterion of the sharded driver: same seed, same
        // trial count, any thread count -> the SAME TrialStats, field for
        // field, including every floating-point bit (PartialEq on f64).
        let truth = SizeDistribution::bimodal(2048, 40, 900, 0.8).unwrap();
        let decay = Decay::new(2048).unwrap();
        // 1000 trials spans multiple shards (shard size 256), so the merge
        // path is genuinely exercised.
        let run = |threads: usize| {
            let mut config = RunnerConfig::with_trials(1000).seeded(99);
            config.threads = threads;
            measure_schedule(&decay, &truth, 50_000, &config)
        };
        let single = run(1);
        let double = run(2);
        let eight = run(8);
        assert_eq!(single, double);
        assert_eq!(single, eight);
        assert_eq!(single.trials, 1000);
    }

    #[test]
    fn shard_plan_is_a_function_of_the_trial_count_only() {
        let plan = ShardPlan::new(1000);
        assert_eq!(plan.trials(), 1000);
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.shard_trials(0), 256);
        assert_eq!(plan.shard_trials(3), 1000 - 3 * 256);
        assert_eq!(plan.shard_trials(4), 0);
        assert_eq!(ShardPlan::new(0).num_shards(), 0);
        assert_eq!(ShardPlan::new(1).num_shards(), 1);
        let custom = ShardPlan::with_shard_size(10, 0);
        assert_eq!(custom.num_shards(), 10, "shard size clamps to 1");
    }

    #[test]
    fn shard_rng_streams_differ_per_shard_and_seed() {
        use rand::RngCore;
        let plan = ShardPlan::new(512);
        let mut a = plan.shard_rng(7, 0);
        let mut b = plan.shard_rng(7, 1);
        let mut c = plan.shard_rng(8, 0);
        let mut a2 = plan.shard_rng(7, 0);
        let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(first, (0..4).map(|_| a2.next_u64()).collect::<Vec<_>>());
        assert_ne!(first, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(first, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn progress_callback_reports_every_shard() {
        use std::sync::atomic::AtomicUsize;
        let config = RunnerConfig::with_trials(1000).seeded(3).single_threaded();
        let calls = AtomicUsize::new(0);
        let last_trials = AtomicUsize::new(0);
        let stats = run_batch_with_progress(
            &config,
            |_| {
                Ok(TrialOutcome {
                    resolved: true,
                    rounds: 1,
                })
            },
            &|progress: BatchProgress| {
                calls.fetch_add(1, Ordering::Relaxed);
                last_trials.store(progress.completed_trials, Ordering::Relaxed);
                assert_eq!(progress.total_shards, ShardPlan::new(1000).num_shards());
                assert_eq!(progress.total_trials, 1000);
            },
        )
        .unwrap();
        assert_eq!(stats.trials, 1000);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            ShardPlan::new(1000).num_shards()
        );
        assert_eq!(last_trials.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn correct_estimate_beats_decay() {
        let n = 4096;
        let k = 300;
        let truth = SizeDistribution::point_mass(n, k).unwrap();
        let config = RunnerConfig::with_trials(300).seeded(11);
        let fixed = measure_schedule(&FixedProbability::new(k).unwrap(), &truth, 10_000, &config);
        let decay = measure_schedule(&Decay::new(n).unwrap(), &truth, 10_000, &config);
        assert!(fixed.success_rate() > 0.99);
        assert!(decay.success_rate() > 0.99);
        assert!(fixed.mean_rounds_overall() < decay.mean_rounds_overall());
    }

    #[test]
    fn cd_strategy_measurement_reports_constant_probability_success() {
        let n = 1 << 14;
        let truth = SizeDistribution::uniform_ranges(n).unwrap();
        let willard = Willard::new(n).unwrap();
        let config = RunnerConfig::with_trials(400).seeded(3);
        let stats = measure_cd_strategy(&willard, &truth, willard.worst_case_rounds(), &config);
        assert!(stats.success_rate() > 0.3, "rate {}", stats.success_rate());
        assert!(stats.mean_rounds_when_resolved() <= willard.worst_case_rounds() as f64);
    }

    #[test]
    fn run_batch_surfaces_trial_errors() {
        let config = RunnerConfig::with_trials(10).seeded(0).single_threaded();
        let result = run_batch(&config, |_| {
            Err(SimError::InvalidParameter {
                what: "forced failure".into(),
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn run_batch_matches_run_trials_for_infallible_closures() {
        let config = RunnerConfig::with_trials(50).seeded(13).single_threaded();
        let via_trials = run_trials(&config, |rng| TrialOutcome {
            resolved: true,
            rounds: 1 + (rng.gen::<u64>() % 5) as usize,
        });
        let via_batch = run_batch(&config, |rng| {
            Ok(TrialOutcome {
                resolved: true,
                rounds: 1 + (rng.gen::<u64>() % 5) as usize,
            })
        })
        .unwrap();
        assert_eq!(via_trials, via_batch);
    }

    #[test]
    fn sample_contending_size_never_returns_less_than_two() {
        let truth = SizeDistribution::uniform_sizes(64).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(sample_contending_size(&truth, &mut rng) >= 2);
        }
    }

    #[test]
    fn runner_config_builders() {
        let config = RunnerConfig::with_trials(10).seeded(5).single_threaded();
        assert_eq!(config.trials, 10);
        assert_eq!(config.base_seed, 5);
        assert_eq!(config.threads, 1);
    }
}
