//! The Monte-Carlo trial runner.
//!
//! Trials are embarrassingly parallel; the runner shards them across
//! threads with a *per-trial* deterministic seed (`base_seed` xor trial
//! index), so the result set is identical regardless of how many threads
//! executed it.

use std::sync::atomic::{AtomicUsize, Ordering};

use crp_channel::Execution;
use crp_info::SizeDistribution;
use crp_protocols::{run_cd_strategy, run_schedule, CdStrategy, NoCdSchedule};
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::stats::{SummaryStats, TrialStats};

/// Outcome of a single Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Whether contention was resolved within the round budget.
    pub resolved: bool,
    /// Rounds elapsed (equals the budget when unresolved).
    pub rounds: usize,
}

impl From<Execution> for TrialOutcome {
    fn from(execution: Execution) -> Self {
        TrialOutcome {
            resolved: execution.resolved,
            rounds: execution.rounds,
        }
    }
}

/// Configuration of a batch of trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `i` uses seed `base_seed ^ i`.
    pub base_seed: u64,
    /// Number of worker threads (1 = run inline).
    pub threads: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            base_seed: 0xC0FFEE,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

impl RunnerConfig {
    /// Convenience constructor for a given trial count with the default
    /// seed and thread count.
    pub fn with_trials(trials: usize) -> Self {
        Self {
            trials,
            ..Self::default()
        }
    }

    /// Returns a copy with a different base seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Returns a copy pinned to a single thread (useful in tests).
    pub fn single_threaded(mut self) -> Self {
        self.threads = 1;
        self
    }
}

/// Runs `config.trials` independent trials of `trial`, which receives a
/// deterministically seeded RNG, and aggregates the outcomes.
///
/// The aggregation is order-insensitive, so the statistics are identical
/// regardless of thread count.
pub fn run_trials<F>(config: &RunnerConfig, trial: F) -> TrialStats
where
    F: Fn(&mut ChaCha8Rng) -> TrialOutcome + Sync,
{
    let outcomes: Vec<TrialOutcome> = if config.threads <= 1 || config.trials < 64 {
        (0..config.trials)
            .map(|i| {
                let mut rng = ChaCha8Rng::seed_from_u64(config.base_seed ^ i as u64);
                trial(&mut rng)
            })
            .collect()
    } else {
        let results = Mutex::new(vec![
            TrialOutcome {
                resolved: false,
                rounds: 0
            };
            config.trials
        ]);
        let next = AtomicUsize::new(0);
        let workers = config.threads.min(config.trials);
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= config.trials {
                        break;
                    }
                    let mut rng = ChaCha8Rng::seed_from_u64(config.base_seed ^ index as u64);
                    let outcome = trial(&mut rng);
                    results.lock()[index] = outcome;
                });
            }
        })
        .expect("trial worker threads never panic");
        results.into_inner()
    };

    let resolved: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.resolved)
        .map(|o| o.rounds as f64)
        .collect();
    let all: Vec<f64> = outcomes.iter().map(|o| o.rounds as f64).collect();
    TrialStats {
        trials: outcomes.len(),
        resolved: resolved.len(),
        rounds_when_resolved: SummaryStats::from_samples(&resolved),
        rounds_overall: SummaryStats::from_samples(&all),
    }
}

/// Measures a uniform no-collision-detection schedule against a true size
/// distribution: each trial samples `k ~ truth` and runs the schedule for
/// at most `max_rounds` rounds.
pub fn measure_schedule<S>(
    schedule: &S,
    truth: &SizeDistribution,
    max_rounds: usize,
    config: &RunnerConfig,
) -> TrialStats
where
    S: NoCdSchedule + Sync + ?Sized,
{
    run_trials(config, |rng| {
        let k = sample_contending_size(truth, rng);
        run_schedule(schedule, k, max_rounds, rng).into()
    })
}

/// Measures a uniform collision-detection strategy against a true size
/// distribution.
pub fn measure_cd_strategy<S>(
    strategy: &S,
    truth: &SizeDistribution,
    max_rounds: usize,
    config: &RunnerConfig,
) -> TrialStats
where
    S: CdStrategy + Sync + ?Sized,
{
    run_trials(config, |rng| {
        let k = sample_contending_size(truth, rng);
        run_cd_strategy(strategy, k, max_rounds, rng).into()
    })
}

/// Samples a network size from `truth`, re-drawing (or clamping) so the
/// result is at least 2 — the paper assumes at least two participants,
/// since size 1 has no contention to resolve.
pub fn sample_contending_size(truth: &SizeDistribution, rng: &mut ChaCha8Rng) -> usize {
    for _ in 0..16 {
        let k = truth.sample(rng);
        if k >= 2 {
            return k;
        }
    }
    2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_protocols::{Decay, FixedProbability, Willard};

    #[test]
    fn trial_results_are_independent_of_thread_count() {
        let truth = SizeDistribution::bimodal(1024, 30, 500, 0.8).unwrap();
        let decay = Decay::new(1024).unwrap();
        let serial = measure_schedule(
            &decay,
            &truth,
            10_000,
            &RunnerConfig::with_trials(200).seeded(7).single_threaded(),
        );
        let mut parallel_config = RunnerConfig::with_trials(200).seeded(7);
        parallel_config.threads = 4;
        let parallel = measure_schedule(&decay, &truth, 10_000, &parallel_config);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn correct_estimate_beats_decay() {
        let n = 4096;
        let k = 300;
        let truth = SizeDistribution::point_mass(n, k).unwrap();
        let config = RunnerConfig::with_trials(300).seeded(11);
        let fixed = measure_schedule(
            &FixedProbability::new(k).unwrap(),
            &truth,
            10_000,
            &config,
        );
        let decay = measure_schedule(&Decay::new(n).unwrap(), &truth, 10_000, &config);
        assert!(fixed.success_rate() > 0.99);
        assert!(decay.success_rate() > 0.99);
        assert!(fixed.mean_rounds_overall() < decay.mean_rounds_overall());
    }

    #[test]
    fn cd_strategy_measurement_reports_constant_probability_success() {
        let n = 1 << 14;
        let truth = SizeDistribution::uniform_ranges(n).unwrap();
        let willard = Willard::new(n).unwrap();
        let config = RunnerConfig::with_trials(400).seeded(3);
        let stats = measure_cd_strategy(&willard, &truth, willard.worst_case_rounds(), &config);
        assert!(stats.success_rate() > 0.3, "rate {}", stats.success_rate());
        assert!(stats.mean_rounds_when_resolved() <= willard.worst_case_rounds() as f64);
    }

    #[test]
    fn sample_contending_size_never_returns_less_than_two() {
        let truth = SizeDistribution::uniform_sizes(64).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(sample_contending_size(&truth, &mut rng) >= 2);
        }
    }

    #[test]
    fn runner_config_builders() {
        let config = RunnerConfig::with_trials(10).seeded(5).single_threaded();
        assert_eq!(config.trials, 10);
        assert_eq!(config.base_seed, 5);
        assert_eq!(config.threads, 1);
    }
}
