//! The declarative sweep engine: a (protocol × scenario × trial-budget)
//! experiment matrix compiled to [`Simulation`] cells and executed through
//! the sharded runner.
//!
//! The paper's headline results are Monte-Carlo sweeps over grids of
//! protocols and workloads.  Instead of every experiment hand-rolling its
//! own nested loops, a [`SweepMatrix`] *declares* the grid:
//!
//! * a **scenario axis** — named ground-truth workloads (optionally with
//!   drifted advice), usually from [`crp_predict::ScenarioLibrary`];
//! * a **protocol axis** — [`SweepProtocol`] columns, each a labelled
//!   recipe turning a scenario into a [`crp_protocols::ProtocolSpec`]
//!   (plus optional per-column round-budget, population and trial-count
//!   overrides);
//! * a **trial-budget axis** — one or more Monte-Carlo trial counts.
//!
//! [`SweepMatrix::compile`] flattens the axes into a deterministic list of
//! fully validated [`Simulation`] cells; [`SweepMatrix::run`] executes them
//! and collects a [`SweepResults`] grid of per-cell [`TrialStats`] with
//! markdown and CSV export.  Each cell derives its own seed from the base
//! seed and its grid position, so results are reproducible and independent
//! of execution order.
//!
//! Execution is a *work-stealing sweep scheduler*: every cell of the grid
//! is decomposed into `(cell, shard)` jobs feeding one global queue on the
//! configured [`crate::ShardBackend`], so grids of many small cells keep
//! every worker busy instead of draining cell by cell.  Per-cell
//! accumulators are merged in shard order, which keeps each cell's
//! [`TrialStats`] bit-identical to running that cell alone — on any
//! backend, with any worker count.
//!
//! ```
//! use crp_predict::ScenarioLibrary;
//! use crp_protocols::ProtocolSpec;
//! use crp_sim::{SweepMatrix, SweepProtocol};
//!
//! # fn main() -> Result<(), crp_sim::SimError> {
//! let library = ScenarioLibrary::new(1 << 10)?;
//! let results = SweepMatrix::new()
//!     .scenario(library.bimodal())
//!     .scenario(library.bursty())
//!     .protocol(
//!         SweepProtocol::from_scenario("decay", |s| {
//!             ProtocolSpec::new("decay").universe(s.distribution().max_size())
//!         })
//!         .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
//!     )
//!     .trials(200)
//!     .seed(7)
//!     .run()?;
//! assert_eq!(results.cells().len(), 2);
//! assert!(results.get("bimodal", "decay").unwrap().stats.success_rate() > 0.99);
//! # Ok(())
//! # }
//! ```

use std::sync::Mutex;

use crp_info::SizeDistribution;
use crp_predict::Scenario;
use crp_protocols::ProtocolSpec;

use crate::report::{fmt_f64, Table};
use crate::runner::backend::{backend_for, execute_and_merge};
use crate::runner::{KernelChoice, RunnerConfig, ShardBackend, ShardJob, ShardPlan};
use crate::simulation::Simulation;
use crate::stats::TrialStats;
use crate::SimError;

/// How a sweep cell chooses its per-trial participant population.
#[derive(Debug, Clone)]
pub enum SweepPopulation {
    /// Sample the participant count from the scenario's ground truth each
    /// trial (the default).
    ScenarioTruth,
    /// A fixed participant count for every trial.
    Fixed(usize),
    /// An explicit participant-id placement (for the deterministic §3
    /// protocols under adversarial placements).
    Placed(Vec<usize>),
    /// Sample the participant count from this distribution instead of the
    /// scenario truth.
    Distribution(SizeDistribution),
}

type SpecFn = Box<dyn Fn(&Scenario) -> ProtocolSpec + Send + Sync>;
type RoundsFn = Box<dyn Fn(&Scenario) -> Option<usize> + Send + Sync>;
type PopulationFn = Box<dyn Fn(&Scenario) -> SweepPopulation + Send + Sync>;

/// One labelled column of the protocol axis: a recipe producing a
/// [`ProtocolSpec`] (and optional execution overrides) for each scenario.
pub struct SweepProtocol {
    label: String,
    spec: SpecFn,
    max_rounds: Option<RoundsFn>,
    population: Option<PopulationFn>,
    trials: Option<usize>,
}

impl SweepProtocol {
    /// A column that uses the same literal spec for every scenario.
    pub fn new(label: impl Into<String>, spec: ProtocolSpec) -> Self {
        Self {
            label: label.into(),
            spec: Box::new(move |_| spec.clone()),
            max_rounds: None,
            population: None,
            trials: None,
        }
    }

    /// A column whose spec is derived from each scenario (e.g. predictions
    /// built from the scenario's advice distribution).
    pub fn from_scenario(
        label: impl Into<String>,
        spec: impl Fn(&Scenario) -> ProtocolSpec + Send + Sync + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            spec: Box::new(spec),
            max_rounds: None,
            population: None,
            trials: None,
        }
    }

    /// Caps every trial of this column at `rounds` rounds (default: the
    /// protocol's own horizon).
    pub fn max_rounds(self, rounds: usize) -> Self {
        self.max_rounds_with(move |_| Some(rounds))
    }

    /// Derives the per-trial round budget from the scenario; returning
    /// `None` falls back to the protocol's own horizon.
    pub fn max_rounds_with(
        mut self,
        rounds: impl Fn(&Scenario) -> Option<usize> + Send + Sync + 'static,
    ) -> Self {
        self.max_rounds = Some(Box::new(rounds));
        self
    }

    /// Overrides the population for this column (default:
    /// [`SweepPopulation::ScenarioTruth`]).
    pub fn population(self, population: SweepPopulation) -> Self {
        self.population_with(move |_| population.clone())
    }

    /// Derives the population override from the scenario.
    pub fn population_with(
        mut self,
        population: impl Fn(&Scenario) -> SweepPopulation + Send + Sync + 'static,
    ) -> Self {
        self.population = Some(Box::new(population));
        self
    }

    /// Overrides the trial budget for this column (e.g. a single trial for
    /// deterministic protocols).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = Some(trials);
        self
    }

    /// The column label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// A compiled, fully validated sweep cell: one [`Simulation`] plus the grid
/// coordinates it came from.
pub struct SweepCell {
    /// Scenario-axis label.
    pub scenario: String,
    /// Protocol-axis label.
    pub protocol: String,
    /// Monte-Carlo trial budget of this cell.
    pub trials: usize,
    /// The cell's derived seed.
    pub seed: u64,
    /// The validated simulation ready to run.
    pub simulation: Simulation,
    /// Condensed entropy `H(c(X))` of the scenario truth.
    pub condensed_entropy: f64,
    /// Divergence `D_KL(c(X) ‖ c(Y))` between scenario truth and advice.
    pub advice_divergence: f64,
}

/// Executed results of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCellResult {
    /// Scenario-axis label.
    pub scenario: String,
    /// Protocol-axis label.
    pub protocol: String,
    /// Monte-Carlo trial budget of this cell.
    pub trials: usize,
    /// Condensed entropy `H(c(X))` of the scenario truth.
    pub condensed_entropy: f64,
    /// Divergence `D_KL(c(X) ‖ c(Y))` between scenario truth and advice.
    pub advice_divergence: f64,
    /// Aggregated trial statistics.
    pub stats: TrialStats,
}

/// Progress of a sweep, reported once per completed `(cell, shard)` job —
/// from whichever worker finished it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepProgress {
    /// Cells whose shards have all finished so far.
    pub completed_cells: usize,
    /// Total cells in the grid.
    pub total_cells: usize,
    /// Shard jobs finished so far, across all cells.
    pub completed_shards: usize,
    /// Total shard jobs in the grid.
    pub total_shards: usize,
    /// Scenario label of the cell the just-finished shard belongs to.
    pub scenario: String,
    /// Protocol label of the cell the just-finished shard belongs to.
    pub protocol: String,
    /// True when the just-finished shard completed its cell.
    pub cell_completed: bool,
}

/// The declarative experiment matrix; see the [module docs](self).
#[derive(Default)]
pub struct SweepMatrix {
    protocols: Vec<SweepProtocol>,
    scenarios: Vec<Scenario>,
    trial_axis: Vec<usize>,
    config: RunnerConfig,
}

/// SplitMix64 finaliser used to derive independent per-cell seeds.
fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ (index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SweepMatrix {
    /// An empty matrix with the default runner configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one protocol column.
    pub fn protocol(mut self, protocol: SweepProtocol) -> Self {
        self.protocols.push(protocol);
        self
    }

    /// Appends several protocol columns.
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = SweepProtocol>) -> Self {
        self.protocols.extend(protocols);
        self
    }

    /// Appends one scenario row.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Appends several scenario rows.
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        self.scenarios.extend(scenarios);
        self
    }

    /// Sets a single trial budget for every cell.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trial_axis = vec![trials];
        self
    }

    /// Sweeps several trial budgets per (scenario, protocol) pair.
    pub fn trial_axis(mut self, trials: impl IntoIterator<Item = usize>) -> Self {
        self.trial_axis = trials.into_iter().collect();
        self
    }

    /// Sets the base seed cells derive their seeds from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.base_seed = seed;
        self
    }

    /// Selects the trial-kernel path every cell executes with.  Like the
    /// backend choice, this affects wall-clock time only — statistics
    /// are bit-identical between the scalar executor and the batched
    /// kernels.
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Replaces the whole runner configuration (trials, seed, threads).
    pub fn runner(mut self, config: RunnerConfig) -> Self {
        self.config = config;
        self
    }

    /// The scenario axis, in declaration order.
    pub fn scenario_axis(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The protocol-axis labels, in declaration order.
    pub fn protocol_labels(&self) -> Vec<&str> {
        self.protocols.iter().map(|p| p.label()).collect()
    }

    /// Number of cells the grid flattens to.
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.protocols.len() * self.effective_trial_axis().len()
    }

    /// True if the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn effective_trial_axis(&self) -> Vec<usize> {
        if self.trial_axis.is_empty() {
            vec![self.config.trials]
        } else {
            self.trial_axis.clone()
        }
    }

    /// Compiles the axes into a flat, deterministically ordered list of
    /// validated simulation cells (scenario-major, then protocol, then
    /// trial budget).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] produced by a cell that fails
    /// validation (unknown protocol name, missing parameter, mode
    /// mismatch, zero budgets).
    pub fn compile(&self) -> Result<Vec<SweepCell>, SimError> {
        let trial_axis = self.effective_trial_axis();
        let mut cells = Vec::with_capacity(self.len());
        let mut index = 0u64;
        for scenario in &self.scenarios {
            let entropy = scenario.condensed_entropy();
            let divergence = scenario.advice_divergence();
            for protocol in &self.protocols {
                for &axis_trials in &trial_axis {
                    let trials = protocol.trials.unwrap_or(axis_trials);
                    let seed = mix_seed(self.config.base_seed, index);
                    index += 1;

                    let mut builder = Simulation::builder()
                        .protocol((protocol.spec)(scenario))
                        .runner(RunnerConfig {
                            trials,
                            base_seed: seed,
                            ..self.config.clone()
                        });
                    let population = protocol
                        .population
                        .as_ref()
                        .map(|f| f(scenario))
                        .unwrap_or(SweepPopulation::ScenarioTruth);
                    builder = match population {
                        SweepPopulation::ScenarioTruth => {
                            builder.truth(scenario.distribution().clone())
                        }
                        SweepPopulation::Fixed(k) => builder.participants(k),
                        SweepPopulation::Placed(ids) => builder.participant_ids(ids),
                        SweepPopulation::Distribution(truth) => builder.truth(truth),
                    };
                    if let Some(rounds) = protocol.max_rounds.as_ref().and_then(|f| f(scenario)) {
                        builder = builder.max_rounds(rounds);
                    }

                    cells.push(SweepCell {
                        scenario: scenario.name().to_string(),
                        protocol: protocol.label.clone(),
                        trials,
                        seed,
                        simulation: builder.build()?,
                        condensed_entropy: entropy,
                        advice_divergence: divergence,
                    });
                }
            }
        }
        Ok(cells)
    }

    /// Compiles and executes every cell through the work-stealing
    /// scheduler on the configured backend.
    ///
    /// # Errors
    ///
    /// Propagates the first compilation or execution [`SimError`] (in
    /// deterministic grid order: the lowest failing `(cell, shard)` job).
    pub fn run(&self) -> Result<SweepResults, SimError> {
        self.run_with_progress(|_| {})
    }

    /// Like [`SweepMatrix::run`], but invokes `progress` after each
    /// completed `(cell, shard)` job — possibly from a worker thread,
    /// hence the `Sync` bound.
    ///
    /// # Errors
    ///
    /// As [`SweepMatrix::run`].
    pub fn run_with_progress(
        &self,
        progress: impl Fn(SweepProgress) + Sync,
    ) -> Result<SweepResults, SimError> {
        self.run_on_with_progress(backend_for(&self.config)?.as_ref(), progress)
    }

    /// Runs the grid on an explicit [`ShardBackend`] (ignoring the
    /// configured [`crate::BackendChoice`]).
    ///
    /// # Errors
    ///
    /// As [`SweepMatrix::run`].
    pub fn run_on(&self, backend: &dyn ShardBackend) -> Result<SweepResults, SimError> {
        self.run_on_with_progress(backend, |_| {})
    }

    /// The work-stealing sweep scheduler: decomposes every cell of the
    /// grid into `(cell, shard)` jobs feeding one global queue on
    /// `backend`, merges each cell's accumulators in shard order, and
    /// reports per-shard and per-cell completion through `progress`.
    ///
    /// # Errors
    ///
    /// As [`SweepMatrix::run`].
    pub fn run_on_with_progress(
        &self,
        backend: &dyn ShardBackend,
        progress: impl Fn(SweepProgress) + Sync,
    ) -> Result<SweepResults, SimError> {
        let cells = self.compile()?;
        let total_cells = cells.len();

        // Per-cell execution state borrowed by the job list: shard plans,
        // trial closures and (for out-of-process backends) shard specs.
        let plans: Vec<ShardPlan> = cells
            .iter()
            .map(|cell| ShardPlan::new(cell.simulation.config().trials))
            .collect();
        let specs: Vec<_> = cells.iter().map(|c| c.simulation.shard_spec()).collect();
        let kernels: Vec<_> = cells.iter().map(|c| c.simulation.cell_kernel()).collect();
        for (index, (cell, kernel)) in cells.iter().zip(&kernels).enumerate() {
            crp_obs::global().inc(if kernel.is_some() {
                "sim.kernel.batched"
            } else {
                "sim.kernel.scalar"
            });
            if crp_obs::trace_enabled() {
                crp_obs::emit(
                    &crp_obs::TraceEvent::new("kernel.select")
                        .u64("cell", index as u64)
                        .str("protocol", &cell.protocol)
                        .str("kernel", kernel.as_ref().map_or("scalar", |k| k.name())),
                );
            }
        }
        let trials: Vec<_> = cells.iter().map(|c| c.simulation.trial_fn()).collect();

        let mut jobs: Vec<ShardJob<'_>> = Vec::new();
        for (index, cell) in cells.iter().enumerate() {
            for shard in 0..plans[index].num_shards() {
                jobs.push(ShardJob {
                    cell: index,
                    shard,
                    plan: plans[index],
                    base_seed: cell.simulation.config().base_seed,
                    trial: &trials[index],
                    spec: specs[index].as_ref(),
                    kernel: kernels[index].as_ref(),
                });
            }
        }
        let total_shards = jobs.len();

        // Progress bookkeeping under one lock: remaining shards per cell
        // plus the global counters, so every callback observes a
        // consistent snapshot and cell completion fires exactly once.
        let remaining: Vec<usize> = plans.iter().map(ShardPlan::num_shards).collect();
        let state: Mutex<(Vec<usize>, usize, usize)> = Mutex::new((remaining, 0, 0));
        let jobs_ref = &jobs;
        let cells_ref = &cells;
        let on_done = move |job_index: usize| {
            let job = &jobs_ref[job_index];
            let cell = &cells_ref[job.cell];
            // The callback runs while the lock is held so deliveries are
            // serialised and the counters observers see are monotonic.
            let mut state = state.lock().expect("no panics while counting progress");
            state.0[job.cell] -= 1;
            let cell_completed = state.0[job.cell] == 0;
            state.1 += 1;
            if cell_completed {
                state.2 += 1;
                crp_obs::global().inc("sim.sweep.cell");
                if crp_obs::trace_enabled() {
                    crp_obs::emit(
                        &crp_obs::TraceEvent::new("sweep.cell")
                            .u64("cell", job.cell as u64)
                            .str("scenario", &cell.scenario)
                            .str("protocol", &cell.protocol),
                    );
                }
            }
            progress(SweepProgress {
                completed_cells: state.2,
                total_cells,
                completed_shards: state.1,
                total_shards,
                scenario: cell.scenario.clone(),
                protocol: cell.protocol.clone(),
                cell_completed,
            });
        };

        let stats = execute_and_merge(backend, &jobs, cells.len(), &on_done)?;
        // End the borrows of `cells` (job list, per-cell closures, specs)
        // before moving its entries into the results.
        drop(on_done);
        drop(jobs);
        drop(trials);
        drop(kernels);
        drop(specs);

        let results = cells
            .into_iter()
            .zip(stats)
            .map(|(cell, stats)| SweepCellResult {
                scenario: cell.scenario,
                protocol: cell.protocol,
                trials: cell.trials,
                condensed_entropy: cell.condensed_entropy,
                advice_divergence: cell.advice_divergence,
                stats,
            })
            .collect();
        Ok(SweepResults { cells: results })
    }
}

/// The executed grid: one [`SweepCellResult`] per cell, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    cells: Vec<SweepCellResult>,
}

impl SweepResults {
    /// Assembles a results grid from already-computed cells — the
    /// sweep-service client path, where cells arrive as cached or
    /// remotely merged accumulators instead of local executions.
    pub fn from_cells(cells: Vec<SweepCellResult>) -> Self {
        Self { cells }
    }

    /// Every cell, in grid order (scenario-major).
    pub fn cells(&self) -> &[SweepCellResult] {
        &self.cells
    }

    /// The first cell at `(scenario, protocol)`, if any.
    pub fn get(&self, scenario: &str, protocol: &str) -> Option<&SweepCellResult> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.protocol == protocol)
    }

    /// Renders the grid in long form: one row per cell.
    pub fn to_table(&self, title: impl Into<String>) -> Table {
        let mut table = Table::new(
            title,
            &[
                "scenario",
                "protocol",
                "trials",
                "H(c(X))",
                "D_KL(c(X)||c(Y))",
                "success",
                "rounds (resolved)",
                "rounds (overall)",
                "p90 (overall)",
            ],
        );
        for cell in &self.cells {
            let p90 = cell
                .stats
                .rounds_overall
                .as_ref()
                .map(|s| s.p90)
                .unwrap_or(f64::NAN);
            table.push_row(vec![
                cell.scenario.clone(),
                cell.protocol.clone(),
                cell.trials.to_string(),
                fmt_f64(cell.condensed_entropy),
                fmt_f64(cell.advice_divergence),
                fmt_f64(cell.stats.success_rate()),
                fmt_f64(cell.stats.mean_rounds_when_resolved()),
                fmt_f64(cell.stats.mean_rounds_overall()),
                fmt_f64(p90),
            ]);
        }
        table
    }

    /// Renders the grid as markdown.
    pub fn to_markdown(&self, title: impl Into<String>) -> String {
        self.to_table(title).to_markdown()
    }

    /// Renders the grid as CSV.
    pub fn to_csv(&self) -> String {
        self.to_table("sweep").to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_predict::ScenarioLibrary;

    fn decay_column() -> SweepProtocol {
        SweepProtocol::from_scenario("decay", |s| {
            ProtocolSpec::new("decay").universe(s.distribution().max_size())
        })
        .max_rounds_with(|s| Some(64 * s.distribution().max_size()))
    }

    #[test]
    fn matrix_compiles_to_the_full_cross_product() {
        let library = ScenarioLibrary::new(256).unwrap();
        let matrix = SweepMatrix::new()
            .scenarios([library.bimodal(), library.geometric()])
            .protocol(decay_column())
            .protocol(SweepProtocol::from_scenario("willard", |s| {
                ProtocolSpec::new("willard").universe(s.distribution().max_size())
            }))
            .trial_axis([50, 100])
            .seed(1);
        assert_eq!(matrix.len(), 2 * 2 * 2);
        let cells = matrix.compile().unwrap();
        assert_eq!(cells.len(), 8);
        // Scenario-major, then protocol, then trials.
        assert_eq!(cells[0].scenario, "bimodal");
        assert_eq!(cells[0].protocol, "decay");
        assert_eq!(cells[0].trials, 50);
        assert_eq!(cells[1].trials, 100);
        assert_eq!(cells[2].protocol, "willard");
        assert_eq!(cells[4].scenario, "geometric");
        // Cell seeds are pairwise distinct.
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn matrix_runs_and_results_are_addressable() {
        let library = ScenarioLibrary::new(256).unwrap();
        let results = SweepMatrix::new()
            .scenario(library.bimodal())
            .scenario(library.bursty())
            .protocol(decay_column())
            .trials(150)
            .seed(5)
            .run()
            .unwrap();
        assert_eq!(results.cells().len(), 2);
        for cell in results.cells() {
            assert_eq!(cell.stats.trials, 150);
            assert!(
                cell.stats.success_rate() > 0.99,
                "{}/{}",
                cell.scenario,
                cell.protocol
            );
        }
        assert!(results.get("bursty", "decay").is_some());
        assert!(results.get("bursty", "willard").is_none());
        let md = results.to_markdown("Demo sweep");
        assert!(md.contains("Demo sweep"));
        assert!(md.contains("bursty"));
        let csv = results.to_csv();
        assert!(csv.starts_with("scenario,protocol,trials"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn matrix_reruns_are_deterministic() {
        let library = ScenarioLibrary::new(256).unwrap();
        let build = || {
            SweepMatrix::new()
                .scenario(library.geometric())
                .protocol(decay_column())
                .trials(100)
                .seed(9)
        };
        let a = build().run().unwrap();
        let b = build().run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn per_column_overrides_apply() {
        let library = ScenarioLibrary::new(256).unwrap();
        let cells = SweepMatrix::new()
            .scenario(library.bimodal())
            .protocol(
                SweepProtocol::from_scenario("det", |s| {
                    ProtocolSpec::new("det-advice-cd")
                        .universe(s.distribution().max_size())
                        .advice_bits(2)
                })
                .population(SweepPopulation::Placed(vec![10, 70, 200]))
                .trials(1),
            )
            .trials(500)
            .compile()
            .unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].trials, 1, "column override beats the axis budget");
    }

    #[test]
    fn compile_surfaces_unknown_protocols() {
        let library = ScenarioLibrary::new(256).unwrap();
        let err = SweepMatrix::new()
            .scenario(library.bimodal())
            .protocol(SweepProtocol::new(
                "nope",
                ProtocolSpec::new("no-such-protocol").universe(256),
            ))
            .trials(10)
            .compile()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SimError::Substrate(_)));
    }

    #[test]
    fn drifted_advice_is_reported_per_cell() {
        let library = ScenarioLibrary::new(512).unwrap();
        let results = SweepMatrix::new()
            .scenario(library.adversarial_drift())
            .protocol(decay_column())
            .trials(50)
            .run()
            .unwrap();
        let cell = results.get("adversarial-drift", "decay").unwrap();
        assert!(cell.advice_divergence > 0.0);
    }

    #[test]
    fn progress_reports_shard_and_cell_completion() {
        use std::sync::Mutex;
        let library = ScenarioLibrary::new(256).unwrap();
        // 300 trials per cell = 2 shards per cell, 2 cells = 4 shard jobs.
        let seen: Mutex<Vec<SweepProgress>> = Mutex::new(Vec::new());
        SweepMatrix::new()
            .scenarios([library.bimodal(), library.geometric()])
            .protocol(decay_column())
            .trials(300)
            .run_with_progress(|p| {
                seen.lock().unwrap().push(p);
            })
            .unwrap();
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 4, "one callback per (cell, shard) job");
        assert!(seen.iter().all(|p| p.total_cells == 2));
        assert!(seen.iter().all(|p| p.total_shards == 4));
        assert_eq!(
            seen.iter().filter(|p| p.cell_completed).count(),
            2,
            "each cell completes exactly once"
        );
        let last = seen.last().unwrap();
        assert_eq!(last.completed_shards, 4);
        assert_eq!(last.completed_cells, 2);
        assert!(last.cell_completed);
    }

    #[test]
    fn work_stealing_scheduler_matches_sequential_cell_execution() {
        // The sweep-level determinism criterion: interleaving every cell's
        // shards through the global queue must leave each cell's stats
        // bit-identical to running that cell's simulation alone.
        let library = ScenarioLibrary::new(256).unwrap();
        let build = || {
            SweepMatrix::new()
                .scenarios([library.bimodal(), library.geometric(), library.bursty()])
                .protocol(decay_column())
                .trials(300)
                .seed(21)
                .runner(RunnerConfig::with_trials(300).seeded(21).with_threads(4))
        };
        let scheduled = build().run().unwrap();
        let cells = build().compile().unwrap();
        for (cell, result) in cells.iter().zip(scheduled.cells()) {
            let alone = cell.simulation.run().unwrap();
            assert_eq!(
                alone, result.stats,
                "{}/{} diverged under work stealing",
                cell.scenario, cell.protocol
            );
        }
    }
}
