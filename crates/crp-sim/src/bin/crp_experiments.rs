//! Command-line entry point that regenerates every table and figure of the
//! paper's evaluation, plus a `list` subcommand that enumerates the
//! protocol registry.
//!
//! Usage:
//!
//! ```text
//! crp_experiments [command] [--trials T] [--size N] [--seed S]
//! ```
//!
//! where `command` is one of `list`, `table1`, `table2`, `entropy`, `kl`,
//! `baselines`, `range-finding` or `all` (the default).  Experiment output
//! is markdown, suitable for pasting into `EXPERIMENTS.md`.

use std::process::ExitCode;

use crp_protocols::ProtocolRegistry;
use crp_sim::experiments::{
    baselines, entropy_sweep, kl_degradation, range_finding, table1, table2,
};
use crp_sim::{RunnerConfig, SimError, Table};

/// Parsed command-line options.
struct Options {
    command: String,
    trials: usize,
    size: usize,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        command: "all".to_string(),
        trials: 2000,
        size: 1 << 14,
        seed: 0xC0FFEE,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut index = 0;
    while index < args.len() {
        match args[index].as_str() {
            "--trials" => {
                index += 1;
                options.trials = args
                    .get(index)
                    .ok_or("--trials requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --trials value: {e}"))?;
            }
            "--size" => {
                index += 1;
                options.size = args
                    .get(index)
                    .ok_or("--size requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --size value: {e}"))?;
            }
            "--seed" => {
                index += 1;
                options.seed = args
                    .get(index)
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: crp_experiments [list|table1|table2|entropy|kl|baselines|range-finding|all] [--trials T] [--size N] [--seed S]"
                        .to_string(),
                );
            }
            other if !other.starts_with("--") => {
                const KNOWN: [&str; 8] = [
                    "list",
                    "table1",
                    "table2",
                    "entropy",
                    "kl",
                    "baselines",
                    "range-finding",
                    "all",
                ];
                if !KNOWN.contains(&other) {
                    return Err(format!(
                        "unknown command {other:?}; expected one of: {}",
                        KNOWN.join(", ")
                    ));
                }
                options.command = other.to_string();
            }
            other => return Err(format!("unknown flag {other}")),
        }
        index += 1;
    }
    Ok(options)
}

/// Renders the protocol registry as a markdown table.
fn registry_table() -> Table {
    let registry = ProtocolRegistry::standard();
    let mut table = Table::new(
        format!("Registered protocols ({})", registry.len()),
        &["name", "channel", "summary"],
    );
    for entry in registry.entries() {
        let channel = match entry.kind {
            crp_protocols::ProtocolKind::NoCollisionDetection => "no-CD",
            crp_protocols::ProtocolKind::CollisionDetection => "CD",
        };
        table.push_row(vec![
            entry.name.to_string(),
            channel.to_string(),
            entry.summary.to_string(),
        ]);
    }
    table
}

fn run(options: &Options) -> Result<(), SimError> {
    let config = RunnerConfig::with_trials(options.trials).seeded(options.seed);
    let wants = |name: &str| options.command == "all" || options.command == name;

    if options.command == "list" {
        println!("{}", registry_table().to_markdown());
        return Ok(());
    }
    if wants("table1") {
        println!(
            "{}",
            table1::run(options.size, &config)?.to_table().to_markdown()
        );
    }
    if wants("table2") {
        let universe = options.size.next_power_of_two().max(16);
        let participants = (universe / 16).max(2);
        println!(
            "{}",
            table2::run(universe, participants, &config)?
                .to_table()
                .to_markdown()
        );
    }
    if wants("entropy") {
        println!(
            "{}",
            entropy_sweep::run(options.size, 8, &config)?
                .to_table()
                .to_markdown()
        );
    }
    if wants("kl") {
        println!(
            "{}",
            kl_degradation::run(options.size, &config)?
                .to_table()
                .to_markdown()
        );
    }
    if wants("baselines") {
        let sizes = [options.size / 4, options.size, options.size * 4];
        println!(
            "{}",
            baselines::run(&sizes, &config)?.to_table().to_markdown()
        );
    }
    if wants("range-finding") {
        println!(
            "{}",
            range_finding::run(options.size)?.to_table().to_markdown()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("experiment failed: {err}");
            ExitCode::FAILURE
        }
    }
}
