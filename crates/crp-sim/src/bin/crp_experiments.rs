//! Command-line entry point that regenerates every table and figure of the
//! paper's evaluation, plus a `list` subcommand that enumerates the
//! protocol registry and a `sweep` subcommand that runs an arbitrary
//! (registry protocol × scenario) grid.
//!
//! Usage:
//!
//! ```text
//! crp_experiments [command] [--trials T] [--size N] [--seed S]
//!                 [--backend serial|thread|process|fleet] [--threads T]
//!                 [--workers N] [--kernel auto|scalar|batched]
//!                 [--fleet MANIFEST] [--chaos PLAN]
//!                 [--protocols a,b,..] [--scenarios x,y,..] [--csv]
//! ```
//!
//! where `command` is one of `list`, `table1`, `table2`, `entropy`, `kl`,
//! `baselines`, `range-finding`, `sweep`, `worker`, `serve`, `submit`,
//! `stats`, `trace-check`, `fuzz` or `all` (the default).  Experiment
//! output is markdown, suitable for pasting into `EXPERIMENTS.md`;
//! `sweep --csv` emits CSV instead.
//!
//! `--trace-out PATH` (or a strictly parsed `CRP_TRACE` environment
//! variable) streams structured JSONL trace events — `sweep.cell`,
//! `shard.execute`, `kernel.select`, `fleet.dispatch`, `fleet.requeue`,
//! `fleet.ping`, `cache.hit`/`miss`/`heal`, `serve.submission`,
//! `serve.cell`, `serve.submit` — to a file; tracing never changes
//! statistics, only wall-clock time.  Traced jobs carry deterministic,
//! content-hash-derived span ids across process boundaries, and
//! dispatcher-spawned local workers write to derived
//! `<path>.worker-<n>` sibling files instead of interleaving with the
//! dispatcher's own trace.
//! `trace-check FILE` validates such a file line by line (schema, span
//! id shape, parent-before-child order) and prints per-event counts;
//! `trace-join A.jsonl B.jsonl ..` merges the files of a multi-process
//! run (worker siblings included automatically) into one causally
//! ordered timeline on stdout; `stats --connect host:port` dumps the
//! live report of a running `serve` daemon — cache summary, per-tenant
//! submission counters, workspace metrics, per-worker fleet health,
//! and the fleet-wide metrics rollup pulled from every (v3) worker —
//! and `stats --watch SECS` keeps polling, printing per-second rates
//! from counter deltas.  `submit --tenant NAME` accounts a submission
//! to `serve.tenant.<name>.*` counters on the daemon.
//!
//! A `--scenarios` entry ending in `.trace` is loaded as a fuzz-trace
//! wire file (see the `crp-fuzz` crate), compiled, and registered into
//! the scenario library under the file stem — so shrunk reproducers from
//! `fuzz/corpus/` can ride in any sweep next to the built-in scenarios.
//!
//! `--chaos PLAN` (e.g. `0:die@2,1:wedge@5`) applies a declarative
//! fault schedule to the local workers of a fleet run; the dispatcher's
//! re-dispatch keeps completed chaos runs bit-identical to the serial
//! backend.  Like `--fleet`, the flag implies `--backend fleet`.
//!
//! `--backend` selects the shard backend every experiment executes on
//! (statistics are bit-identical across backends); `--threads` / its
//! alias `--workers` pins the worker count and wins over the
//! `CRP_THREADS` environment variable.  `--backend fleet` dispatches to
//! the pool the `--fleet` manifest (or the `CRP_FLEET` environment
//! variable) describes — comma-separated `local[:N]` and `host:port`
//! entries — and `--fleet` by itself implies `--backend fleet`.
//!
//! `--kernel` selects the trial-kernel path (`auto`, the default, uses
//! the batched struct-of-arrays kernels where the protocol admits one;
//! `scalar` forces the trial-at-a-time executor) and wins over the
//! `CRP_KERNEL` environment variable.  Like the backend choice, the
//! kernel choice only affects wall-clock time: statistics are
//! bit-identical either way.
//!
//! The `worker` subcommand runs the long-lived fleet worker: it answers a
//! framed stream of shard specs — many shards per process — over stdio
//! (the default, used by the dispatcher-spawned local pools) or over TCP
//! with `worker --listen host:port` (start one per remote machine and
//! list the addresses in the manifest).  `worker --capacity N` lets the
//! dispatcher keep N jobs in flight on one connection, executed
//! concurrently.
//!
//! The `serve` subcommand runs the persistent sweep service: a daemon
//! that keeps a warm worker fleet between CLI invocations and memoises
//! every `(shard spec, seed)` job and every merged sweep cell in a
//! content-addressed result cache (`--cache DIR`).  `submit` sends the
//! same grid a `sweep` invocation would run to a daemon
//! (`--connect host:port`) and prints the identical table or CSV;
//! repeated or overlapping submissions settle from the cache,
//! bit-identically and near-instantly.
//!
//! The `fuzz` subcommand delegates to the sibling `crp_fuzz` binary
//! (the fuzzing layer depends on this crate, so it cannot link back) —
//! all remaining arguments are forwarded verbatim; set `CRP_FUZZ_BIN`
//! to point at an explicit binary.
//!
//! There is also a hidden `shard-worker` subcommand — the entry point the
//! legacy one-shot process backend spawns: it reads a single shard spec
//! from stdin, executes that one shard, and writes the serialised
//! accumulator to stdout.  It is not meant to be invoked by hand.

use std::io::Read;
use std::process::ExitCode;

use crp_fleet::{ChaosPlan, FleetManifest, ScenarioStore, ServeOptions, TcpWorker};
use crp_predict::{ScenarioLibrary, Trace};
use crp_protocols::{ProtocolRegistry, ProtocolSpec};
use crp_serve::{ResultCache, ServeClient, SweepServer};
use crp_sim::experiments::{
    baselines, entropy_sweep, kl_degradation, range_finding, table1, table2,
};
use crp_sim::service::{submit_matrix_as, sweep_hooks};
use crp_sim::{
    env_fleet_dispatch, env_fleet_manifest, env_kernel_choice, env_worker_threads,
    run_shard_worker, run_shard_worker_with, BackendChoice, KernelChoice, RunnerConfig, SimError,
    SweepMatrix, SweepProtocol, Table,
};

/// Parsed command-line options.
struct Options {
    command: String,
    trials: usize,
    size: usize,
    seed: u64,
    backend: BackendChoice,
    threads: Option<usize>,
    /// `--kernel` trial-kernel choice (`None` defers to `CRP_KERNEL`,
    /// then auto).
    kernel: Option<KernelChoice>,
    fleet: Option<FleetManifest>,
    /// `--chaos` fault schedule for the fleet's local workers.
    chaos: Option<ChaosPlan>,
    protocols: Vec<String>,
    scenarios: Vec<String>,
    csv: bool,
    /// `serve --listen` address.
    listen: String,
    /// `submit --connect` address.
    connect: String,
    /// `serve --cache` directory (`None` disables the result cache).
    cache: Option<String>,
    /// `--accept-workers` elastic-registration address for fleet runs
    /// and the serve daemon (`None` accepts no joiners).
    accept_workers: Option<String>,
    /// `--trace-out` structured-trace JSONL destination (`None` defers
    /// to the strictly parsed `CRP_TRACE` environment variable).
    trace_out: Option<String>,
    /// `--tenant` name `submit`/`stats` connections identify as (the
    /// daemon accounts submissions to `serve.tenant.<id>.*` counters).
    tenant: Option<String>,
    /// `stats --watch` polling interval in seconds (`None` prints one
    /// report and exits).
    watch: Option<u64>,
}

/// The default loopback address `serve` listens on and `submit` dials.
const DEFAULT_SERVICE_ADDR: &str = "127.0.0.1:9317";

const USAGE: &str = "usage: crp_experiments \
[list|table1|table2|entropy|kl|baselines|range-finding|sweep|worker|serve|submit|stats|\
trace-check FILE|trace-join FILE..|fuzz|all] \
[--trials T] [--size N] [--seed S] [--backend serial|thread|process|fleet] \
[--threads T] [--workers N] [--kernel auto|scalar|batched] \
[--fleet local[:N],host:port,..] \
[--chaos W:FAULT@N,..] [--protocols a,b,..] [--scenarios x,y,..|file.trace,..] [--csv] \
[--listen host:port] [--connect host:port] [--cache DIR] [--accept-workers host:port] \
[--trace-out PATH] [--tenant NAME] [--watch SECS]";

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        command: "all".to_string(),
        trials: 2000,
        size: 1 << 14,
        seed: 0xC0FFEE,
        backend: BackendChoice::default(),
        threads: None,
        kernel: None,
        fleet: None,
        chaos: None,
        protocols: vec![
            "decay".into(),
            "willard".into(),
            "sorted-guess-cycling".into(),
        ],
        scenarios: vec![
            "bimodal".into(),
            "bursty".into(),
            "adversarial-drift".into(),
        ],
        csv: false,
        listen: DEFAULT_SERVICE_ADDR.to_string(),
        connect: DEFAULT_SERVICE_ADDR.to_string(),
        cache: None,
        accept_workers: None,
        trace_out: None,
        tenant: None,
        watch: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut backend_explicit = false;
    let mut index = 0;
    while index < args.len() {
        match args[index].as_str() {
            "--trials" => {
                index += 1;
                options.trials = args
                    .get(index)
                    .ok_or("--trials requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --trials value: {e}"))?;
            }
            "--size" => {
                index += 1;
                options.size = args
                    .get(index)
                    .ok_or("--size requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --size value: {e}"))?;
            }
            "--seed" => {
                index += 1;
                options.seed = args
                    .get(index)
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--backend" => {
                index += 1;
                options.backend = args
                    .get(index)
                    .ok_or("--backend requires one of: serial, thread, process, fleet")?
                    .parse()?;
                backend_explicit = true;
            }
            flag @ ("--threads" | "--workers") => {
                index += 1;
                let threads: usize = args
                    .get(index)
                    .ok_or_else(|| format!("{flag} requires a value"))?
                    .parse()
                    .map_err(|e| format!("invalid {flag} value: {e}"))?;
                if threads == 0 {
                    return Err(format!("{flag} requires a positive value"));
                }
                options.threads = Some(threads);
            }
            "--kernel" => {
                index += 1;
                options.kernel = Some(
                    args.get(index)
                        .ok_or("--kernel requires one of: auto, scalar, batched")?
                        .parse()?,
                );
            }
            "--fleet" => {
                index += 1;
                let manifest = args
                    .get(index)
                    .ok_or("--fleet requires a manifest (e.g. local:4,host:9311)")?;
                options.fleet = Some(FleetManifest::parse(manifest).map_err(|e| e.to_string())?);
            }
            "--chaos" => {
                index += 1;
                let plan = args
                    .get(index)
                    .ok_or("--chaos requires a plan (e.g. 0:die@2,1:wedge@5)")?;
                options.chaos = Some(ChaosPlan::parse(plan).map_err(|e| e.to_string())?);
            }
            "--listen" => {
                index += 1;
                options.listen = args
                    .get(index)
                    .ok_or("--listen requires a host:port")?
                    .clone();
            }
            "--connect" => {
                index += 1;
                options.connect = args
                    .get(index)
                    .ok_or("--connect requires a host:port")?
                    .clone();
            }
            "--cache" => {
                index += 1;
                options.cache = Some(
                    args.get(index)
                        .ok_or("--cache requires a directory")?
                        .clone(),
                );
            }
            "--accept-workers" => {
                index += 1;
                options.accept_workers = Some(
                    args.get(index)
                        .ok_or("--accept-workers requires a host:port")?
                        .clone(),
                );
            }
            "--trace-out" => {
                index += 1;
                options.trace_out = Some(
                    args.get(index)
                        .ok_or("--trace-out requires a file path")?
                        .clone(),
                );
            }
            "--tenant" => {
                index += 1;
                options.tenant = Some(
                    args.get(index)
                        .ok_or("--tenant requires a tenant name")?
                        .clone(),
                );
            }
            "--watch" => {
                index += 1;
                let secs: u64 = args
                    .get(index)
                    .ok_or("--watch requires a polling interval in seconds")?
                    .parse()
                    .map_err(|e| format!("invalid --watch value: {e}"))?;
                if secs == 0 {
                    return Err("--watch requires a positive interval".to_string());
                }
                options.watch = Some(secs);
            }
            "--protocols" => {
                index += 1;
                options.protocols = args
                    .get(index)
                    .ok_or("--protocols requires a comma-separated list")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.to_string())
                    .collect();
            }
            "--scenarios" => {
                index += 1;
                options.scenarios = args
                    .get(index)
                    .ok_or("--scenarios requires a comma-separated list")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.to_string())
                    .collect();
            }
            "--csv" => {
                options.csv = true;
            }
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            other if !other.starts_with("--") => {
                const KNOWN: [&str; 12] = [
                    "list",
                    "table1",
                    "table2",
                    "entropy",
                    "kl",
                    "baselines",
                    "range-finding",
                    "sweep",
                    "serve",
                    "submit",
                    "stats",
                    "all",
                ];
                if !KNOWN.contains(&other) {
                    return Err(format!(
                        "unknown command {other:?}; expected one of: {}",
                        KNOWN.join(", ")
                    ));
                }
                options.command = other.to_string();
            }
            other => return Err(format!("unknown flag {other}")),
        }
        index += 1;
    }
    // A fleet manifest only makes sense on the fleet backend; resolve the
    // implication after the loop so flag order cannot silently decide
    // whether the manifest is honoured.
    if options.fleet.is_some() && options.backend != BackendChoice::Fleet {
        if backend_explicit {
            return Err(format!(
                "--fleet conflicts with --backend {:?}; omit --backend or use --backend fleet",
                options.backend
            )
            .to_lowercase());
        }
        options.backend = BackendChoice::Fleet;
    }
    // A chaos plan sabotages a fleet's local workers, so it carries the
    // same implication.
    if options.chaos.is_some() && options.backend != BackendChoice::Fleet {
        if backend_explicit {
            return Err(format!(
                "--chaos conflicts with --backend {:?}; omit --backend or use --backend fleet",
                options.backend
            )
            .to_lowercase());
        }
        options.backend = BackendChoice::Fleet;
    }
    // Only the fleet dispatcher can fold elastically joining workers
    // into a run (serve always runs a fleet, so the implication is
    // harmless there).
    if options.accept_workers.is_some() && options.backend != BackendChoice::Fleet {
        if backend_explicit {
            return Err(format!(
                "--accept-workers conflicts with --backend {:?}; omit --backend or use \
                 --backend fleet",
                options.backend
            )
            .to_lowercase());
        }
        options.backend = BackendChoice::Fleet;
    }
    Ok(options)
}

/// Renders the protocol registry as a markdown table.
fn registry_table() -> Table {
    let registry = ProtocolRegistry::standard();
    let mut table = Table::new(
        format!("Registered protocols ({})", registry.len()),
        &["name", "channel", "summary"],
    );
    for entry in registry.entries() {
        let channel = match entry.kind {
            crp_protocols::ProtocolKind::NoCollisionDetection => "no-CD",
            crp_protocols::ProtocolKind::CollisionDetection => "CD",
        };
        table.push_row(vec![
            entry.name.to_string(),
            channel.to_string(),
            entry.summary.to_string(),
        ]);
    }
    table
}

/// Builds the sweep column for one registry protocol: universe, accurate
/// prediction, and a default population-size estimate are filled from each
/// scenario; protocols without a bounded horizon get a `64·n` round budget.
fn cli_column(name: &str) -> Result<SweepProtocol, SimError> {
    if ProtocolRegistry::standard().entry(name).is_none() {
        return Err(SimError::InvalidParameter {
            what: format!("unknown protocol {name:?}; run `crp_experiments list` for the registry"),
        });
    }
    let spec_for = {
        let name = name.to_string();
        move |s: &crp_predict::Scenario| {
            let n = s.distribution().max_size();
            ProtocolSpec::new(name.clone())
                .universe(n)
                .prediction(s.advice_condensed())
                .participants((n / 16).max(2))
                .advice_bits(2)
        }
    };
    // Whether a protocol bounds its own horizon is a property of the
    // protocol type, not of the scenario, so probe it once with a small
    // representative scenario instead of rebuilding the protocol per cell.
    // A probe that fails to build falls into the 64·n-budget branch; the
    // real build error (if any) surfaces from the matrix's compile step.
    let has_horizon = spec_for(&ScenarioLibrary::new(64)?.bimodal())
        .build()
        .ok()
        .and_then(|protocol| protocol.horizon())
        .is_some();
    Ok(
        SweepProtocol::from_scenario(name, spec_for).max_rounds_with(move |s| {
            // Horizon-bounded protocols default to their own horizon; the
            // unbounded ones (decay, cycling passes, fixed-probability)
            // get a generous sweep budget.
            if has_horizon {
                None
            } else {
                Some(64 * s.distribution().max_size())
            }
        }),
    )
}

/// The (registry protocol × scenario) grid the command line declares —
/// shared by `sweep` (local execution) and `submit` (service execution),
/// so both produce identical cells, seeds, and therefore statistics.
/// The library name of a `--scenarios` trace-file entry: the file stem.
/// `None` for ordinary scenario names.
fn trace_stem(name: &str) -> Option<&str> {
    name.strip_suffix(".trace")
        .map(|stem| stem.rsplit(['/', '\\']).next().unwrap_or(stem))
}

/// Loads a fuzz-trace wire file and compiles it into a scenario named
/// after the file stem.
fn load_trace_scenario(path: &str) -> Result<crp_predict::Scenario, SimError> {
    let text = std::fs::read_to_string(path).map_err(|err| SimError::InvalidParameter {
        what: format!("cannot read trace file {path}: {err}"),
    })?;
    let trace = Trace::from_wire(&text)?;
    let stem = trace_stem(path).expect("only .trace entries reach the loader");
    Ok(trace.compile(stem)?)
}

fn cli_matrix(options: &Options) -> Result<SweepMatrix, SimError> {
    let mut library = ScenarioLibrary::new(options.size)?;
    // Trace-file entries (shrunk fuzz reproducers) are compiled and
    // registered first, so they are addressable by stem like any
    // built-in — including from *other* entries of the same run.
    for name in &options.scenarios {
        if name.ends_with(".trace") {
            library.register(load_trace_scenario(name)?)?;
        }
    }
    let mut matrix = SweepMatrix::new().runner(cli_config(options)?);
    for name in &options.scenarios {
        let name = trace_stem(name).unwrap_or(name);
        matrix = matrix.scenario(library.by_name(name)?);
    }
    for name in &options.protocols {
        matrix = matrix.protocol(cli_column(name)?);
    }
    Ok(matrix)
}

/// Prints sweep results the way the command line asked for them.
fn print_results(options: &Options, results: &crp_sim::SweepResults) {
    if options.csv {
        print!("{}", results.to_csv());
    } else {
        println!(
            "{}",
            results.to_markdown(format!(
                "Sweep (n = {}, trials = {})",
                options.size, options.trials
            ))
        );
    }
}

/// Runs an arbitrary (registry protocol × scenario) grid declared from the
/// command line.
fn run_sweep(options: &Options) -> Result<(), SimError> {
    let results = cli_matrix(options)?.run()?;
    print_results(options, &results);
    Ok(())
}

fn backend_error(what: impl std::fmt::Display) -> SimError {
    SimError::Backend {
        what: what.to_string(),
    }
}

/// The worker pool a `serve` daemon owns, resolved like any fleet run:
/// `--fleet`, then `CRP_FLEET`, then `--threads` local workers.
fn fleet_endpoints(options: &Options) -> Result<Vec<crp_fleet::WorkerEndpoint>, SimError> {
    let config = cli_config(options)?;
    let manifest = match (&config.fleet, env_fleet_manifest()?) {
        (Some(manifest), _) => Some(manifest.clone()),
        (None, manifest) => manifest,
    };
    let backend = match manifest {
        Some(manifest) => crp_sim::FleetBackend::from_manifest(&manifest)?,
        None => crp_sim::FleetBackend::local(config.threads)?,
    };
    Ok(backend.endpoints().to_vec())
}

/// The persistent sweep service: a warm fleet plus the content-addressed
/// result cache, serving framed submissions until shut down.
fn serve_mode(options: &Options) -> Result<(), SimError> {
    let endpoints = fleet_endpoints(options)?;
    let cache = match &options.cache {
        Some(dir) => Some(ResultCache::open(dir).map_err(backend_error)?),
        None => None,
    };
    let server =
        SweepServer::bind(options.listen.as_str(), endpoints, cache).map_err(backend_error)?;
    if let Some(addr) = &options.accept_workers {
        let bound = server.listen_for_workers(addr).map_err(backend_error)?;
        eprintln!("sweep service accepting elastic workers on {bound}");
    }
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "sweep service listening on {addr} ({} workers, cache: {})",
            server.dispatcher().endpoints().len(),
            options.cache.as_deref().unwrap_or("disabled"),
        ),
        Err(err) => eprintln!("sweep service listening (address unknown: {err})"),
    }
    server.serve(sweep_hooks()).map_err(backend_error)
}

/// Submits the `sweep`-equivalent grid to a running daemon and prints
/// the identical table or CSV, plus cache statistics on stderr.
fn submit_mode(options: &Options) -> Result<(), SimError> {
    let matrix = cli_matrix(options)?;
    let (results, outcome) = submit_matrix_as(
        &options.connect,
        options.tenant.as_deref(),
        &matrix,
        |_, _, _| {},
    )?;
    print_results(options, &results);
    // The outcome feeds the local crp-obs counters and the summary line
    // is rendered from them through the same formatter the daemon's
    // `stats` report uses, so the two can never disagree.
    let registry = crp_obs::global();
    crp_serve::record_submission(
        registry,
        outcome.jobs_total as u64,
        outcome.job_hits as u64,
        outcome.computed as u64,
    );
    eprintln!(
        "submit: {}",
        crp_serve::cache_summary_from(&registry.snapshot())
    );
    Ok(())
}

/// Dumps the live observability report of a running `serve` daemon:
/// the shared cache summary, the per-tenant submission summary, every
/// workspace counter and histogram, the per-worker fleet health lines,
/// and the fleet-wide metrics pull (merged rollup plus per-worker
/// snapshots).  With `--watch SECS` it keeps polling, printing one
/// deterministic rates line per interval from the counter deltas.
fn stats_mode(options: &Options) -> Result<(), SimError> {
    let mut client = match &options.tenant {
        Some(tenant) => ServeClient::connect_as(options.connect.as_str(), tenant),
        None => ServeClient::connect(options.connect.as_str()),
    }
    .map_err(backend_error)?;
    let report = client.stats().map_err(backend_error)?;
    print!("{report}");
    let Some(secs) = options.watch else {
        return Ok(());
    };
    let mut previous = crp_serve::counters_from_report(&report);
    loop {
        std::thread::sleep(std::time::Duration::from_secs(secs));
        let report = client.stats().map_err(backend_error)?;
        let next = crp_serve::counters_from_report(&report);
        println!("{}", crp_serve::rates_line(&previous, &next, secs));
        previous = next;
    }
}

/// The runner configuration the command line describes: `--threads` (or
/// `--workers`) wins over the `CRP_THREADS` environment variable.
///
/// # Errors
///
/// Unlike the lenient [`RunnerConfig::default`] fallback, the CLI treats
/// a `CRP_THREADS` value that is not a positive integer as a hard
/// [`SimError::Config`] error — a mistyped override should fail loudly,
/// not silently run on hardware parallelism.
fn cli_config(options: &Options) -> Result<RunnerConfig, SimError> {
    // Strictly validate the CRP_FLEET_DISPATCH override up front: the
    // dispatcher itself reads it leniently (library default, warn once),
    // but a mistyped value on the CLI fails loudly like CRP_KERNEL and
    // CRP_FLEET_POLL_MS do.
    env_fleet_dispatch()?;
    let mut config = RunnerConfig::with_trials(options.trials)
        .seeded(options.seed)
        .with_backend(options.backend);
    match options.threads {
        Some(threads) => config = config.with_threads(threads),
        None => {
            if let Some(threads) = env_worker_threads()? {
                config = config.with_threads(threads);
            }
        }
    }
    // Same precedence as --threads: an explicit --kernel wins, otherwise
    // a *strictly* parsed CRP_KERNEL (the CLI refuses a misspelt value
    // instead of warning like the lenient RunnerConfig default does).
    match options.kernel {
        Some(kernel) => config = config.with_kernel(kernel),
        None => {
            if let Some(kernel) = env_kernel_choice()? {
                config = config.with_kernel(kernel);
            }
        }
    }
    // An explicit --fleet (already validated at parse time) travels as a
    // typed RunnerConfig field — no environment-variable side channel —
    // and wins over CRP_FLEET, which the backend layer falls back to.
    if let Some(manifest) = &options.fleet {
        config = config.with_fleet(manifest.clone());
    }
    if let Some(plan) = &options.chaos {
        config.chaos = Some(plan.clone());
    }
    if let Some(addr) = &options.accept_workers {
        config = config.with_accept_workers(addr.clone());
    }
    Ok(config)
}

/// Installs the structured-trace sink the command line asked for:
/// `--trace-out PATH` wins, otherwise the strictly parsed `CRP_TRACE`
/// environment variable.  A path that cannot be opened is a typed
/// configuration error, not a warning.
fn init_tracing(options: &Options) -> Result<(), SimError> {
    match &options.trace_out {
        Some(path) => crp_obs::init_trace(path).map_err(|err| SimError::Config {
            var: "--trace-out".to_string(),
            value: path.clone(),
            what: err.to_string(),
        }),
        None => match crp_obs::init_trace_from_env() {
            Ok(_) => Ok(()),
            Err(crp_obs::ObsError::Env { var, value, reason }) => Err(SimError::Config {
                var: var.to_string(),
                value,
                what: reason,
            }),
            Err(other) => Err(backend_error(other)),
        },
    }
}

fn run(options: &Options) -> Result<(), SimError> {
    init_tracing(options)?;
    let config = cli_config(options)?;
    let wants = |name: &str| options.command == "all" || options.command == name;

    if options.command == "list" {
        println!("{}", registry_table().to_markdown());
        return Ok(());
    }
    if options.command == "sweep" {
        return run_sweep(options);
    }
    if options.command == "serve" {
        return serve_mode(options);
    }
    if options.command == "submit" {
        return submit_mode(options);
    }
    if options.command == "stats" {
        return stats_mode(options);
    }
    if wants("table1") {
        println!(
            "{}",
            table1::run(options.size, &config)?.to_table().to_markdown()
        );
    }
    if wants("table2") {
        let universe = options.size.next_power_of_two().max(16);
        let participants = (universe / 16).max(2);
        println!(
            "{}",
            table2::run(universe, participants, &config)?
                .to_table()
                .to_markdown()
        );
    }
    if wants("entropy") {
        println!(
            "{}",
            entropy_sweep::run(options.size, 8, &config)?
                .to_table()
                .to_markdown()
        );
    }
    if wants("kl") {
        println!(
            "{}",
            kl_degradation::run(options.size, &config)?
                .to_table()
                .to_markdown()
        );
    }
    if wants("baselines") {
        let sizes = [options.size / 4, options.size, options.size * 4];
        println!(
            "{}",
            baselines::run(&sizes, &config)?.to_table().to_markdown()
        );
    }
    if wants("range-finding") {
        println!(
            "{}",
            range_finding::run(options.size)?.to_table().to_markdown()
        );
    }
    Ok(())
}

/// The long-lived fleet worker: answers a framed stream of shard specs
/// over stdio (default), a TCP listener (`--listen host:port`), or by
/// dialling a dispatcher's registration listener (`--join host:port`,
/// the elastic-membership direction), executing many shards per
/// process.  Fault-injection knobs (`CRP_FLEET_DIE_AFTER`,
/// `CRP_FLEET_GARBAGE_AFTER`) are read from the environment for the
/// failure tests and smoke jobs.
fn worker_mode(args: &[String]) -> ExitCode {
    let mut listen: Option<String> = None;
    let mut join: Option<String> = None;
    let mut capacity: Option<usize> = None;
    let mut index = 0;
    while index < args.len() {
        match args[index].as_str() {
            "--listen" => {
                index += 1;
                match args.get(index) {
                    Some(addr) => listen = Some(addr.clone()),
                    None => {
                        eprintln!("worker: --listen requires a host:port");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--join" => {
                index += 1;
                match args.get(index) {
                    Some(addr) => join = Some(addr.clone()),
                    None => {
                        eprintln!("worker: --join requires a dispatcher host:port");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--stdio" => listen = None,
            "--capacity" => {
                index += 1;
                match args.get(index).and_then(|value| value.parse().ok()) {
                    Some(value) if value >= 1 => capacity = Some(value),
                    _ => {
                        eprintln!("worker: --capacity requires a positive job count");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!(
                    "worker: unknown flag {other}; usage: worker \
                     [--stdio | --listen host:port | --join host:port] [--capacity N]"
                );
                return ExitCode::FAILURE;
            }
        }
        index += 1;
    }
    if join.is_some() && listen.is_some() {
        eprintln!("worker: --join and --listen are mutually exclusive");
        return ExitCode::FAILURE;
    }
    // Strict environment parsing: a mistyped CRP_FLEET_* knob (or an
    // unopenable CRP_TRACE path) refuses to start the worker instead of
    // silently running without the fault, capacity, or trace it was
    // meant to carry.
    if let Err(err) = crp_obs::init_trace_from_env() {
        eprintln!("worker: {err}");
        return ExitCode::FAILURE;
    }
    let mut options = match ServeOptions::try_from_env() {
        Ok(options) => options,
        Err(err) => {
            eprintln!("worker: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(capacity) = capacity {
        options.capacity = capacity;
    }
    // One process-wide scenario store: `scenario-put` frames fill it,
    // and the handler resolves compact `ref <hash>` spec sections out of
    // it — a scenario's masses arrive once per worker, not once per
    // shard.
    let store = ScenarioStore::new();
    let handler = |payload: &str| {
        run_shard_worker_with(payload, &|hash| store.get(hash)).map_err(|e| e.to_string())
    };
    if let Some(addr) = join {
        // Elastic membership: dial the dispatcher and serve over the
        // dialled connection.  The initial connect is retried — an
        // elastic worker is typically started before (or independently
        // of) the run that will consume it.
        let mut attempts = 0;
        loop {
            match crp_fleet::join_fleet_with_store(addr.as_str(), &handler, &options, &store) {
                Ok(served) => {
                    eprintln!("fleet worker: dispatcher {addr} disconnected after {served} jobs");
                    return ExitCode::SUCCESS;
                }
                Err(crp_fleet::FleetError::Connect { .. }) if attempts < 50 => {
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(200));
                }
                Err(err) => {
                    eprintln!("worker: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    match listen {
        Some(addr) => {
            let worker = match TcpWorker::bind(addr.as_str()) {
                Ok(worker) => worker,
                Err(err) => {
                    eprintln!("worker: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match worker.local_addr() {
                Ok(addr) => eprintln!("fleet worker listening on {addr}"),
                Err(err) => eprintln!("fleet worker listening (address unknown: {err})"),
            }
            worker.serve_forever_with_store(&handler, &options, &store)
        }
        None => match crp_fleet::serve_stdio_with_store(&handler, &options, &store) {
            Ok(_) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("worker: {err}");
                ExitCode::FAILURE
            }
        },
    }
}

/// The hidden subcommand the process backend spawns: spec in on stdin,
/// accumulator out on stdout, errors on stderr with a nonzero exit.
fn shard_worker() -> ExitCode {
    let mut input = String::new();
    if let Err(err) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("shard-worker: failed to read stdin: {err}");
        return ExitCode::FAILURE;
    }
    match run_shard_worker(&input) {
        Ok(response) => {
            print!("{response}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("shard-worker: {err}");
            ExitCode::FAILURE
        }
    }
}

/// The unquoted `span` / `parent` values of a schema-valid trace line
/// (`check_trace_line` has already vetted their hex shape).
fn span_fields(line: &str) -> (Option<String>, Option<String>) {
    let mut span = None;
    let mut parent = None;
    if let Ok(fields) = crp_obs::trace_line_fields(line) {
        for (name, value) in fields {
            let unquoted = value.trim_matches('"').to_string();
            match name.as_str() {
                "span" => span = Some(unquoted),
                "parent" => parent = Some(unquoted),
                _ => {}
            }
        }
    }
    (span, parent)
}

/// The `trace-check` subcommand: validates every line of a structured
/// trace JSONL file against the schema (`ts_us` first, then `event`,
/// flat string/unsigned members, canonically shaped `span`/`parent`
/// ids) and prints per-event counts — the CI smoke job greps these for
/// the events a fleet sweep must have produced.  Span parentage is
/// checked for causal order: a `parent` whose span is defined in the
/// same file must appear *after* that span's first event (parents
/// defined in other processes' files are fine — `trace-join` resolves
/// those).
fn trace_check_mode(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("trace-check: requires a trace JSONL file");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace-check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    // Pass 1: every span id the file defines (appears as a `span`
    // field), so pass 2 can tell a local ordering violation from a
    // parent that lives in another process's file.
    let mut defined: std::collections::HashSet<String> = std::collections::HashSet::new();
    for line in text.lines().filter(|line| !line.is_empty()) {
        if let (Some(span), _) = span_fields(line) {
            defined.insert(span);
        }
    }
    let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut spans = 0u64;
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (number, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match crp_obs::check_trace_line(line) {
            Ok(event) => *counts.entry(event).or_insert(0) += 1,
            Err(err) => {
                eprintln!("trace-check: {path}:{}: {err}", number + 1);
                return ExitCode::FAILURE;
            }
        }
        let (span, parent) = span_fields(line);
        if let Some(parent) = parent {
            if defined.contains(&parent) && !seen.contains(&parent) {
                eprintln!(
                    "trace-check: {path}:{}: parent span {parent} is defined in this file but \
                     only after this event — parents must precede children",
                    number + 1
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some(span) = span {
            spans += 1;
            seen.insert(span);
        }
    }
    let total: u64 = counts.values().sum();
    println!(
        "trace-check: {total} events across {} kinds ({spans} span-stamped)",
        counts.len()
    );
    for (event, count) in &counts {
        println!("  {count} {event}");
    }
    ExitCode::SUCCESS
}

/// The `.worker-<n>` sibling trace files next to `path` — the derived
/// per-worker destinations [`crp_obs::derive_worker_trace_path`] routes
/// dispatcher-spawned local workers to — sorted by worker number.
fn worker_siblings(path: &str) -> Vec<String> {
    let base = std::path::Path::new(path);
    let Some(name) = base.file_name().and_then(|name| name.to_str()) else {
        return Vec::new();
    };
    let dir = match base.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let prefix = format!("{name}.worker-");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut found: Vec<(usize, String)> = Vec::new();
    for entry in entries.flatten() {
        let file_name = entry.file_name();
        let Some(file_name) = file_name.to_str() else {
            continue;
        };
        if let Some(n) = file_name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.parse::<usize>().ok())
        {
            found.push((n, dir.join(file_name).to_string_lossy().into_owned()));
        }
    }
    found.sort();
    found.into_iter().map(|(_, path)| path).collect()
}

/// The `trace-join` subcommand: merges the trace JSONL files of a
/// multi-process run (dispatcher plus workers; `.worker-<n>` siblings
/// are picked up automatically) into one causally ordered timeline on
/// stdout.  Ordering is by span parentage only — an event whose parent
/// span is defined in any input file is emitted after that span's first
/// event; wall clocks from different hosts are never compared.  Lines
/// are emitted verbatim, so the output is itself `trace-check`-clean,
/// and the merge is deterministic: among emittable events, file order
/// (then line order) decides.
fn trace_join_mode(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("trace-join: requires one or more trace JSONL files");
        return ExitCode::FAILURE;
    }
    let mut paths: Vec<String> = Vec::new();
    for arg in args {
        for path in std::iter::once(arg.clone()).chain(worker_siblings(arg)) {
            if !paths.contains(&path) {
                paths.push(path);
            }
        }
    }
    // Load and validate every line up front: a malformed input must
    // fail the join, not poison the merged timeline.  Each loaded line
    // keeps its span and parent ids alongside the verbatim text.
    type JoinLine = (String, Option<String>, Option<String>);
    let mut files: Vec<Vec<JoinLine>> = Vec::new();
    let mut defined: std::collections::HashSet<String> = std::collections::HashSet::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("trace-join: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let mut lines = Vec::new();
        for (number, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            if let Err(err) = crp_obs::check_trace_line(line) {
                eprintln!("trace-join: {path}:{}: {err}", number + 1);
                return ExitCode::FAILURE;
            }
            let (span, parent) = span_fields(line);
            if let Some(span) = &span {
                defined.insert(span.clone());
            }
            lines.push((line.to_string(), span, parent));
        }
        files.push(lines);
    }
    // Deterministic topological merge: repeatedly emit the head line of
    // the lowest-indexed file whose parent constraint is satisfied (no
    // parent, a parent no input defines, or an already-emitted parent).
    let total: usize = files.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; files.len()];
    let mut emitted_spans: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut emitted = 0usize;
    while emitted < total {
        let next = files.iter().enumerate().position(|(index, file)| {
            file.get(heads[index])
                .is_some_and(|(_, _, parent)| match parent {
                    Some(parent) => !defined.contains(parent) || emitted_spans.contains(parent),
                    None => true,
                })
        });
        let Some(index) = next else {
            eprintln!(
                "trace-join: unresolvable span parentage — a parent span is defined only by \
                 events that (transitively) wait on it"
            );
            return ExitCode::FAILURE;
        };
        let (line, span, _) = &files[index][heads[index]];
        println!("{line}");
        if let Some(span) = span {
            emitted_spans.insert(span.clone());
        }
        heads[index] += 1;
        emitted += 1;
    }
    eprintln!(
        "trace-join: merged {emitted} events from {} files",
        files.len()
    );
    ExitCode::SUCCESS
}

/// The `fuzz` subcommand: delegates to the sibling `crp_fuzz` binary
/// (the fuzzing crate depends on this one, so the fuzzer cannot be
/// linked in), forwarding all remaining arguments verbatim.  The binary
/// is resolved from `CRP_FUZZ_BIN` when set, otherwise from the
/// directory of the current executable.
fn fuzz_mode(args: &[String]) -> ExitCode {
    let binary = match std::env::var_os("CRP_FUZZ_BIN") {
        Some(path) => std::path::PathBuf::from(path),
        None => match std::env::current_exe() {
            Ok(exe) => exe.with_file_name("crp_fuzz"),
            Err(err) => {
                eprintln!("fuzz: cannot locate the crp_fuzz binary: {err}");
                return ExitCode::FAILURE;
            }
        },
    };
    match std::process::Command::new(&binary).args(args).status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(err) => {
            eprintln!(
                "fuzz: cannot run {} ({err}); build it with `cargo build -p crp-fuzz` or set \
                 CRP_FUZZ_BIN",
                binary.display()
            );
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("shard-worker") {
        return shard_worker();
    }
    if std::env::args().nth(1).as_deref() == Some("fuzz") {
        let args: Vec<String> = std::env::args().skip(2).collect();
        return fuzz_mode(&args);
    }
    if std::env::args().nth(1).as_deref() == Some("worker") {
        let args: Vec<String> = std::env::args().skip(2).collect();
        return worker_mode(&args);
    }
    if std::env::args().nth(1).as_deref() == Some("trace-check") {
        let args: Vec<String> = std::env::args().skip(2).collect();
        return trace_check_mode(&args);
    }
    if std::env::args().nth(1).as_deref() == Some("trace-join") {
        let args: Vec<String> = std::env::args().skip(2).collect();
        return trace_join_mode(&args);
    }
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("experiment failed: {err}");
            ExitCode::FAILURE
        }
    }
}
