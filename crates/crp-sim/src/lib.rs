//! Monte-Carlo experiment harness for the *Contention Resolution with
//! Predictions* reproduction.
//!
//! The harness has five layers:
//!
//! * [`SweepMatrix`] — the declarative sweep engine: a (protocol ×
//!   scenario × trial-budget) grid compiled to validated [`Simulation`]
//!   cells and executed through the sharded runner, with markdown / CSV
//!   export.  Every experiment module declares its grid this way.
//! * [`Simulation`] — the builder-style front-end: pick a protocol by
//!   registry spec (or hand in a custom object), choose a workload (fixed
//!   `k`, an explicit placement, or a sampled ground truth), and run a
//!   validated Monte-Carlo batch.  All misconfigurations — zero
//!   participants, zero round budgets, protocol/channel-mode mismatches —
//!   are typed [`SimError`]s raised at build time, never panics.
//! * [`runner`] — the sharded trial runner: trials split into
//!   thread-count-independent shards ([`ShardPlan`]) with per-shard
//!   `ChaCha8Rng` streams, folded into mergeable accumulators and merged
//!   in shard order.  Execution is delegated to an object-safe
//!   [`ShardBackend`] — [`SerialBackend`] inline, [`ThreadBackend`]
//!   (scoped worker threads stealing shards from a shared queue), or
//!   [`ProcessBackend`] (`crp_experiments shard-worker` subprocesses fed a
//!   [`ShardSpec`] on stdin) — and the statistics are bit-identical for
//!   any backend and any worker count.  [`run_batch`] amortises protocol
//!   construction: the protocol is built once and shared across every
//!   trial.
//! * [`stats`] / [`report`] — the mergeable streaming accumulator
//!   ([`TrialAccumulator`]: Welford moments, exact min/max, a
//!   log-bucketed [`QuantileSketch`]), the finalised [`TrialStats`] view,
//!   and markdown / CSV table rendering.
//! * [`experiments`] — one module per table / figure of the paper; the
//!   `crp_experiments` binary runs them all (its `list` subcommand prints
//!   the protocol registry, its `sweep` subcommand runs arbitrary
//!   registry-name × scenario-name grids).
//!
//! # Example
//!
//! ```
//! use crp_protocols::ProtocolSpec;
//! use crp_sim::Simulation;
//!
//! # fn main() -> Result<(), crp_sim::SimError> {
//! let stats = Simulation::builder()
//!     .protocol(ProtocolSpec::new("decay").universe(1024))
//!     .participants(70)
//!     .max_rounds(10_000)
//!     .trials(200)
//!     .seed(1)
//!     .run()?;
//! assert!(stats.success_rate() > 0.99);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod report;
mod runner;
pub mod service;
mod simulation;
mod stats;
mod sweep;

use std::error::Error;
use std::fmt;

use crp_channel::ChannelMode;

pub use report::{fmt_f64, Table};
pub use runner::{
    env_fleet_dispatch, env_fleet_manifest, env_kernel_choice, env_worker_threads,
    measure_cd_strategy, measure_schedule, run_batch, run_batch_with_progress, run_shard_worker,
    run_shard_worker_with, run_trials, sample_contending_size, BackendChoice, BatchProgress,
    FleetBackend, JobDoneFn, KernelChoice, ProcessBackend, ProgressFn, RunnerConfig, SerialBackend,
    ShardBackend, ShardJob, ShardPlan, ShardSpec, ThreadBackend, TrialFn, TrialOutcome,
};
pub use simulation::{Simulation, SimulationBuilder};
pub use stats::{QuantileSketch, StreamAccumulator, SummaryStats, TrialAccumulator, TrialStats};
pub use sweep::{
    SweepCell, SweepCellResult, SweepMatrix, SweepPopulation, SweepProgress, SweepProtocol,
    SweepResults,
};

/// Errors produced by the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A parameter of an experiment or simulation was outside its valid
    /// range (zero participants, zero trials, zero round budget, …).
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// A [`Simulation`] was built without selecting a protocol.
    MissingProtocol,
    /// The selected protocol cannot run on the requested channel mode
    /// (e.g. a collision-detection strategy on a no-CD channel).
    ModeMismatch {
        /// The protocol's registry / display name.
        protocol: String,
        /// The mode the protocol requires.
        required: ChannelMode,
        /// The mode the caller requested.
        requested: ChannelMode,
    },
    /// A substrate construction (distribution, prediction, protocol)
    /// failed.
    Substrate(String),
    /// A shard backend could not execute its jobs: the process backend was
    /// handed work it cannot re-describe to a worker, a worker subprocess
    /// could not be spawned or failed, or a wire message was malformed.
    Backend {
        /// Human-readable description of the failure.
        what: String,
    },
    /// An environment variable the harness honours (`CRP_THREADS`,
    /// `CRP_FLEET`) carried a value it could not use.  Surfaced as a
    /// typed error instead of being silently ignored, so a mistyped
    /// override fails loudly.
    Config {
        /// The environment variable.
        var: String,
        /// The offending value, verbatim.
        value: String,
        /// Why it was rejected.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            SimError::MissingProtocol => {
                write!(
                    f,
                    "no protocol selected: call protocol(spec) or protocol_object(..)"
                )
            }
            SimError::ModeMismatch {
                protocol,
                required,
                requested,
            } => write!(
                f,
                "protocol {protocol:?} requires channel mode {required:?} but {requested:?} \
                 was requested"
            ),
            SimError::Substrate(msg) => write!(f, "substrate error: {msg}"),
            SimError::Backend { what } => write!(f, "backend error: {what}"),
            SimError::Config { var, value, what } => {
                write!(f, "invalid {var}={value:?}: {what}")
            }
        }
    }
}

impl Error for SimError {}

impl From<crp_info::InfoError> for SimError {
    fn from(err: crp_info::InfoError) -> Self {
        SimError::Substrate(err.to_string())
    }
}

impl From<crp_predict::PredictError> for SimError {
    fn from(err: crp_predict::PredictError) -> Self {
        SimError::Substrate(err.to_string())
    }
}

impl From<crp_protocols::ProtocolError> for SimError {
    fn from(err: crp_protocols::ProtocolError) -> Self {
        SimError::Substrate(err.to_string())
    }
}

impl From<crp_channel::ChannelError> for SimError {
    fn from(err: crp_channel::ChannelError) -> Self {
        SimError::Substrate(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_display_and_conversions() {
        let err = SimError::InvalidParameter {
            what: "trials must be positive".into(),
        };
        assert!(err.to_string().contains("trials"));
        let err: SimError = crp_info::InfoError::EmptySupport.into();
        assert!(matches!(err, SimError::Substrate(_)));
        assert!(err.to_string().contains("empty"));
        assert!(SimError::MissingProtocol.to_string().contains("protocol"));
        let err = SimError::ModeMismatch {
            protocol: "willard".into(),
            required: ChannelMode::CollisionDetection,
            requested: ChannelMode::NoCollisionDetection,
        };
        assert!(err.to_string().contains("willard"));
        let err = SimError::Backend {
            what: "worker went away".into(),
        };
        assert!(err.to_string().contains("worker went away"));
    }
}
