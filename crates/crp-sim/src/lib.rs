//! Monte-Carlo experiment harness for the *Contention Resolution with
//! Predictions* reproduction.
//!
//! The harness has three layers:
//!
//! * [`runner`] — a deterministic, optionally multi-threaded trial runner
//!   ([`run_trials`], [`measure_schedule`], [`measure_cd_strategy`]) whose
//!   results are independent of the thread count thanks to per-trial
//!   seeding.
//! * [`stats`] / [`report`] — summary statistics and markdown table
//!   rendering.
//! * [`experiments`] — one module per table / figure of the paper (see
//!   `DESIGN.md` for the experiment index); the `crp-experiments` binary
//!   runs them all and prints the tables recorded in `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use crp_info::SizeDistribution;
//! use crp_protocols::Decay;
//! use crp_sim::{measure_schedule, RunnerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let truth = SizeDistribution::geometric(1024, 0.2)?;
//! let decay = Decay::new(1024)?;
//! let stats = measure_schedule(
//!     &decay,
//!     &truth,
//!     10_000,
//!     &RunnerConfig::with_trials(200).seeded(1),
//! );
//! assert!(stats.success_rate() > 0.99);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod report;
mod runner;
mod stats;

use std::error::Error;
use std::fmt;

pub use report::{fmt_f64, Table};
pub use runner::{
    measure_cd_strategy, measure_schedule, run_trials, sample_contending_size, RunnerConfig,
    TrialOutcome,
};
pub use stats::{SummaryStats, TrialStats};

/// Errors produced by the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A parameter of an experiment was outside its valid range.
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// A substrate construction (distribution, prediction, protocol)
    /// failed.
    Substrate(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            SimError::Substrate(msg) => write!(f, "substrate error: {msg}"),
        }
    }
}

impl Error for SimError {}

impl From<crp_info::InfoError> for SimError {
    fn from(err: crp_info::InfoError) -> Self {
        SimError::Substrate(err.to_string())
    }
}

impl From<crp_predict::PredictError> for SimError {
    fn from(err: crp_predict::PredictError) -> Self {
        SimError::Substrate(err.to_string())
    }
}

impl From<crp_protocols::ProtocolError> for SimError {
    fn from(err: crp_protocols::ProtocolError) -> Self {
        SimError::Substrate(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_display_and_conversions() {
        let err = SimError::InvalidParameter {
            what: "trials must be positive".into(),
        };
        assert!(err.to_string().contains("trials"));
        let err: SimError = crp_info::InfoError::EmptySupport.into();
        assert!(matches!(err, SimError::Substrate(_)));
        assert!(err.to_string().contains("empty"));
    }
}
